//! Translation of relational formulas into boolean circuits.
//!
//! Following Kodkod, every relation is represented as a sparse *matrix*
//! mapping tuples to circuit nodes: lower-bound tuples map to the constant
//! true, free tuples (upper minus lower) map to fresh circuit inputs, and
//! everything else is absent (false). Relational operators combine matrices
//! pointwise or by join; quantifiers expand over the bounding expression's
//! tuples, which the finite bounds keep small.

use std::collections::{BTreeMap, HashMap};

use crate::ast::{Expr, Formula, QuantVar};
use crate::circuit::{BoolRef, Circuit};
use crate::error::{LogicError, Result};
use crate::relation::{RelationDecl, RelationId, Tuple};
use crate::universe::{Atom, Universe};

/// A sparse boolean matrix over tuples. Absent tuples are false.
///
/// Entries are kept in tuple order: matrix iteration decides the order in
/// which OR-accumulation gates are built, and gate identity decides CNF
/// variable numbering, so an unordered map here would make the model
/// enumeration order vary run to run (and thread to thread).
#[derive(Clone, Debug)]
pub(crate) struct Matrix {
    arity: usize,
    entries: BTreeMap<Tuple, BoolRef>,
}

impl Matrix {
    fn new(arity: usize) -> Matrix {
        Matrix {
            arity,
            entries: BTreeMap::new(),
        }
    }

    fn get(&self, t: &Tuple) -> Option<BoolRef> {
        self.entries.get(t).copied()
    }

    /// Inserts `value` at `t`, OR-ing with any existing entry.
    fn accumulate(&mut self, circuit: &mut Circuit, t: Tuple, value: BoolRef) {
        if value.is_const_false() {
            return;
        }
        match self.entries.get(&t).copied() {
            None => {
                self.entries.insert(t, value);
            }
            Some(old) => {
                let merged = circuit.or(old, value);
                self.entries.insert(t, merged);
            }
        }
    }
}

/// The output of translating a problem: a circuit, its root, and the map
/// from circuit inputs back to `(relation, tuple)` pairs.
#[derive(Debug)]
pub struct Translation {
    /// The circuit holding every gate the formula produced.
    pub circuit: Circuit,
    /// The root that must be asserted true.
    pub root: BoolRef,
    /// For each allocated circuit-input label, the free tuple it decides.
    pub free_inputs: HashMap<u32, (RelationId, Tuple)>,
}

/// Translates `formula` (a conjunction with the problem facts is expected
/// to have been taken by the caller) against the given bounds.
///
/// # Errors
///
/// Returns an error if the formula is ill-typed (arity mismatches,
/// unbound variables, unknown relations).
pub fn translate(
    universe: &Universe,
    relations: &[RelationDecl],
    formula: &Formula,
) -> Result<Translation> {
    let mut tr = Translator {
        universe,
        relations,
        circuit: Circuit::new(),
        leaves: vec![None; relations.len()],
        free_inputs: HashMap::new(),
        env: HashMap::new(),
    };
    let root = tr.formula(formula)?;
    Ok(Translation {
        circuit: tr.circuit,
        root,
        free_inputs: tr.free_inputs,
    })
}

/// The reusable, formula-independent part of a translation: every
/// relation's leaf matrix built eagerly over a shared circuit.
///
/// A bundle builds this once; each per-signature translation then starts
/// from a clone via [`translate_from`] instead of re-deriving the leaves,
/// which is the Kodkod-style sharing the pipeline leans on when many
/// formulas range over one set of bounds.
#[derive(Debug, Clone)]
pub struct TranslationBase {
    circuit: Circuit,
    leaves: Vec<Option<Matrix>>,
    free_inputs: HashMap<u32, (RelationId, Tuple)>,
}

impl TranslationBase {
    /// Number of relations whose leaves were prebuilt.
    pub fn num_relations(&self) -> usize {
        self.leaves.len()
    }

    /// Number of free-tuple circuit inputs allocated by the leaves.
    pub fn num_free_inputs(&self) -> usize {
        self.free_inputs.len()
    }
}

/// Builds the shared leaf matrices for every declared relation.
pub fn build_base(universe: &Universe, relations: &[RelationDecl]) -> TranslationBase {
    let mut tr = Translator {
        universe,
        relations,
        circuit: Circuit::new(),
        leaves: vec![None; relations.len()],
        free_inputs: HashMap::new(),
        env: HashMap::new(),
    };
    for i in 0..relations.len() {
        tr.leaf(RelationId(i as u32))
            .expect("declared relation index is in range");
    }
    TranslationBase {
        circuit: tr.circuit,
        leaves: tr.leaves,
        free_inputs: tr.free_inputs,
    }
}

/// Translates `formula` starting from a prebuilt [`TranslationBase`].
///
/// `relations` must begin with the declarations the base was built from,
/// unchanged; relations appended after the base was built (e.g. witness
/// relations) get their leaves translated lazily on first use.
///
/// # Errors
///
/// Returns an error if the formula is ill-typed (arity mismatches,
/// unbound variables, unknown relations).
pub fn translate_from(
    base: &TranslationBase,
    universe: &Universe,
    relations: &[RelationDecl],
    formula: &Formula,
) -> Result<Translation> {
    debug_assert!(
        relations.len() >= base.leaves.len(),
        "the base's relations must be a prefix of the problem's"
    );
    let mut leaves = base.leaves.clone();
    leaves.resize(relations.len(), None);
    let mut tr = Translator {
        universe,
        relations,
        circuit: base.circuit.clone(),
        leaves,
        free_inputs: base.free_inputs.clone(),
        env: HashMap::new(),
    };
    let root = tr.formula(formula)?;
    Ok(Translation {
        circuit: tr.circuit,
        root,
        free_inputs: tr.free_inputs,
    })
}

struct Translator<'a> {
    universe: &'a Universe,
    relations: &'a [RelationDecl],
    circuit: Circuit,
    /// Lazily-built leaf matrices, one per relation.
    leaves: Vec<Option<Matrix>>,
    free_inputs: HashMap<u32, (RelationId, Tuple)>,
    env: HashMap<QuantVar, Atom>,
}

impl<'a> Translator<'a> {
    fn leaf(&mut self, r: RelationId) -> Result<Matrix> {
        if r.index() >= self.relations.len() {
            return Err(LogicError::UnknownRelation(r.0));
        }
        if let Some(m) = &self.leaves[r.index()] {
            return Ok(m.clone());
        }
        let decl = &self.relations[r.index()];
        let mut m = Matrix::new(decl.arity());
        for t in decl.upper().iter() {
            let node = if decl.lower().contains(t) {
                self.circuit.mk_true()
            } else {
                let input = self.circuit.input();
                let label = self.circuit.num_inputs() - 1;
                self.free_inputs.insert(label, (r, t.clone()));
                input
            };
            m.entries.insert(t.clone(), node);
        }
        self.leaves[r.index()] = Some(m.clone());
        Ok(m)
    }

    fn expr(&mut self, e: &Expr) -> Result<Matrix> {
        match e {
            Expr::Relation(r) => self.leaf(*r),
            Expr::Atom(a) => {
                let mut m = Matrix::new(1);
                m.entries.insert(Tuple::unary(*a), self.circuit.mk_true());
                Ok(m)
            }
            Expr::Var(v) => {
                let a = self
                    .env
                    .get(v)
                    .copied()
                    .ok_or(LogicError::UnboundVariable(v.0))?;
                let mut m = Matrix::new(1);
                m.entries.insert(Tuple::unary(a), self.circuit.mk_true());
                Ok(m)
            }
            Expr::Union(a, b) => {
                let ma = self.expr(a)?;
                let mb = self.expr(b)?;
                if ma.arity != mb.arity {
                    return Err(LogicError::ArityMismatch {
                        operation: "union",
                        left: ma.arity,
                        right: mb.arity,
                    });
                }
                let mut out = ma.clone();
                for (t, g) in mb.entries {
                    out.accumulate(&mut self.circuit, t, g);
                }
                Ok(out)
            }
            Expr::Intersect(a, b) => {
                let ma = self.expr(a)?;
                let mb = self.expr(b)?;
                if ma.arity != mb.arity {
                    return Err(LogicError::ArityMismatch {
                        operation: "intersection",
                        left: ma.arity,
                        right: mb.arity,
                    });
                }
                let mut out = Matrix::new(ma.arity);
                for (t, ga) in &ma.entries {
                    if let Some(gb) = mb.get(t) {
                        let both = self.circuit.and(*ga, gb);
                        if !both.is_const_false() {
                            out.entries.insert(t.clone(), both);
                        }
                    }
                }
                Ok(out)
            }
            Expr::Difference(a, b) => {
                let ma = self.expr(a)?;
                let mb = self.expr(b)?;
                if ma.arity != mb.arity {
                    return Err(LogicError::ArityMismatch {
                        operation: "difference",
                        left: ma.arity,
                        right: mb.arity,
                    });
                }
                let mut out = Matrix::new(ma.arity);
                for (t, ga) in &ma.entries {
                    let g = match mb.get(t) {
                        None => *ga,
                        Some(gb) => self.circuit.and(*ga, !gb),
                    };
                    if !g.is_const_false() {
                        out.entries.insert(t.clone(), g);
                    }
                }
                Ok(out)
            }
            Expr::Join(a, b) => {
                let ma = self.expr(a)?;
                let mb = self.expr(b)?;
                if ma.arity + mb.arity < 3 {
                    return Err(LogicError::BadArity {
                        operation: "join",
                        found: ma.arity + mb.arity,
                    });
                }
                Ok(self.join(&ma, &mb))
            }
            Expr::Product(a, b) => {
                let ma = self.expr(a)?;
                let mb = self.expr(b)?;
                let mut out = Matrix::new(ma.arity + mb.arity);
                for (ta, ga) in &ma.entries {
                    for (tb, gb) in &mb.entries {
                        let g = self.circuit.and(*ga, *gb);
                        if !g.is_const_false() {
                            out.entries.insert(ta.concat(tb), g);
                        }
                    }
                }
                Ok(out)
            }
            Expr::Transpose(a) => {
                let ma = self.expr(a)?;
                if ma.arity != 2 {
                    return Err(LogicError::BadArity {
                        operation: "transpose",
                        found: ma.arity,
                    });
                }
                let mut out = Matrix::new(2);
                for (t, g) in &ma.entries {
                    out.entries.insert(t.reversed(), *g);
                }
                Ok(out)
            }
            Expr::Closure(a) => {
                let ma = self.expr(a)?;
                if ma.arity != 2 {
                    return Err(LogicError::BadArity {
                        operation: "closure",
                        found: ma.arity,
                    });
                }
                Ok(self.closure(&ma))
            }
            Expr::Iden => {
                let mut m = Matrix::new(2);
                for a in self.universe.atoms() {
                    m.entries
                        .insert(Tuple::binary(a, a), self.circuit.mk_true());
                }
                Ok(m)
            }
            Expr::Univ => {
                let mut m = Matrix::new(1);
                for a in self.universe.atoms() {
                    m.entries.insert(Tuple::unary(a), self.circuit.mk_true());
                }
                Ok(m)
            }
            Expr::None => Ok(Matrix::new(1)),
        }
    }

    fn join(&mut self, a: &Matrix, b: &Matrix) -> Matrix {
        // Index b's tuples by leading atom (ordered, see [`Matrix`]).
        let mut by_first: BTreeMap<Atom, Vec<(&Tuple, BoolRef)>> = BTreeMap::new();
        for (t, g) in &b.entries {
            by_first.entry(t.first()).or_default().push((t, *g));
        }
        let mut out = Matrix::new(a.arity + b.arity - 2);
        for (ta, ga) in &a.entries {
            if let Some(cands) = by_first.get(&ta.last()) {
                for (tb, gb) in cands {
                    if let Some(t) = ta.join(tb) {
                        let g = self.circuit.and(*ga, *gb);
                        out.accumulate(&mut self.circuit, t, g);
                    }
                }
            }
        }
        out
    }

    /// Transitive closure by iterated squaring.
    fn closure(&mut self, m: &Matrix) -> Matrix {
        let mut acc = m.clone();
        let mut hops = 1usize;
        let n = self.universe.len().max(1);
        while hops < n {
            let squared = self.join(&acc, &acc);
            let mut next = acc.clone();
            for (t, g) in squared.entries {
                next.accumulate(&mut self.circuit, t, g);
            }
            acc = next;
            hops *= 2;
        }
        acc
    }

    fn formula(&mut self, f: &Formula) -> Result<BoolRef> {
        match f {
            Formula::True => Ok(self.circuit.mk_true()),
            Formula::False => Ok(self.circuit.mk_false()),
            Formula::Subset(a, b) => {
                let ma = self.expr(a)?;
                let mb = self.expr(b)?;
                if ma.arity != mb.arity {
                    return Err(LogicError::ArityMismatch {
                        operation: "subset",
                        left: ma.arity,
                        right: mb.arity,
                    });
                }
                let mut parts = Vec::with_capacity(ma.entries.len());
                for (t, ga) in &ma.entries {
                    let gb = mb.get(t).unwrap_or_else(|| self.circuit.mk_false());
                    parts.push(self.circuit.implies(*ga, gb));
                }
                Ok(self.circuit.and_all(parts))
            }
            Formula::Equal(a, b) => {
                let fwd = self.formula(&Formula::Subset(a.clone(), b.clone()))?;
                let back = self.formula(&Formula::Subset(b.clone(), a.clone()))?;
                Ok(self.circuit.and(fwd, back))
            }
            Formula::Some(e) => {
                let m = self.expr(e)?;
                let items: Vec<BoolRef> = m.entries.values().copied().collect();
                Ok(self.circuit.or_all(items))
            }
            Formula::No(e) => {
                let some = self.formula(&Formula::Some(e.clone()))?;
                Ok(!some)
            }
            Formula::One(e) => {
                let m = self.expr(e)?;
                let items: Vec<BoolRef> = m.entries.values().copied().collect();
                Ok(self.circuit.exactly_one(&items))
            }
            Formula::Lone(e) => {
                let m = self.expr(e)?;
                let items: Vec<BoolRef> = m.entries.values().copied().collect();
                Ok(self.circuit.at_most_one(&items))
            }
            Formula::And(items) => {
                let mut parts = Vec::with_capacity(items.len());
                for i in items {
                    parts.push(self.formula(i)?);
                }
                Ok(self.circuit.and_all(parts))
            }
            Formula::Or(items) => {
                let mut parts = Vec::with_capacity(items.len());
                for i in items {
                    parts.push(self.formula(i)?);
                }
                Ok(self.circuit.or_all(parts))
            }
            Formula::Not(inner) => Ok(!self.formula(inner)?),
            Formula::ForAll(v, bound, body) => self.quantify(*v, bound, body, true),
            Formula::Exists(v, bound, body) => self.quantify(*v, bound, body, false),
        }
    }

    fn quantify(
        &mut self,
        v: QuantVar,
        bound: &Expr,
        body: &Formula,
        universal: bool,
    ) -> Result<BoolRef> {
        let mb = self.expr(bound)?;
        if mb.arity != 1 {
            return Err(LogicError::BadArity {
                operation: "quantifier bound",
                found: mb.arity,
            });
        }
        let saved = self.env.get(&v).copied();
        let mut parts = Vec::with_capacity(mb.entries.len());
        // Deterministic expansion order helps circuit sharing & testing.
        let mut items: Vec<(Tuple, BoolRef)> =
            mb.entries.iter().map(|(t, g)| (t.clone(), *g)).collect();
        items.sort_by(|a, b| a.0.cmp(&b.0));
        for (t, guard) in items {
            self.env.insert(v, t.first());
            let b = self.formula(body)?;
            let part = if universal {
                self.circuit.implies(guard, b)
            } else {
                self.circuit.and(guard, b)
            };
            parts.push(part);
        }
        match saved {
            Some(a) => {
                self.env.insert(v, a);
            }
            None => {
                self.env.remove(&v);
            }
        }
        Ok(if universal {
            self.circuit.and_all(parts)
        } else {
            self.circuit.or_all(parts)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::TupleSet;

    /// Builds a 3-atom universe with an exact unary relation `s` and a free
    /// binary relation `r` over s×s.
    fn setup() -> (Universe, Vec<RelationDecl>, RelationId, RelationId) {
        let mut u = Universe::new();
        let atoms: Vec<Atom> = (0..3).map(|i| u.add(format!("x{i}"))).collect();
        let s = TupleSet::unary_from(atoms.clone());
        let pairs = s.product(&s);
        let decls = vec![RelationDecl::exact("s", s), RelationDecl::free("r", pairs)];
        (u, decls, RelationId(0), RelationId(1))
    }

    #[test]
    fn exact_relation_translates_to_constants() {
        let (u, decls, s, _r) = setup();
        let f = Expr::relation(s).some();
        let t = translate(&u, &decls, &f).expect("translates");
        assert!(t.root.is_const_true());
        assert!(t.free_inputs.is_empty());
    }

    #[test]
    fn free_relation_allocates_inputs() {
        let (u, decls, _s, r) = setup();
        let f = Expr::relation(r).some();
        let t = translate(&u, &decls, &f).expect("translates");
        assert_eq!(t.free_inputs.len(), 9);
    }

    #[test]
    fn arity_mismatch_is_reported() {
        let (u, decls, s, r) = setup();
        let f = Expr::relation(s).equal(&Expr::relation(r));
        let err = translate(&u, &decls, &f).expect_err("must fail");
        assert!(matches!(err, LogicError::ArityMismatch { .. }));
    }

    #[test]
    fn unbound_variable_is_reported() {
        let (u, decls, _s, _r) = setup();
        let f = Expr::var(QuantVar::new(9)).some();
        let err = translate(&u, &decls, &f).expect_err("must fail");
        assert_eq!(err, LogicError::UnboundVariable(9));
    }

    #[test]
    fn closure_requires_binary() {
        let (u, decls, s, _r) = setup();
        let f = Expr::relation(s).closure().some();
        let err = translate(&u, &decls, &f).expect_err("must fail");
        assert!(matches!(
            err,
            LogicError::BadArity {
                operation: "closure",
                ..
            }
        ));
    }

    #[test]
    fn shared_base_reuse_matches_fresh_translation() {
        let (u, decls, _s, r) = setup();
        let base = build_base(&u, &decls);
        assert_eq!(base.num_relations(), 2);
        assert_eq!(base.num_free_inputs(), 9);
        let f = Expr::relation(r).some();
        let fresh = translate(&u, &decls, &f).expect("translates");
        let shared = translate_from(&base, &u, &decls, &f).expect("translates");
        assert_eq!(shared.free_inputs.len(), fresh.free_inputs.len());
        assert!(!shared.root.is_const_true() && !shared.root.is_const_false());
    }

    #[test]
    fn base_extends_lazily_for_appended_relations() {
        let (u, mut decls, _s, r) = setup();
        let base = build_base(&u, &decls);
        // A witness relation declared after the base was built.
        let w_atoms: Vec<Atom> = u.atoms().collect();
        decls.push(RelationDecl::free("w", TupleSet::unary_from(w_atoms)));
        let w = RelationId(2);
        let f = Formula::and([Expr::relation(r).some(), Expr::relation(w).some()]);
        let t = translate_from(&base, &u, &decls, &f).expect("translates");
        // 9 binary free tuples from the base + 3 fresh unary ones for `w`.
        assert_eq!(t.free_inputs.len(), 12);
    }

    #[test]
    fn no_of_free_relation_is_contingent() {
        let (u, decls, _s, r) = setup();
        let f = Expr::relation(r).no();
        let t = translate(&u, &decls, &f).expect("translates");
        assert!(!t.root.is_const_true());
        assert!(!t.root.is_const_false());
    }
}
