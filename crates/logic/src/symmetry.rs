//! Bound-induced symmetry detection and lex-leader breaking predicates.
//!
//! Following Kodkod's `SymmetryDetector`/`SymmetryBreaker` pair: two atoms
//! are *interchangeable* when swapping them maps every relation's lower and
//! upper bound onto itself, so any permutation within a class of mutually
//! interchangeable atoms maps models to models. For each class the breaker
//! conjoins lex-leader predicates (`x <=_lex pi(x)` for the transpositions
//! of consecutive class members) onto the translated circuit, which prunes
//! symmetric models without losing satisfiability: every model orbit keeps
//! at least one representative.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::ast::{Expr, Formula};
use crate::circuit::{BoolRef, Circuit};
use crate::relation::{RelationDecl, RelationId, Tuple, TupleSet};
use crate::universe::{Atom, Universe};

/// Atoms mentioned literally by a formula (via [`Expr::Atom`]).
///
/// Such atoms are pinned: a transposition moving one of them changes the
/// formula itself, so they must be excluded from symmetry classes.
pub fn formula_atoms(f: &Formula) -> BTreeSet<Atom> {
    let mut out = BTreeSet::new();
    collect_formula_atoms(f, &mut out);
    out
}

fn collect_formula_atoms(f: &Formula, out: &mut BTreeSet<Atom>) {
    match f {
        Formula::True | Formula::False => {}
        Formula::Subset(a, b) | Formula::Equal(a, b) => {
            collect_expr_atoms(a, out);
            collect_expr_atoms(b, out);
        }
        Formula::Some(e) | Formula::No(e) | Formula::One(e) | Formula::Lone(e) => {
            collect_expr_atoms(e, out);
        }
        Formula::And(items) | Formula::Or(items) => {
            for i in items {
                collect_formula_atoms(i, out);
            }
        }
        Formula::Not(inner) => collect_formula_atoms(inner, out),
        Formula::ForAll(_, bound, body) | Formula::Exists(_, bound, body) => {
            collect_expr_atoms(bound, out);
            collect_formula_atoms(body, out);
        }
    }
}

fn collect_expr_atoms(e: &Expr, out: &mut BTreeSet<Atom>) {
    match e {
        Expr::Relation(_) | Expr::Var(_) | Expr::Iden | Expr::Univ | Expr::None => {}
        Expr::Atom(a) => {
            out.insert(*a);
        }
        Expr::Union(a, b)
        | Expr::Intersect(a, b)
        | Expr::Difference(a, b)
        | Expr::Join(a, b)
        | Expr::Product(a, b) => {
            collect_expr_atoms(a, out);
            collect_expr_atoms(b, out);
        }
        Expr::Transpose(a) | Expr::Closure(a) => collect_expr_atoms(a, out),
    }
}

/// `t` with atoms `a` and `b` exchanged.
fn swap_tuple(t: &Tuple, a: Atom, b: Atom) -> Tuple {
    let atoms: Vec<Atom> = t
        .atoms()
        .iter()
        .map(|&x| {
            if x == a {
                b
            } else if x == b {
                a
            } else {
                x
            }
        })
        .collect();
    Tuple::new(atoms)
}

/// Does exchanging `a` and `b` map `ts` onto itself?
fn swap_fixes(ts: &TupleSet, a: Atom, b: Atom) -> bool {
    ts.iter().all(|t| {
        if !t.atoms().contains(&a) && !t.atoms().contains(&b) {
            true
        } else {
            ts.contains(&swap_tuple(t, a, b))
        }
    })
}

/// Does exchanging `a` and `b` fix every bound of every relation?
fn transposition_fixes_bounds(relations: &[RelationDecl], a: Atom, b: Atom) -> bool {
    relations
        .iter()
        .all(|d| swap_fixes(d.lower(), a, b) && swap_fixes(d.upper(), a, b))
}

/// Partitions the universe into classes of interchangeable atoms.
///
/// Two atoms land in one class when their transposition fixes every
/// relation bound (Kodkod's bound-induced partition refinement). Classes
/// are closed under composition: transpositions joining a class generate
/// its full symmetric group, so every permutation within a class is a
/// symmetry. Atoms in `pinned` (typically those the facts mention
/// literally) are kept as singletons and never returned. Only classes with
/// at least two atoms are returned, each sorted, in ascending order of
/// their smallest atom.
pub fn atom_classes(
    universe: &Universe,
    relations: &[RelationDecl],
    pinned: &BTreeSet<Atom>,
) -> Vec<Vec<Atom>> {
    let n = universe.len();
    // Fingerprint prefilter: interchangeable atoms must occur in the same
    // number of tuples of every bound, so unequal counts skip the O(bound)
    // transposition check.
    let mut prints: Vec<Vec<u32>> = vec![Vec::new(); n];
    for decl in relations {
        for bound in [decl.lower(), decl.upper()] {
            let mut counts = vec![0u32; n];
            for t in bound.iter() {
                for a in t.atoms() {
                    counts[a.index()] += 1;
                }
            }
            for (p, c) in prints.iter_mut().zip(&counts) {
                p.push(*c);
            }
        }
    }
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let atoms: Vec<Atom> = universe.atoms().collect();
    for i in 0..n {
        if pinned.contains(&atoms[i]) {
            continue;
        }
        for j in (i + 1)..n {
            if pinned.contains(&atoms[j]) || prints[i] != prints[j] {
                continue;
            }
            let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
            if ri == rj {
                continue;
            }
            if transposition_fixes_bounds(relations, atoms[i], atoms[j]) {
                parent[rj.max(ri)] = rj.min(ri);
            }
        }
    }
    let mut classes: BTreeMap<usize, Vec<Atom>> = BTreeMap::new();
    for (i, &atom) in atoms.iter().enumerate() {
        let root = find(&mut parent, i);
        classes.entry(root).or_default().push(atom);
    }
    classes.into_values().filter(|c| c.len() >= 2).collect()
}

/// Builds the conjunction of lex-leader predicates for `classes`.
///
/// For each transposition `pi = (a b)` of consecutive class members, the
/// predicate constrains the vector of free-tuple inputs `x` (in
/// `(relation, tuple)` order) to satisfy `x <=_lex pi(x)`. Columns are
/// restricted to inputs in `reachable` (the inputs the asserted root
/// actually constrains): if a tuple's swap image is missing there, the
/// whole transposition is skipped — always sound, merely weaker.
pub fn break_predicate(
    circuit: &mut Circuit,
    free_inputs: &HashMap<u32, (RelationId, Tuple)>,
    reachable: &BTreeSet<u32>,
    classes: &[Vec<Atom>],
) -> BoolRef {
    // Deterministic column order over the reachable free tuples.
    let by_tuple: BTreeMap<(RelationId, &Tuple), BoolRef> = free_inputs
        .iter()
        .filter(|(label, _)| reachable.contains(label))
        .map(|(&label, (rel, tuple))| {
            let r = circuit
                .input_ref(label)
                .expect("free input exists in circuit");
            ((*rel, tuple), r)
        })
        .collect();
    let mut predicates = Vec::new();
    for class in classes {
        for pair in class.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let mut columns: Vec<(BoolRef, BoolRef)> = Vec::new();
            let mut skip = false;
            for (&(rel, tuple), &x) in &by_tuple {
                let swapped = swap_tuple(tuple, a, b);
                if swapped == *tuple {
                    continue; // fixed position: contributes equality only
                }
                match by_tuple.get(&(rel, &swapped)) {
                    Some(&y) => columns.push((x, y)),
                    None => {
                        // Asymmetric reachability (or the swapped tuple was
                        // never free): constraining would be unsound.
                        skip = true;
                        break;
                    }
                }
            }
            if skip || columns.is_empty() {
                continue;
            }
            predicates.push(lex_le(circuit, &columns));
        }
    }
    circuit.and_all(predicates)
}

/// `x <=_lex y` over paired columns, false-before-true per position.
fn lex_le(circuit: &mut Circuit, columns: &[(BoolRef, BoolRef)]) -> BoolRef {
    let mut le = circuit.mk_true();
    for &(x, y) in columns.iter().rev() {
        let lt = circuit.and(!x, y);
        let eq = circuit.iff(x, y);
        let eq_and_rest = circuit.and(eq, le);
        le = circuit.or(lt, eq_and_rest);
    }
    le
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe_with(n: usize) -> (Universe, Vec<Atom>) {
        let mut u = Universe::new();
        let atoms: Vec<Atom> = (0..n).map(|i| u.add(format!("a{i}"))).collect();
        (u, atoms)
    }

    #[test]
    fn uniform_bounds_give_one_class() {
        let (u, atoms) = universe_with(4);
        let decls = vec![RelationDecl::free("r", TupleSet::unary_from(atoms.clone()))];
        let classes = atom_classes(&u, &decls, &BTreeSet::new());
        assert_eq!(classes, vec![atoms]);
    }

    #[test]
    fn distinguished_atom_is_excluded() {
        let (u, atoms) = universe_with(4);
        let decls = vec![
            RelationDecl::free("r", TupleSet::unary_from(atoms.clone())),
            // a0 alone in an exact relation: no transposition moving it
            // fixes this bound.
            RelationDecl::exact("s", TupleSet::unary_from([atoms[0]])),
        ];
        let classes = atom_classes(&u, &decls, &BTreeSet::new());
        assert_eq!(classes, vec![atoms[1..].to_vec()]);
    }

    #[test]
    fn pinned_atoms_stay_singletons() {
        let (u, atoms) = universe_with(3);
        let decls = vec![RelationDecl::free("r", TupleSet::unary_from(atoms.clone()))];
        let pinned: BTreeSet<Atom> = [atoms[1]].into();
        let classes = atom_classes(&u, &decls, &pinned);
        assert_eq!(classes, vec![vec![atoms[0], atoms[2]]]);
    }

    #[test]
    fn binary_bounds_constrain_classes() {
        // edges ⊆ {(a0,a1), (a1,a0)} makes {a0,a1} interchangeable but
        // separates them from a2 (which has different membership counts).
        let (u, atoms) = universe_with(3);
        let decls = vec![RelationDecl::free(
            "edges",
            TupleSet::binary_from([(atoms[0], atoms[1]), (atoms[1], atoms[0])]),
        )];
        let classes = atom_classes(&u, &decls, &BTreeSet::new());
        assert_eq!(classes, vec![vec![atoms[0], atoms[1]]]);
    }

    #[test]
    fn formula_atoms_walks_all_cases() {
        let (_, atoms) = universe_with(3);
        let f = Formula::and([
            Expr::atom(atoms[0]).in_(&Expr::Univ),
            Expr::atom(atoms[1])
                .product(&Expr::atom(atoms[2]))
                .some()
                .not(),
        ]);
        let got = formula_atoms(&f);
        assert_eq!(got, atoms.into_iter().collect());
    }

    #[test]
    fn lex_le_orders_false_before_true() {
        let mut c = Circuit::new();
        let x = c.input();
        let y = c.input();
        let le = lex_le(&mut c, &[(x, y)]);
        // (x <= y) with false < true, i.e. x => y.
        for (vx, vy, expected) in [
            (false, false, true),
            (false, true, true),
            (true, false, false),
            (true, true, true),
        ] {
            let env: HashMap<u32, bool> = [(0, vx), (1, vy)].into();
            assert_eq!(c.eval(le, &env), expected, "x={vx} y={vy}");
        }
    }
}
