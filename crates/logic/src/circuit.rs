//! Hash-consed boolean circuits and Tseitin transformation to CNF.
//!
//! The relational-logic translator (the Kodkod analog) produces circuits
//! rather than CNF directly: intermediate gates are shared aggressively via
//! hash-consing, and only the gates reachable from the root formula get
//! Tseitin variables.

use std::collections::HashMap;

use crate::sat::{Lit, Solver, Var};

/// A reference to a circuit node, with a sign bit for negation.
///
/// Negation is free: `!b` flips the sign bit rather than allocating a gate.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BoolRef(u32);

const TRUE_IDX: u32 = 0;

impl BoolRef {
    fn new(index: u32, negated: bool) -> BoolRef {
        BoolRef((index << 1) | u32::from(negated))
    }

    fn index(self) -> u32 {
        self.0 >> 1
    }

    fn negated(self) -> bool {
        self.0 & 1 == 1
    }

    /// Returns `true` if this reference is the constant true.
    pub fn is_const_true(self) -> bool {
        self.index() == TRUE_IDX && !self.negated()
    }

    /// Returns `true` if this reference is the constant false.
    pub fn is_const_false(self) -> bool {
        self.index() == TRUE_IDX && self.negated()
    }
}

impl std::ops::Not for BoolRef {
    type Output = BoolRef;

    fn not(self) -> BoolRef {
        BoolRef(self.0 ^ 1)
    }
}

impl std::fmt::Debug for BoolRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.negated() {
            write!(f, "!n{}", self.index())
        } else {
            write!(f, "n{}", self.index())
        }
    }
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum Gate {
    /// The constant true (index 0 only).
    True,
    /// A free input, identified by an opaque label assigned by the caller.
    Input(u32),
    /// Conjunction of two or more references (sorted, deduplicated).
    And(Vec<BoolRef>),
    /// Disjunction of two or more references (sorted, deduplicated).
    Or(Vec<BoolRef>),
}

/// A builder for hash-consed boolean circuits.
///
/// # Examples
///
/// ```
/// use separ_logic::circuit::Circuit;
///
/// let mut c = Circuit::new();
/// let a = c.input();
/// let b = c.input();
/// let both = c.and(a, b);
/// assert_eq!(c.and(a, b), both); // hash-consed
/// assert!(c.or(a, !a).is_const_true());
/// ```
#[derive(Debug, Default)]
pub struct Circuit {
    gates: Vec<Gate>,
    dedup: HashMap<Gate, u32>,
    next_input: u32,
}

impl Circuit {
    /// Creates a circuit containing only the constants.
    pub fn new() -> Circuit {
        let mut c = Circuit::default();
        c.gates.push(Gate::True);
        c
    }

    /// The constant true.
    pub fn mk_true(&self) -> BoolRef {
        BoolRef::new(TRUE_IDX, false)
    }

    /// The constant false.
    pub fn mk_false(&self) -> BoolRef {
        BoolRef::new(TRUE_IDX, true)
    }

    /// Allocates a fresh free input.
    pub fn input(&mut self) -> BoolRef {
        let gate = Gate::Input(self.next_input);
        self.next_input += 1;
        BoolRef::new(self.intern(gate), false)
    }

    /// Number of inputs allocated so far. The most recent input created by
    /// [`Circuit::input`] carries the label `num_inputs() - 1`.
    pub fn num_inputs(&self) -> u32 {
        self.next_input
    }

    /// Number of gates allocated (including the constant).
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Returns `true` if the circuit has no gates beyond the constant.
    pub fn is_empty(&self) -> bool {
        self.gates.len() <= 1
    }

    fn intern(&mut self, gate: Gate) -> u32 {
        if let Some(&i) = self.dedup.get(&gate) {
            return i;
        }
        let i = self.gates.len() as u32;
        self.gates.push(gate.clone());
        self.dedup.insert(gate, i);
        i
    }

    /// Conjunction of two references, with constant folding and sharing.
    pub fn and(&mut self, a: BoolRef, b: BoolRef) -> BoolRef {
        self.and_all([a, b])
    }

    /// Disjunction of two references, with constant folding and sharing.
    pub fn or(&mut self, a: BoolRef, b: BoolRef) -> BoolRef {
        self.or_all([a, b])
    }

    /// `a => b`.
    pub fn implies(&mut self, a: BoolRef, b: BoolRef) -> BoolRef {
        self.or(!a, b)
    }

    /// `a <=> b`.
    pub fn iff(&mut self, a: BoolRef, b: BoolRef) -> BoolRef {
        let fwd = self.implies(a, b);
        let back = self.implies(b, a);
        self.and(fwd, back)
    }

    /// Conjunction over an iterator of references.
    pub fn and_all<I: IntoIterator<Item = BoolRef>>(&mut self, items: I) -> BoolRef {
        let mut flat: Vec<BoolRef> = Vec::new();
        for r in items {
            if r.is_const_false() {
                return self.mk_false();
            }
            if r.is_const_true() {
                continue;
            }
            flat.push(r);
        }
        flat.sort();
        flat.dedup();
        // x & !x == false
        for w in flat.windows(2) {
            if w[0].index() == w[1].index() {
                return self.mk_false();
            }
        }
        match flat.len() {
            0 => self.mk_true(),
            1 => flat[0],
            _ => BoolRef::new(self.intern(Gate::And(flat)), false),
        }
    }

    /// Disjunction over an iterator of references.
    pub fn or_all<I: IntoIterator<Item = BoolRef>>(&mut self, items: I) -> BoolRef {
        let mut flat: Vec<BoolRef> = Vec::new();
        for r in items {
            if r.is_const_true() {
                return self.mk_true();
            }
            if r.is_const_false() {
                continue;
            }
            flat.push(r);
        }
        flat.sort();
        flat.dedup();
        for w in flat.windows(2) {
            if w[0].index() == w[1].index() {
                return self.mk_true();
            }
        }
        match flat.len() {
            0 => self.mk_false(),
            1 => flat[0],
            _ => BoolRef::new(self.intern(Gate::Or(flat)), false),
        }
    }

    /// At most one of `items` is true.
    ///
    /// Small sets use the pairwise encoding (best propagation); larger
    /// ones a linear "ladder": walking the items with a running
    /// any-so-far disjunction and forbidding `item ∧ any-before`, which
    /// keeps the circuit linear in `items.len()`.
    pub fn at_most_one(&mut self, items: &[BoolRef]) -> BoolRef {
        if items.len() <= 8 {
            let mut constraints = Vec::new();
            for i in 0..items.len() {
                for j in (i + 1)..items.len() {
                    let not_both = self.or(!items[i], !items[j]);
                    constraints.push(not_both);
                }
            }
            return self.and_all(constraints);
        }
        let mut any_before = items[0];
        let mut parts = Vec::with_capacity(items.len());
        for &item in &items[1..] {
            let both = self.and(item, any_before);
            parts.push(!both);
            any_before = self.or(any_before, item);
        }
        self.and_all(parts)
    }

    /// Exactly one of `items` is true.
    pub fn exactly_one(&mut self, items: &[BoolRef]) -> BoolRef {
        let some = self.or_all(items.iter().copied());
        let amo = self.at_most_one(items);
        self.and(some, amo)
    }

    /// Evaluates a reference under an assignment of input labels to booleans.
    ///
    /// Inputs missing from `env` default to `false`.
    pub fn eval(&self, r: BoolRef, env: &HashMap<u32, bool>) -> bool {
        let base = match &self.gates[r.index() as usize] {
            Gate::True => true,
            Gate::Input(label) => *env.get(label).unwrap_or(&false),
            Gate::And(children) => children.iter().all(|&c| self.eval(c, env)),
            Gate::Or(children) => children.iter().any(|&c| self.eval(c, env)),
        };
        base != r.negated()
    }
}

/// The result of lowering a circuit to CNF inside a [`Solver`].
///
/// Maps circuit input labels to solver variables so models can be decoded.
#[derive(Debug, Default)]
pub struct CnfMap {
    input_vars: HashMap<u32, Var>,
}

impl CnfMap {
    /// The solver variable allocated for a circuit input, if it was
    /// reachable from the asserted root.
    pub fn var_for_input(&self, label: u32) -> Option<Var> {
        self.input_vars.get(&label).copied()
    }

    /// Iterates over `(input label, solver var)` pairs.
    pub fn inputs(&self) -> impl Iterator<Item = (u32, Var)> + '_ {
        self.input_vars.iter().map(|(&l, &v)| (l, v))
    }
}

/// Asserts `root` into `solver` via the Tseitin transformation.
///
/// Only gates reachable from `root` are translated. Returns the mapping
/// from circuit inputs to solver variables.
pub fn assert_circuit(circuit: &Circuit, root: BoolRef, solver: &mut Solver) -> CnfMap {
    let mut map = CnfMap::default();
    if root.is_const_true() {
        return map;
    }
    if root.is_const_false() {
        solver.add_clause(&[]);
        return map;
    }
    let mut gate_lit: HashMap<u32, Lit> = HashMap::new();
    let root_lit = tseitin(circuit, root.index(), solver, &mut gate_lit, &mut map);
    let root_lit = if root.negated() { !root_lit } else { root_lit };
    solver.add_clause(&[root_lit]);
    map
}

fn tseitin(
    circuit: &Circuit,
    index: u32,
    solver: &mut Solver,
    gate_lit: &mut HashMap<u32, Lit>,
    map: &mut CnfMap,
) -> Lit {
    if let Some(&l) = gate_lit.get(&index) {
        return l;
    }
    let lit = match &circuit.gates[index as usize] {
        Gate::True => unreachable!("constants are handled by the caller"),
        Gate::Input(label) => {
            let v = solver.new_var();
            map.input_vars.insert(*label, v);
            v.positive()
        }
        Gate::And(children) => {
            let child_lits: Vec<Lit> = children
                .iter()
                .map(|c| {
                    let l = tseitin(circuit, c.index(), solver, gate_lit, map);
                    if c.negated() {
                        !l
                    } else {
                        l
                    }
                })
                .collect();
            let g = solver.new_var().positive();
            // g => child, for each child
            for &cl in &child_lits {
                solver.add_clause(&[!g, cl]);
            }
            // (children) => g
            let mut clause: Vec<Lit> = child_lits.iter().map(|&c| !c).collect();
            clause.push(g);
            solver.add_clause(&clause);
            g
        }
        Gate::Or(children) => {
            let child_lits: Vec<Lit> = children
                .iter()
                .map(|c| {
                    let l = tseitin(circuit, c.index(), solver, gate_lit, map);
                    if c.negated() {
                        !l
                    } else {
                        l
                    }
                })
                .collect();
            let g = solver.new_var().positive();
            // child => g, for each child
            for &cl in &child_lits {
                solver.add_clause(&[!cl, g]);
            }
            // g => (children)
            let mut clause = child_lits.clone();
            clause.push(!g);
            solver.add_clause(&clause);
            g
        }
    };
    gate_lit.insert(index, lit);
    lit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::SolveResult;

    #[test]
    fn constant_folding() {
        let mut c = Circuit::new();
        let a = c.input();
        let t = c.mk_true();
        let f = c.mk_false();
        assert_eq!(c.and(a, t), a);
        assert_eq!(c.and(a, f), f);
        assert_eq!(c.or(a, f), a);
        assert_eq!(c.or(a, t), t);
        assert_eq!(c.and(a, !a), f);
        assert_eq!(c.or(a, !a), t);
        assert_eq!(c.and(a, a), a);
    }

    #[test]
    fn hash_consing_shares_gates() {
        let mut c = Circuit::new();
        let a = c.input();
        let b = c.input();
        let g1 = c.and(a, b);
        let g2 = c.and(b, a);
        assert_eq!(g1, g2);
        let before = c.len();
        let _ = c.and(a, b);
        assert_eq!(c.len(), before);
    }

    #[test]
    fn tseitin_sat_round_trip() {
        let mut c = Circuit::new();
        let a = c.input();
        let b = c.input();
        let xor_ish = {
            let l = c.and(a, !b);
            let r = c.and(!a, b);
            c.or(l, r)
        };
        let mut s = Solver::new();
        let map = assert_circuit(&c, xor_ish, &mut s);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        let va = map.var_for_input(0).expect("input a mapped");
        let vb = map.var_for_input(1).expect("input b mapped");
        assert_ne!(s.is_true(va.positive()), s.is_true(vb.positive()));
    }

    #[test]
    fn tseitin_unsat_contradiction() {
        let mut c = Circuit::new();
        let a = c.input();
        let b = c.input();
        let g = c.and(a, b);
        let contradiction = c.and(g, !a);
        // Folding may or may not collapse this; assert via SAT either way.
        let mut s = Solver::new();
        assert_circuit(&c, contradiction, &mut s);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn constant_roots() {
        let c0 = Circuit::new();
        let mut s = Solver::new();
        assert_circuit(&c0, c0.mk_true(), &mut s);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        let mut s2 = Solver::new();
        assert_circuit(&c0, c0.mk_false(), &mut s2);
        assert_eq!(s2.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn exactly_one_enumerates_n_models() {
        let mut c = Circuit::new();
        let inputs: Vec<BoolRef> = (0..4).map(|_| c.input()).collect();
        let formula = c.exactly_one(&inputs);
        let mut s = Solver::new();
        let map = assert_circuit(&c, formula, &mut s);
        let vars: Vec<_> = (0..4)
            .map(|i| map.var_for_input(i).expect("mapped"))
            .collect();
        let mut models = 0;
        while s.solve(&[]) == SolveResult::Sat {
            models += 1;
            assert!(models <= 4);
            assert_eq!(vars.iter().filter(|v| s.is_true(v.positive())).count(), 1);
            let blocking: Vec<_> = vars
                .iter()
                .map(|v| {
                    if s.is_true(v.positive()) {
                        v.negative()
                    } else {
                        v.positive()
                    }
                })
                .collect();
            s.add_clause(&blocking);
        }
        assert_eq!(models, 4);
    }

    #[test]
    fn eval_matches_sat_model() {
        let mut c = Circuit::new();
        let a = c.input();
        let b = c.input();
        let d = c.input();
        let ab = c.or(a, b);
        let formula = c.and(ab, !d);
        let mut s = Solver::new();
        let map = assert_circuit(&c, formula, &mut s);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        let mut env = HashMap::new();
        for (label, var) in map.inputs() {
            env.insert(label, s.is_true(var.positive()));
        }
        assert!(c.eval(formula, &env));
    }
}
