//! Hash-consed boolean circuits and their lowering to CNF.
//!
//! The relational-logic translator (the Kodkod analog) produces circuits
//! rather than CNF directly: intermediate gates are shared aggressively via
//! hash-consing, and only the gates reachable from the root formula get
//! solver variables. Lowering is polarity-aware by default
//! ([`CnfEncoding::PlaistedGreenbaum`]): each reachable gate's polarity is
//! computed from the root first, and only the implication direction(s) that
//! polarity requires are emitted. The classic bidirectional encoding stays
//! available as [`CnfEncoding::Tseitin`].

use std::collections::HashMap;

use crate::sat::{Lit, Solver, Var};

/// A reference to a circuit node, with a sign bit for negation.
///
/// Negation is free: `!b` flips the sign bit rather than allocating a gate.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BoolRef(u32);

const TRUE_IDX: u32 = 0;

impl BoolRef {
    fn new(index: u32, negated: bool) -> BoolRef {
        BoolRef((index << 1) | u32::from(negated))
    }

    fn index(self) -> u32 {
        self.0 >> 1
    }

    fn negated(self) -> bool {
        self.0 & 1 == 1
    }

    /// Returns `true` if this reference is the constant true.
    pub fn is_const_true(self) -> bool {
        self.index() == TRUE_IDX && !self.negated()
    }

    /// Returns `true` if this reference is the constant false.
    pub fn is_const_false(self) -> bool {
        self.index() == TRUE_IDX && self.negated()
    }
}

impl std::ops::Not for BoolRef {
    type Output = BoolRef;

    fn not(self) -> BoolRef {
        BoolRef(self.0 ^ 1)
    }
}

impl std::fmt::Debug for BoolRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.negated() {
            write!(f, "!n{}", self.index())
        } else {
            write!(f, "n{}", self.index())
        }
    }
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum Gate {
    /// The constant true (index 0 only).
    True,
    /// A free input, identified by an opaque label assigned by the caller.
    Input(u32),
    /// Conjunction of two or more references (sorted, deduplicated).
    And(Vec<BoolRef>),
    /// Disjunction of two or more references (sorted, deduplicated).
    Or(Vec<BoolRef>),
}

/// A builder for hash-consed boolean circuits.
///
/// # Examples
///
/// ```
/// use separ_logic::circuit::Circuit;
///
/// let mut c = Circuit::new();
/// let a = c.input();
/// let b = c.input();
/// let both = c.and(a, b);
/// assert_eq!(c.and(a, b), both); // hash-consed
/// assert!(c.or(a, !a).is_const_true());
/// ```
#[derive(Debug, Default, Clone)]
pub struct Circuit {
    gates: Vec<Gate>,
    dedup: HashMap<Gate, u32>,
    next_input: u32,
}

impl Circuit {
    /// Creates a circuit containing only the constants.
    pub fn new() -> Circuit {
        let mut c = Circuit::default();
        c.gates.push(Gate::True);
        c
    }

    /// The constant true.
    pub fn mk_true(&self) -> BoolRef {
        BoolRef::new(TRUE_IDX, false)
    }

    /// The constant false.
    pub fn mk_false(&self) -> BoolRef {
        BoolRef::new(TRUE_IDX, true)
    }

    /// Allocates a fresh free input.
    pub fn input(&mut self) -> BoolRef {
        let gate = Gate::Input(self.next_input);
        self.next_input += 1;
        BoolRef::new(self.intern(gate), false)
    }

    /// Number of inputs allocated so far. The most recent input created by
    /// [`Circuit::input`] carries the label `num_inputs() - 1`.
    pub fn num_inputs(&self) -> u32 {
        self.next_input
    }

    /// Number of gates allocated (including the constant).
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Returns `true` if the circuit has no gates beyond the constant.
    pub fn is_empty(&self) -> bool {
        self.gates.len() <= 1
    }

    fn intern(&mut self, gate: Gate) -> u32 {
        if let Some(&i) = self.dedup.get(&gate) {
            return i;
        }
        let i = self.gates.len() as u32;
        self.gates.push(gate.clone());
        self.dedup.insert(gate, i);
        i
    }

    /// Conjunction of two references, with constant folding and sharing.
    pub fn and(&mut self, a: BoolRef, b: BoolRef) -> BoolRef {
        self.and_all([a, b])
    }

    /// Disjunction of two references, with constant folding and sharing.
    pub fn or(&mut self, a: BoolRef, b: BoolRef) -> BoolRef {
        self.or_all([a, b])
    }

    /// `a => b`.
    pub fn implies(&mut self, a: BoolRef, b: BoolRef) -> BoolRef {
        self.or(!a, b)
    }

    /// `a <=> b`.
    pub fn iff(&mut self, a: BoolRef, b: BoolRef) -> BoolRef {
        let fwd = self.implies(a, b);
        let back = self.implies(b, a);
        self.and(fwd, back)
    }

    /// Conjunction over an iterator of references.
    pub fn and_all<I: IntoIterator<Item = BoolRef>>(&mut self, items: I) -> BoolRef {
        let mut flat: Vec<BoolRef> = Vec::new();
        for r in items {
            if r.is_const_false() {
                return self.mk_false();
            }
            if r.is_const_true() {
                continue;
            }
            flat.push(r);
        }
        flat.sort();
        flat.dedup();
        // x & !x == false
        for w in flat.windows(2) {
            if w[0].index() == w[1].index() {
                return self.mk_false();
            }
        }
        match flat.len() {
            0 => self.mk_true(),
            1 => flat[0],
            _ => BoolRef::new(self.intern(Gate::And(flat)), false),
        }
    }

    /// Disjunction over an iterator of references.
    pub fn or_all<I: IntoIterator<Item = BoolRef>>(&mut self, items: I) -> BoolRef {
        let mut flat: Vec<BoolRef> = Vec::new();
        for r in items {
            if r.is_const_true() {
                return self.mk_true();
            }
            if r.is_const_false() {
                continue;
            }
            flat.push(r);
        }
        flat.sort();
        flat.dedup();
        for w in flat.windows(2) {
            if w[0].index() == w[1].index() {
                return self.mk_true();
            }
        }
        match flat.len() {
            0 => self.mk_false(),
            1 => flat[0],
            _ => BoolRef::new(self.intern(Gate::Or(flat)), false),
        }
    }

    /// At most one of `items` is true.
    ///
    /// Small sets use the pairwise encoding (best propagation); larger
    /// ones a linear "ladder": walking the items with a running
    /// any-so-far disjunction and forbidding `item ∧ any-before`, which
    /// keeps the circuit linear in `items.len()`.
    pub fn at_most_one(&mut self, items: &[BoolRef]) -> BoolRef {
        if items.len() <= 8 {
            let mut constraints = Vec::new();
            for i in 0..items.len() {
                for j in (i + 1)..items.len() {
                    let not_both = self.or(!items[i], !items[j]);
                    constraints.push(not_both);
                }
            }
            return self.and_all(constraints);
        }
        let mut any_before = items[0];
        let mut parts = Vec::with_capacity(items.len());
        for &item in &items[1..] {
            let both = self.and(item, any_before);
            parts.push(!both);
            any_before = self.or(any_before, item);
        }
        self.and_all(parts)
    }

    /// Exactly one of `items` is true.
    pub fn exactly_one(&mut self, items: &[BoolRef]) -> BoolRef {
        let some = self.or_all(items.iter().copied());
        let amo = self.at_most_one(items);
        self.and(some, amo)
    }

    /// The reference of an already-allocated input, by its label.
    pub fn input_ref(&self, label: u32) -> Option<BoolRef> {
        self.dedup
            .get(&Gate::Input(label))
            .map(|&i| BoolRef::new(i, false))
    }

    /// Labels of all inputs reachable from `root`, sorted ascending.
    ///
    /// These are exactly the inputs that receive solver variables when the
    /// root is asserted; unreachable inputs cannot influence its value.
    pub fn reachable_inputs(&self, root: BoolRef) -> Vec<u32> {
        let mut visited = vec![false; self.gates.len()];
        let mut labels = Vec::new();
        let mut stack = vec![root.index()];
        while let Some(idx) = stack.pop() {
            if std::mem::replace(&mut visited[idx as usize], true) {
                continue;
            }
            match &self.gates[idx as usize] {
                Gate::True => {}
                Gate::Input(label) => labels.push(*label),
                Gate::And(children) | Gate::Or(children) => {
                    stack.extend(children.iter().map(|c| c.index()));
                }
            }
        }
        labels.sort_unstable();
        labels
    }

    /// Evaluates a reference under an assignment of input labels to booleans.
    ///
    /// Inputs missing from `env` default to `false`.
    pub fn eval(&self, r: BoolRef, env: &HashMap<u32, bool>) -> bool {
        let base = match &self.gates[r.index() as usize] {
            Gate::True => true,
            Gate::Input(label) => *env.get(label).unwrap_or(&false),
            Gate::And(children) => children.iter().all(|&c| self.eval(c, env)),
            Gate::Or(children) => children.iter().any(|&c| self.eval(c, env)),
        };
        base != r.negated()
    }
}

/// The CNF transformation used by [`assert_circuit_with`].
#[derive(Debug, Default, Copy, Clone, PartialEq, Eq, Hash)]
pub enum CnfEncoding {
    /// Polarity-aware Plaisted–Greenbaum encoding (the default): each gate
    /// emits only the implication direction(s) its polarity from the root
    /// requires. Equisatisfiable with the circuit, and the projections of
    /// CNF models onto the input variables are exactly the circuit's
    /// models, so model enumeration is unaffected.
    #[default]
    PlaistedGreenbaum,
    /// Classic bidirectional Tseitin encoding: every gate is fully defined
    /// in both directions. Roughly twice the clauses, kept as a toggle for
    /// cross-checking the polarity analysis.
    Tseitin,
}

/// The result of lowering a circuit to CNF inside a [`Solver`].
///
/// Maps circuit input labels to solver variables so models can be decoded,
/// and records how large the emitted CNF was.
#[derive(Debug, Default)]
pub struct CnfMap {
    input_vars: HashMap<u32, Var>,
    clauses: usize,
    aux_vars: usize,
}

impl CnfMap {
    /// The solver variable allocated for a circuit input, if it was
    /// reachable from the asserted root.
    pub fn var_for_input(&self, label: u32) -> Option<Var> {
        self.input_vars.get(&label).copied()
    }

    /// Iterates over `(input label, solver var)` pairs.
    pub fn inputs(&self) -> impl Iterator<Item = (u32, Var)> + '_ {
        self.input_vars.iter().map(|(&l, &v)| (l, v))
    }

    /// Number of clauses this lowering handed to the solver (before the
    /// solver's own simplifications).
    pub fn num_clauses(&self) -> usize {
        self.clauses
    }

    /// Number of auxiliary (gate-definition) variables allocated.
    pub fn num_aux_vars(&self) -> usize {
        self.aux_vars
    }
}

/// Polarity bits: whether a gate is observed positively and/or negatively
/// from the asserted root.
const POL_POS: u8 = 1;
const POL_NEG: u8 = 2;

fn flip_polarity(p: u8) -> u8 {
    ((p & POL_POS) << 1) | ((p & POL_NEG) >> 1)
}

/// Computes each reachable gate's polarity set from `root`.
///
/// A gate has positive polarity if some path from the root reaches it
/// through an even number of negations, negative polarity for an odd
/// number; both bits can be set.
fn polarities(circuit: &Circuit, root: BoolRef) -> HashMap<u32, u8> {
    let mut pol: HashMap<u32, u8> = HashMap::new();
    let seed = if root.negated() { POL_NEG } else { POL_POS };
    let mut work: Vec<(u32, u8)> = vec![(root.index(), seed)];
    while let Some((idx, p)) = work.pop() {
        let entry = pol.entry(idx).or_insert(0);
        if *entry & p == p {
            continue;
        }
        *entry |= p;
        if let Gate::And(children) | Gate::Or(children) = &circuit.gates[idx as usize] {
            for c in children {
                let cp = if c.negated() { flip_polarity(p) } else { p };
                work.push((c.index(), cp));
            }
        }
    }
    pol
}

/// Asserts `root` into `solver` using the default (polarity-aware) encoding.
///
/// Only gates reachable from `root` are translated. Returns the mapping
/// from circuit inputs to solver variables.
pub fn assert_circuit(circuit: &Circuit, root: BoolRef, solver: &mut Solver) -> CnfMap {
    assert_circuit_with(circuit, root, solver, CnfEncoding::default())
}

/// Asserts `root` into `solver` with an explicit CNF encoding choice.
///
/// Gates are lowered in creation order (children always precede parents in
/// a hash-consed circuit), so variable numbering is deterministic for a
/// given circuit and root.
pub fn assert_circuit_with(
    circuit: &Circuit,
    root: BoolRef,
    solver: &mut Solver,
    encoding: CnfEncoding,
) -> CnfMap {
    let mut map = CnfMap::default();
    if root.is_const_true() {
        return map;
    }
    if root.is_const_false() {
        solver.add_clause(&[]);
        map.clauses = 1;
        return map;
    }
    let pol = polarities(circuit, root);
    let mut indices: Vec<u32> = pol.keys().copied().collect();
    indices.sort_unstable();
    let mut gate_lit: HashMap<u32, Lit> = HashMap::new();
    let signed = |gate_lit: &HashMap<u32, Lit>, r: BoolRef| -> Lit {
        let l = gate_lit[&r.index()];
        if r.negated() {
            !l
        } else {
            l
        }
    };
    for idx in indices {
        let p = match encoding {
            CnfEncoding::PlaistedGreenbaum => pol[&idx],
            CnfEncoding::Tseitin => POL_POS | POL_NEG,
        };
        match &circuit.gates[idx as usize] {
            Gate::True => unreachable!("constants never appear inside gates"),
            Gate::Input(label) => {
                let v = solver.new_var();
                map.input_vars.insert(*label, v);
                gate_lit.insert(idx, v.positive());
            }
            Gate::And(children) => {
                let child_lits: Vec<Lit> = children.iter().map(|&c| signed(&gate_lit, c)).collect();
                let g = solver.new_var().positive();
                map.aux_vars += 1;
                if p & POL_POS != 0 {
                    // g => child, for each child
                    for &cl in &child_lits {
                        solver.add_clause(&[!g, cl]);
                        map.clauses += 1;
                    }
                }
                if p & POL_NEG != 0 {
                    // (children) => g
                    let mut clause: Vec<Lit> = child_lits.iter().map(|&c| !c).collect();
                    clause.push(g);
                    solver.add_clause(&clause);
                    map.clauses += 1;
                }
                gate_lit.insert(idx, g);
            }
            Gate::Or(children) => {
                let child_lits: Vec<Lit> = children.iter().map(|&c| signed(&gate_lit, c)).collect();
                let g = solver.new_var().positive();
                map.aux_vars += 1;
                if p & POL_NEG != 0 {
                    // child => g, for each child
                    for &cl in &child_lits {
                        solver.add_clause(&[!cl, g]);
                        map.clauses += 1;
                    }
                }
                if p & POL_POS != 0 {
                    // g => (children)
                    let mut clause = child_lits.clone();
                    clause.push(!g);
                    solver.add_clause(&clause);
                    map.clauses += 1;
                }
                gate_lit.insert(idx, g);
            }
        }
    }
    let root_lit = signed(&gate_lit, BoolRef::new(root.index(), root.negated()));
    solver.add_clause(&[root_lit]);
    map.clauses += 1;
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::SolveResult;

    #[test]
    fn constant_folding() {
        let mut c = Circuit::new();
        let a = c.input();
        let t = c.mk_true();
        let f = c.mk_false();
        assert_eq!(c.and(a, t), a);
        assert_eq!(c.and(a, f), f);
        assert_eq!(c.or(a, f), a);
        assert_eq!(c.or(a, t), t);
        assert_eq!(c.and(a, !a), f);
        assert_eq!(c.or(a, !a), t);
        assert_eq!(c.and(a, a), a);
    }

    #[test]
    fn hash_consing_shares_gates() {
        let mut c = Circuit::new();
        let a = c.input();
        let b = c.input();
        let g1 = c.and(a, b);
        let g2 = c.and(b, a);
        assert_eq!(g1, g2);
        let before = c.len();
        let _ = c.and(a, b);
        assert_eq!(c.len(), before);
    }

    #[test]
    fn tseitin_sat_round_trip() {
        let mut c = Circuit::new();
        let a = c.input();
        let b = c.input();
        let xor_ish = {
            let l = c.and(a, !b);
            let r = c.and(!a, b);
            c.or(l, r)
        };
        let mut s = Solver::new();
        let map = assert_circuit(&c, xor_ish, &mut s);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        let va = map.var_for_input(0).expect("input a mapped");
        let vb = map.var_for_input(1).expect("input b mapped");
        assert_ne!(s.is_true(va.positive()), s.is_true(vb.positive()));
    }

    #[test]
    fn tseitin_unsat_contradiction() {
        let mut c = Circuit::new();
        let a = c.input();
        let b = c.input();
        let g = c.and(a, b);
        let contradiction = c.and(g, !a);
        // Folding may or may not collapse this; assert via SAT either way.
        let mut s = Solver::new();
        assert_circuit(&c, contradiction, &mut s);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn constant_roots() {
        let c0 = Circuit::new();
        let mut s = Solver::new();
        assert_circuit(&c0, c0.mk_true(), &mut s);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        let mut s2 = Solver::new();
        assert_circuit(&c0, c0.mk_false(), &mut s2);
        assert_eq!(s2.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn exactly_one_enumerates_n_models() {
        let mut c = Circuit::new();
        let inputs: Vec<BoolRef> = (0..4).map(|_| c.input()).collect();
        let formula = c.exactly_one(&inputs);
        let mut s = Solver::new();
        let map = assert_circuit(&c, formula, &mut s);
        let vars: Vec<_> = (0..4)
            .map(|i| map.var_for_input(i).expect("mapped"))
            .collect();
        let mut models = 0;
        while s.solve(&[]) == SolveResult::Sat {
            models += 1;
            assert!(models <= 4);
            assert_eq!(vars.iter().filter(|v| s.is_true(v.positive())).count(), 1);
            let blocking: Vec<_> = vars
                .iter()
                .map(|v| {
                    if s.is_true(v.positive()) {
                        v.negative()
                    } else {
                        v.positive()
                    }
                })
                .collect();
            s.add_clause(&blocking);
        }
        assert_eq!(models, 4);
    }

    /// Builds a random circuit over `n_inputs` inputs and returns the root.
    fn random_circuit(rng: &mut impl rand::Rng, c: &mut Circuit, n_inputs: u32) -> BoolRef {
        let mut refs: Vec<BoolRef> = (0..n_inputs).map(|_| c.input()).collect();
        for _ in 0..14 {
            let mut a = refs[rng.gen_range(0..refs.len())];
            let mut b = refs[rng.gen_range(0..refs.len())];
            if rng.gen_bool(0.3) {
                a = !a;
            }
            if rng.gen_bool(0.3) {
                b = !b;
            }
            let g = if rng.gen_bool(0.5) {
                c.and(a, b)
            } else {
                c.or(a, b)
            };
            refs.push(g);
        }
        let root = *refs.last().expect("non-empty");
        if rng.gen_bool(0.3) {
            !root
        } else {
            root
        }
    }

    /// Both encodings must agree with `Circuit::eval` on every input
    /// assignment — a property strictly stronger than equisatisfiability:
    /// the CNF's models, projected onto the input variables, are exactly
    /// the circuit's models.
    #[test]
    fn encodings_agree_with_eval_on_random_circuits() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(0xC1C1_2026);
        for round in 0..60 {
            let n_inputs = 4;
            let mut c = Circuit::new();
            let root = random_circuit(&mut rng, &mut c, n_inputs);
            for encoding in [CnfEncoding::PlaistedGreenbaum, CnfEncoding::Tseitin] {
                let mut s = Solver::new();
                let map = assert_circuit_with(&c, root, &mut s, encoding);
                if root.is_const_true() {
                    assert_eq!(s.solve(&[]), SolveResult::Sat);
                    continue;
                }
                if root.is_const_false() {
                    assert_eq!(s.solve(&[]), SolveResult::Unsat);
                    continue;
                }
                for bits in 0u32..(1 << n_inputs) {
                    let env: HashMap<u32, bool> =
                        (0..n_inputs).map(|i| (i, bits >> i & 1 == 1)).collect();
                    let expected = c.eval(root, &env);
                    // Fix every mapped (= reachable) input; unmapped inputs
                    // cannot influence the root's value.
                    let assumptions: Vec<Lit> = (0..n_inputs)
                        .filter_map(|l| map.var_for_input(l).map(|v| v.lit(env[&l])))
                        .collect();
                    let got = s.solve(&assumptions) == SolveResult::Sat;
                    assert_eq!(
                        got, expected,
                        "round {round}, {encoding:?}, assignment {bits:04b}"
                    );
                }
            }
        }
    }

    #[test]
    fn polarity_encoding_emits_fewer_clauses() {
        // A deep one-sided formula (big disjunction of conjunctions): every
        // internal gate has a single polarity, so Plaisted–Greenbaum should
        // emit roughly half the clauses Tseitin does.
        let mut c = Circuit::new();
        let mut disjuncts = Vec::new();
        for _ in 0..16 {
            let a = c.input();
            let b = c.input();
            let d = c.input();
            let ab = c.and(a, b);
            disjuncts.push(c.and(ab, !d));
        }
        let root = c.or_all(disjuncts.iter().copied());
        let mut s_pg = Solver::new();
        let pg = assert_circuit_with(&c, root, &mut s_pg, CnfEncoding::PlaistedGreenbaum);
        let mut s_ts = Solver::new();
        let ts = assert_circuit_with(&c, root, &mut s_ts, CnfEncoding::Tseitin);
        assert_eq!(pg.num_aux_vars(), ts.num_aux_vars());
        assert!(
            pg.num_clauses() * 4 <= ts.num_clauses() * 3,
            "expected >= 25% clause reduction: pg {} vs tseitin {}",
            pg.num_clauses(),
            ts.num_clauses()
        );
        assert_eq!(s_pg.solve(&[]), SolveResult::Sat);
        assert_eq!(s_ts.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn reachable_inputs_and_input_refs() {
        let mut c = Circuit::new();
        let a = c.input();
        let b = c.input();
        let _unused = c.input();
        let root = c.and(a, !b);
        assert_eq!(c.reachable_inputs(root), vec![0, 1]);
        assert_eq!(c.input_ref(0), Some(a));
        assert_eq!(c.input_ref(1), Some(b));
        assert_eq!(c.input_ref(9), None);
        let mut s = Solver::new();
        let map = assert_circuit(&c, root, &mut s);
        assert!(map.var_for_input(0).is_some());
        assert!(map.var_for_input(2).is_none());
    }

    #[test]
    fn eval_matches_sat_model() {
        let mut c = Circuit::new();
        let a = c.input();
        let b = c.input();
        let d = c.input();
        let ab = c.or(a, b);
        let formula = c.and(ab, !d);
        let mut s = Solver::new();
        let map = assert_circuit(&c, formula, &mut s);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        let mut env = HashMap::new();
        for (label, var) in map.inputs() {
            env.insert(label, s.is_true(var.positive()));
        }
        assert!(c.eval(formula, &env));
    }
}
