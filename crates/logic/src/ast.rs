//! The relational-logic AST: expressions, formulas and quantified variables.
//!
//! This mirrors the fragment of Alloy the SEPAR paper uses: first-order
//! relational logic with transitive closure, relational join/transpose,
//! and the `some`/`no`/`one`/`lone` multiplicities.

use std::fmt;
use std::sync::Arc;

use crate::relation::RelationId;
use crate::universe::Atom;

/// A quantified variable (always ranges over single atoms, as in Alloy's
/// `all x: S | ...`).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QuantVar(pub(crate) u32);

impl QuantVar {
    /// Creates a variable with an explicit id. Ids must be unique within a
    /// formula; [`Problem::fresh_var`] hands out unique ones.
    ///
    /// [`Problem::fresh_var`]: crate::finder::Problem::fresh_var
    pub fn new(id: u32) -> QuantVar {
        QuantVar(id)
    }
}

impl fmt::Debug for QuantVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// A relational expression. Cheap to clone (shared subtrees).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Expr {
    /// A declared relation.
    Relation(RelationId),
    /// A bound quantified variable (unary singleton).
    Var(QuantVar),
    /// A constant atom (unary singleton).
    Atom(Atom),
    /// Set union `a + b`.
    Union(Arc<Expr>, Arc<Expr>),
    /// Set intersection `a & b`.
    Intersect(Arc<Expr>, Arc<Expr>),
    /// Set difference `a - b`.
    Difference(Arc<Expr>, Arc<Expr>),
    /// Relational join `a . b`.
    Join(Arc<Expr>, Arc<Expr>),
    /// Cartesian product `a -> b`.
    Product(Arc<Expr>, Arc<Expr>),
    /// Transpose `~a` (binary only).
    Transpose(Arc<Expr>),
    /// Transitive closure `^a` (binary only).
    Closure(Arc<Expr>),
    /// The binary identity relation over the universe.
    Iden,
    /// All atoms (unary).
    Univ,
    /// The empty unary relation.
    None,
}

impl Expr {
    /// A declared relation as an expression.
    pub fn relation(r: RelationId) -> Expr {
        Expr::Relation(r)
    }

    /// A quantified variable as an expression.
    pub fn var(v: QuantVar) -> Expr {
        Expr::Var(v)
    }

    /// A constant atom as an expression.
    pub fn atom(a: Atom) -> Expr {
        Expr::Atom(a)
    }

    /// `self + other`.
    pub fn union(&self, other: &Expr) -> Expr {
        Expr::Union(Arc::new(self.clone()), Arc::new(other.clone()))
    }

    /// `self & other`.
    pub fn intersect(&self, other: &Expr) -> Expr {
        Expr::Intersect(Arc::new(self.clone()), Arc::new(other.clone()))
    }

    /// `self - other`.
    pub fn difference(&self, other: &Expr) -> Expr {
        Expr::Difference(Arc::new(self.clone()), Arc::new(other.clone()))
    }

    /// Relational join `self . other`.
    pub fn join(&self, other: &Expr) -> Expr {
        Expr::Join(Arc::new(self.clone()), Arc::new(other.clone()))
    }

    /// Cartesian product `self -> other`.
    pub fn product(&self, other: &Expr) -> Expr {
        Expr::Product(Arc::new(self.clone()), Arc::new(other.clone()))
    }

    /// Transpose `~self`.
    pub fn transpose(&self) -> Expr {
        Expr::Transpose(Arc::new(self.clone()))
    }

    /// Transitive closure `^self`.
    pub fn closure(&self) -> Expr {
        Expr::Closure(Arc::new(self.clone()))
    }

    /// Reflexive transitive closure `*self`, i.e. `^self + iden`.
    pub fn reflexive_closure(&self) -> Expr {
        self.closure().union(&Expr::Iden)
    }

    /// The formula `self in other`.
    pub fn in_(&self, other: &Expr) -> Formula {
        Formula::Subset(self.clone(), other.clone())
    }

    /// The formula `self = other`.
    pub fn equal(&self, other: &Expr) -> Formula {
        Formula::Equal(self.clone(), other.clone())
    }

    /// The formula `some self` (non-empty).
    pub fn some(&self) -> Formula {
        Formula::Some(self.clone())
    }

    /// The formula `no self` (empty).
    pub fn no(&self) -> Formula {
        Formula::No(self.clone())
    }

    /// The formula `one self` (exactly one tuple).
    pub fn one(&self) -> Formula {
        Formula::One(self.clone())
    }

    /// The formula `lone self` (at most one tuple).
    pub fn lone(&self) -> Formula {
        Formula::Lone(self.clone())
    }
}

/// A relational-logic formula.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Formula {
    /// Constant truth.
    True,
    /// Constant falsehood.
    False,
    /// `a in b`.
    Subset(Expr, Expr),
    /// `a = b`.
    Equal(Expr, Expr),
    /// `some e`.
    Some(Expr),
    /// `no e`.
    No(Expr),
    /// `one e`.
    One(Expr),
    /// `lone e`.
    Lone(Expr),
    /// Conjunction.
    And(Vec<Formula>),
    /// Disjunction.
    Or(Vec<Formula>),
    /// Negation.
    Not(Arc<Formula>),
    /// Universal quantification `all v: bound | body`.
    ForAll(QuantVar, Expr, Arc<Formula>),
    /// Existential quantification `some v: bound | body`.
    Exists(QuantVar, Expr, Arc<Formula>),
}

impl Formula {
    /// Conjunction of formulas (empty = true).
    pub fn and<I: IntoIterator<Item = Formula>>(items: I) -> Formula {
        let v: Vec<Formula> = items.into_iter().collect();
        match v.len() {
            0 => Formula::True,
            1 => v.into_iter().next().expect("len checked"),
            _ => Formula::And(v),
        }
    }

    /// Disjunction of formulas (empty = false).
    pub fn or<I: IntoIterator<Item = Formula>>(items: I) -> Formula {
        let v: Vec<Formula> = items.into_iter().collect();
        match v.len() {
            0 => Formula::False,
            1 => v.into_iter().next().expect("len checked"),
            _ => Formula::Or(v),
        }
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        Formula::Not(Arc::new(self))
    }

    /// `self => other`.
    pub fn implies(self, other: Formula) -> Formula {
        Formula::or([self.not(), other])
    }

    /// `self <=> other`.
    pub fn iff(self, other: Formula) -> Formula {
        Formula::and([self.clone().implies(other.clone()), other.implies(self)])
    }

    /// `all v: bound | body`.
    pub fn for_all(v: QuantVar, bound: Expr, body: Formula) -> Formula {
        Formula::ForAll(v, bound, Arc::new(body))
    }

    /// `some v: bound | body`.
    pub fn exists(v: QuantVar, bound: Expr, body: Formula) -> Formula {
        Formula::Exists(v, bound, Arc::new(body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let r = Expr::relation(RelationId(0));
        let s = Expr::relation(RelationId(1));
        let e = r.join(&s).union(&s.transpose());
        match e {
            Expr::Union(a, b) => {
                assert!(matches!(*a, Expr::Join(_, _)));
                assert!(matches!(*b, Expr::Transpose(_)));
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }

    #[test]
    fn and_or_flatten_degenerate_cases() {
        assert_eq!(Formula::and([]), Formula::True);
        assert_eq!(Formula::or([]), Formula::False);
        let f = Expr::relation(RelationId(0)).some();
        assert_eq!(Formula::and([f.clone()]), f);
    }

    #[test]
    fn implication_shape() {
        let a = Expr::relation(RelationId(0)).some();
        let b = Expr::relation(RelationId(1)).some();
        let imp = a.clone().implies(b.clone());
        match imp {
            Formula::Or(items) => {
                assert_eq!(items.len(), 2);
                assert!(matches!(items[0], Formula::Not(_)));
                assert_eq!(items[1], b);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn reflexive_closure_expands() {
        let r = Expr::relation(RelationId(0));
        let rc = r.reflexive_closure();
        assert!(matches!(rc, Expr::Union(_, _)));
    }
}
