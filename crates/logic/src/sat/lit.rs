//! Boolean variables and literals.
//!
//! Variables are dense `u32` indices allocated by [`Solver::new_var`];
//! literals pack a variable together with a sign in MiniSat's
//! `2 * var + sign` encoding so they can index watch lists directly.
//!
//! [`Solver::new_var`]: crate::sat::Solver::new_var

use std::fmt;

/// A propositional variable.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Returns the dense index of this variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a variable from a dense index.
    ///
    /// Only meaningful for indices previously handed out by a solver.
    pub fn from_index(index: usize) -> Var {
        Var(index as u32)
    }

    /// The positive literal of this variable.
    pub fn positive(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The negative literal of this variable.
    pub fn negative(self) -> Lit {
        Lit((self.0 << 1) | 1)
    }

    /// A literal of this variable with the given sign.
    ///
    /// `sign == true` yields the positive literal.
    pub fn lit(self, sign: bool) -> Lit {
        if sign {
            self.positive()
        } else {
            self.negative()
        }
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable or its negation.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The variable underlying this literal.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Returns `true` if this is a positive (unnegated) literal.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Dense index usable for watch lists (`2 * var + sign`).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "v{}", self.var().0)
        } else {
            write!(f, "!v{}", self.var().0)
        }
    }
}

/// Three-valued assignment state of a variable.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Unassigned.
    #[default]
    Undef,
}

impl LBool {
    /// Converts a Rust `bool`.
    pub fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// The value of a literal with sign applied: `True` stays `True` for a
    /// positive literal and flips for a negative one.
    pub fn under_sign(self, positive: bool) -> LBool {
        match (self, positive) {
            (LBool::Undef, _) => LBool::Undef,
            (v, true) => v,
            (LBool::True, false) => LBool::False,
            (LBool::False, false) => LBool::True,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_packing_round_trips() {
        let v = Var::from_index(7);
        assert_eq!(v.positive().var(), v);
        assert_eq!(v.negative().var(), v);
        assert!(v.positive().is_positive());
        assert!(!v.negative().is_positive());
        assert_eq!(!v.positive(), v.negative());
        assert_eq!(!!v.positive(), v.positive());
    }

    #[test]
    fn lit_indices_are_adjacent() {
        let v = Var::from_index(3);
        assert_eq!(v.positive().index(), 6);
        assert_eq!(v.negative().index(), 7);
    }

    #[test]
    fn lbool_sign_application() {
        assert_eq!(LBool::True.under_sign(false), LBool::False);
        assert_eq!(LBool::False.under_sign(false), LBool::True);
        assert_eq!(LBool::Undef.under_sign(false), LBool::Undef);
        assert_eq!(LBool::True.under_sign(true), LBool::True);
    }

    #[test]
    fn var_lit_constructor_signs() {
        let v = Var::from_index(1);
        assert_eq!(v.lit(true), v.positive());
        assert_eq!(v.lit(false), v.negative());
    }
}
