//! A from-scratch CDCL SAT solver.
//!
//! This is the reproduction of the paper's "off-the-shelf SAT solver"
//! substrate (the authors used SAT4J): SEPAR's analysis and synthesis engine
//! translates relational-logic specifications into CNF and solves them here.

mod heap;
mod lit;
mod solver;

pub use lit::{LBool, Lit, Var};
pub use solver::{SolveResult, Solver, SolverStats};
