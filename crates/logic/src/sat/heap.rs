//! Indexed max-heap ordering variables by VSIDS activity.
//!
//! The solver needs a priority queue that supports increasing the priority
//! of an element already in the queue (activity bumps) and membership tests,
//! so a plain `BinaryHeap` does not suffice.

use super::lit::Var;

/// A binary max-heap over variables keyed by an external activity array.
#[derive(Debug, Default, Clone)]
pub struct ActivityHeap {
    /// Heap of variable indices.
    heap: Vec<u32>,
    /// `positions[v]` is the index of `v` in `heap`, or `NOT_IN` if absent.
    positions: Vec<u32>,
}

const NOT_IN: u32 = u32::MAX;

impl ActivityHeap {
    /// Creates an empty heap.
    pub fn new() -> ActivityHeap {
        ActivityHeap::default()
    }

    /// Ensures capacity for variables up to `n - 1`.
    pub fn grow_to(&mut self, n: usize) {
        if self.positions.len() < n {
            self.positions.resize(n, NOT_IN);
        }
    }

    /// Returns `true` if the heap contains no variables.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Returns `true` if `v` is currently in the heap.
    pub fn contains(&self, v: Var) -> bool {
        self.positions.get(v.index()).is_some_and(|&p| p != NOT_IN)
    }

    /// Inserts `v`; no-op if already present.
    pub fn insert(&mut self, v: Var, activity: &[f64]) {
        self.grow_to(v.index() + 1);
        if self.contains(v) {
            return;
        }
        let pos = self.heap.len() as u32;
        self.heap.push(v.0);
        self.positions[v.index()] = pos;
        self.sift_up(pos as usize, activity);
    }

    /// Removes and returns the variable with the highest activity.
    pub fn pop(&mut self, activity: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty heap");
        self.positions[top as usize] = NOT_IN;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.positions[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(Var(top))
    }

    /// Restores heap order for `v` after its activity increased.
    pub fn bumped(&mut self, v: Var, activity: &[f64]) {
        if let Some(&p) = self.positions.get(v.index()) {
            if p != NOT_IN {
                self.sift_up(p as usize, activity);
            }
        }
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if activity[self.heap[i] as usize] > activity[self.heap[parent] as usize] {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let left = 2 * i + 1;
            let right = 2 * i + 2;
            let mut largest = i;
            if left < self.heap.len()
                && activity[self.heap[left] as usize] > activity[self.heap[largest] as usize]
            {
                largest = left;
            }
            if right < self.heap.len()
                && activity[self.heap[right] as usize] > activity[self.heap[largest] as usize]
            {
                largest = right;
            }
            if largest == i {
                break;
            }
            self.swap(i, largest);
            i = largest;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.positions[self.heap[a] as usize] = a as u32;
        self.positions[self.heap[b] as usize] = b as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> Var {
        Var::from_index(i)
    }

    #[test]
    fn pops_in_activity_order() {
        let activity = vec![1.0, 5.0, 3.0, 4.0, 2.0];
        let mut heap = ActivityHeap::new();
        for i in 0..5 {
            heap.insert(v(i), &activity);
        }
        let order: Vec<usize> = std::iter::from_fn(|| heap.pop(&activity))
            .map(Var::index)
            .collect();
        assert_eq!(order, vec![1, 3, 2, 4, 0]);
    }

    #[test]
    fn insert_is_idempotent() {
        let activity = vec![1.0, 2.0];
        let mut heap = ActivityHeap::new();
        heap.insert(v(0), &activity);
        heap.insert(v(0), &activity);
        assert_eq!(heap.pop(&activity), Some(v(0)));
        assert_eq!(heap.pop(&activity), None);
    }

    #[test]
    fn bump_reorders() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut heap = ActivityHeap::new();
        for i in 0..3 {
            heap.insert(v(i), &activity);
        }
        activity[0] = 10.0;
        heap.bumped(v(0), &activity);
        assert_eq!(heap.pop(&activity), Some(v(0)));
    }

    #[test]
    fn contains_tracks_membership() {
        let activity = vec![1.0];
        let mut heap = ActivityHeap::new();
        assert!(!heap.contains(v(0)));
        heap.insert(v(0), &activity);
        assert!(heap.contains(v(0)));
        heap.pop(&activity);
        assert!(!heap.contains(v(0)));
    }
}
