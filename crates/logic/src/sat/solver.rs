//! A CDCL (conflict-driven clause learning) SAT solver.
//!
//! The design follows MiniSat: two-watched-literal propagation, VSIDS
//! branching with phase saving, first-UIP conflict analysis with
//! backjumping, Luby restarts, and activity-based learnt-clause deletion.
//! The solver is incremental: clauses may be added between `solve` calls and
//! each call may carry a set of assumption literals, which is what the
//! model-enumeration and Aluminum-style minimization layers build on.
//!
//! Default decision polarity is *false*, which biases found models toward
//! few positive relation tuples — a cheap head start for minimal-scenario
//! generation.

use super::heap::ActivityHeap;
use super::lit::{LBool, Lit, Var};

/// Result of a `solve` call.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it with [`Solver::value`].
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
}

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    deleted: bool,
    activity: f64,
}

#[derive(Copy, Clone, Debug)]
struct Watcher {
    clause: u32,
    /// A literal of the clause other than the watched one; if it is already
    /// true the clause is satisfied and the watcher need not be inspected.
    blocker: Lit,
}

/// Conflict interval between `sat.tick` trace events during search.
const SOLVER_TICK_CONFLICTS: u64 = 4096;

/// Statistics accumulated across `solve` calls.
#[derive(Debug, Default, Clone, Copy)]
pub struct SolverStats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses currently retained.
    pub learnts: u64,
    /// Number of literals removed from learnt clauses by self-subsumption.
    pub minimized_lits: u64,
}

/// An incremental CDCL SAT solver.
///
/// # Examples
///
/// ```
/// use separ_logic::sat::{Solver, SolveResult};
///
/// let mut solver = Solver::new();
/// let a = solver.new_var();
/// let b = solver.new_var();
/// solver.add_clause(&[a.positive(), b.positive()]);
/// solver.add_clause(&[!a.positive()]);
/// assert_eq!(solver.solve(&[]), SolveResult::Sat);
/// assert!(solver.is_true(b.positive()));
/// ```
#[derive(Debug, Default)]
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    polarity: Vec<bool>,
    reason: Vec<Option<u32>>,
    level: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    order: ActivityHeap,
    seen: Vec<bool>,
    ok: bool,
    n_original: usize,
    stats: SolverStats,
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Solver {
        Solver {
            var_inc: 1.0,
            cla_inc: 1.0,
            ok: true,
            order: ActivityHeap::new(),
            ..Solver::default()
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(LBool::Undef);
        self.polarity.push(false);
        self.reason.push(None);
        self.level.push(0);
        self.activity.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.grow_to(self.assigns.len());
        self.order.insert(v, &self.activity);
        v
    }

    /// Number of variables allocated so far.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Solver statistics.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Current value of a variable (meaningful after `solve` returns `Sat`).
    pub fn value(&self, v: Var) -> LBool {
        self.assigns[v.index()]
    }

    /// Returns `true` if `lit` is true in the current assignment.
    pub fn is_true(&self, lit: Lit) -> bool {
        self.lit_value(lit) == LBool::True
    }

    fn lit_value(&self, lit: Lit) -> LBool {
        self.assigns[lit.var().index()].under_sign(lit.is_positive())
    }

    /// Adds a clause. Returns `false` if the formula became trivially
    /// unsatisfiable (empty clause after simplification).
    ///
    /// Duplicated literals are removed and clauses containing `l` and `!l`
    /// or a literal already true at level 0 are dropped as tautological.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        if !self.ok {
            return false;
        }
        self.cancel_until(0);
        let mut cl: Vec<Lit> = Vec::with_capacity(lits.len());
        let mut sorted = lits.to_vec();
        sorted.sort();
        sorted.dedup();
        for &l in &sorted {
            debug_assert!(l.var().index() < self.num_vars(), "literal out of range");
            match self.lit_value(l) {
                LBool::True => return true, // satisfied at level 0
                LBool::False => continue,   // falsified at level 0: drop literal
                LBool::Undef => {}
            }
            if cl.contains(&!l) {
                return true; // tautology
            }
            cl.push(l);
        }
        match cl.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(cl[0], None);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                self.attach(cl, false);
                true
            }
        }
    }

    fn attach(&mut self, lits: Vec<Lit>, learnt: bool) -> u32 {
        let idx = self.clauses.len() as u32;
        self.watches[(!lits[0]).index()].push(Watcher {
            clause: idx,
            blocker: lits[1],
        });
        self.watches[(!lits[1]).index()].push(Watcher {
            clause: idx,
            blocker: lits[0],
        });
        self.clauses.push(Clause {
            lits,
            learnt,
            deleted: false,
            activity: 0.0,
        });
        if learnt {
            self.stats.learnts += 1;
        } else {
            self.n_original += 1;
        }
        idx
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn unchecked_enqueue(&mut self, lit: Lit, reason: Option<u32>) {
        debug_assert_eq!(self.lit_value(lit), LBool::Undef);
        let v = lit.var();
        self.assigns[v.index()] = LBool::from_bool(lit.is_positive());
        self.reason[v.index()] = reason;
        self.level[v.index()] = self.decision_level();
        self.trail.push(lit);
    }

    fn cancel_until(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let bound = self.trail_lim[target as usize];
        while self.trail.len() > bound {
            let lit = self.trail.pop().expect("trail non-empty");
            let v = lit.var();
            self.polarity[v.index()] = lit.is_positive();
            self.assigns[v.index()] = LBool::Undef;
            self.reason[v.index()] = None;
            if !self.order.contains(v) {
                self.order.insert(v, &self.activity);
            }
        }
        self.trail_lim.truncate(target as usize);
        self.qhead = self.trail.len();
    }

    /// Unit propagation; returns the index of a conflicting clause, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let lit = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let mut watchers = std::mem::take(&mut self.watches[lit.index()]);
            let mut kept = 0;
            let mut conflict = None;
            let mut i = 0;
            while i < watchers.len() {
                let w = watchers[i];
                i += 1;
                if self.clauses[w.clause as usize].deleted {
                    continue; // drop watcher of deleted clause
                }
                if self.lit_value(w.blocker) == LBool::True {
                    watchers[kept] = w;
                    kept += 1;
                    continue;
                }
                let ci = w.clause as usize;
                // Normalize so that the false literal (!lit) is at slot 1.
                let false_lit = !lit;
                if self.clauses[ci].lits[0] == false_lit {
                    self.clauses[ci].lits.swap(0, 1);
                }
                debug_assert_eq!(self.clauses[ci].lits[1], false_lit);
                let first = self.clauses[ci].lits[0];
                if first != w.blocker && self.lit_value(first) == LBool::True {
                    watchers[kept] = Watcher {
                        clause: w.clause,
                        blocker: first,
                    };
                    kept += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut moved = false;
                for k in 2..self.clauses[ci].lits.len() {
                    let cand = self.clauses[ci].lits[k];
                    if self.lit_value(cand) != LBool::False {
                        self.clauses[ci].lits.swap(1, k);
                        self.watches[(!cand).index()].push(Watcher {
                            clause: w.clause,
                            blocker: first,
                        });
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting.
                watchers[kept] = Watcher {
                    clause: w.clause,
                    blocker: first,
                };
                kept += 1;
                if self.lit_value(first) == LBool::False {
                    conflict = Some(w.clause);
                    // Copy remaining watchers back and stop.
                    while i < watchers.len() {
                        watchers[kept] = watchers[i];
                        kept += 1;
                        i += 1;
                    }
                    self.qhead = self.trail.len();
                } else {
                    self.unchecked_enqueue(first, Some(w.clause));
                }
            }
            watchers.truncate(kept);
            self.watches[lit.index()] = watchers;
            if let Some(c) = conflict {
                return Some(c);
            }
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.bumped(v, &self.activity);
    }

    fn bump_clause(&mut self, c: usize) {
        self.clauses[c].activity += self.cla_inc;
        if self.clauses[c].activity > 1e20 {
            for cl in &mut self.clauses {
                cl.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, mut conflict: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // slot 0 for the asserting literal
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        loop {
            self.bump_clause(conflict as usize);
            let start = usize::from(p.is_some());
            // Clone needed literals to appease borrowck cheaply: clause lits
            // are short (learnt from small scopes).
            let lits: Vec<Lit> = self.clauses[conflict as usize].lits[start..].to_vec();
            for q in lits {
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select next literal to look at.
            loop {
                index -= 1;
                let lit = self.trail[index];
                if self.seen[lit.var().index()] {
                    p = Some(lit);
                    break;
                }
            }
            let pv = p.expect("found UIP candidate").var();
            self.seen[pv.index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !p.expect("asserting literal");
                break;
            }
            conflict = self.reason[pv.index()].expect("non-decision has a reason");
        }
        // Learnt-clause minimization by self-subsumption: a non-asserting
        // literal whose reason clause is entirely covered by the rest of the
        // learnt clause (plus level-0 facts) resolves away without weakening
        // the clause. `seen` is still true exactly for the variables of
        // `learnt[1..]` here, which makes the coverage check O(|reason|).
        let mut minimized: Vec<Lit> = Vec::with_capacity(learnt.len());
        for (i, &q) in learnt.iter().enumerate() {
            let redundant = i > 0
                && self.reason[q.var().index()].is_some_and(|r| {
                    self.clauses[r as usize].lits.iter().all(|&l| {
                        l.var() == q.var()
                            || self.seen[l.var().index()]
                            || self.level[l.var().index()] == 0
                    })
                });
            if redundant {
                self.stats.minimized_lits += 1;
            } else {
                minimized.push(q);
            }
        }
        // Clear seen flags of the pre-minimization learnt clause.
        for &l in &learnt {
            self.seen[l.var().index()] = false;
        }
        let mut learnt = minimized;
        let backjump = if learnt.len() == 1 {
            0
        } else {
            // Move the literal with the highest level to slot 1.
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        (learnt, backjump)
    }

    fn reduce_db(&mut self) {
        let mut learnt_idx: Vec<usize> = self
            .clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| c.learnt && !c.deleted && c.lits.len() > 2)
            .map(|(i, _)| i)
            .collect();
        learnt_idx.sort_by(|&a, &b| {
            self.clauses[a]
                .activity
                .partial_cmp(&self.clauses[b].activity)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let locked: Vec<Option<u32>> = self.reason.clone();
        let is_locked = |i: usize| locked.contains(&Some(i as u32));
        for &i in learnt_idx.iter().take(learnt_idx.len() / 2) {
            if !is_locked(i) {
                self.clauses[i].deleted = true;
                self.stats.learnts = self.stats.learnts.saturating_sub(1);
            }
        }
    }

    fn pick_branch(&mut self) -> Option<Var> {
        while !self.order.is_empty() {
            let v = self.order.pop(&self.activity).expect("heap non-empty");
            if self.assigns[v.index()] == LBool::Undef {
                return Some(v);
            }
        }
        None
    }

    /// Exports the current clause database in DIMACS CNF format
    /// (original clauses plus level-0 unit assignments; learnt clauses
    /// are redundant and omitted). Useful for debugging against external
    /// solvers.
    pub fn to_dimacs(&self) -> String {
        use std::fmt::Write;
        let mut body = String::new();
        let mut count = 0usize;
        for cl in &self.clauses {
            if cl.learnt || cl.deleted {
                continue;
            }
            for &l in &cl.lits {
                let v = l.var().index() + 1;
                let _ = write!(
                    body,
                    "{} ",
                    if l.is_positive() {
                        v as i64
                    } else {
                        -(v as i64)
                    }
                );
            }
            body.push_str("0\n");
            count += 1;
        }
        // Level-0 units (facts discovered before any decision).
        let bound = self.trail_lim.first().copied().unwrap_or(self.trail.len());
        for &l in &self.trail[..bound] {
            let v = l.var().index() + 1;
            let _ = writeln!(
                body,
                "{} 0",
                if l.is_positive() {
                    v as i64
                } else {
                    -(v as i64)
                }
            );
            count += 1;
        }
        format!("p cnf {} {count}\n{body}", self.num_vars())
    }

    /// Solves under the given assumptions.
    ///
    /// Assumption literals are forced (as pseudo-decisions) before any free
    /// branching. If they are jointly inconsistent with the clauses the
    /// result is `Unsat`, but the clause set itself is left intact, so
    /// later calls with other assumptions may still succeed.
    pub fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        if !self.ok {
            return SolveResult::Unsat;
        }
        self.cancel_until(0);
        if self.propagate().is_some() {
            self.ok = false;
            return SolveResult::Unsat;
        }
        let mut restart = 0u64;
        loop {
            let budget = 100 * luby(restart);
            match self.search(assumptions, budget) {
                Some(r) => {
                    self.stats.restarts += restart;
                    // Leave the trail intact on Sat so values can be read;
                    // callers adding clauses will trigger cancel_until(0).
                    if r == SolveResult::Unsat {
                        self.cancel_until(0);
                    }
                    return r;
                }
                None => {
                    restart += 1;
                    self.cancel_until(0);
                }
            }
        }
    }

    /// Runs CDCL search for up to `max_conflicts`; `None` requests a restart.
    fn search(&mut self, assumptions: &[Lit], max_conflicts: u64) -> Option<SolveResult> {
        let mut conflicts = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts += 1;
                // Progress tick so long-running solves are visible
                // mid-flight in traces (no-op while tracing is off).
                if self.stats.conflicts.is_multiple_of(SOLVER_TICK_CONFLICTS)
                    && separ_obs::enabled()
                {
                    separ_obs::event(
                        "sat.tick",
                        vec![
                            ("conflicts", self.stats.conflicts.to_string()),
                            ("decisions", self.stats.decisions.to_string()),
                            ("restarts", self.stats.restarts.to_string()),
                            ("learnts", self.stats.learnts.to_string()),
                        ],
                    );
                }
                if self.decision_level() == 0 {
                    self.ok = false;
                    return Some(SolveResult::Unsat);
                }
                let (learnt, backjump) = self.analyze(confl);
                self.cancel_until(backjump);
                if learnt.len() == 1 {
                    if self.decision_level() > 0 {
                        self.cancel_until(0);
                    }
                    if self.lit_value(learnt[0]) == LBool::False {
                        self.ok = false;
                        return Some(SolveResult::Unsat);
                    }
                    if self.lit_value(learnt[0]) == LBool::Undef {
                        self.unchecked_enqueue(learnt[0], None);
                    }
                } else {
                    let ci = self.attach(learnt.clone(), true);
                    self.unchecked_enqueue(learnt[0], Some(ci));
                }
                self.var_inc /= 0.95;
                self.cla_inc /= 0.999;
                if self.stats.learnts as usize > 4 * self.n_original + 300 {
                    self.reduce_db();
                }
                if conflicts >= max_conflicts {
                    return None;
                }
            } else {
                // Re-establish assumptions that restarts may have undone.
                if (self.decision_level() as usize) < assumptions.len() {
                    let a = assumptions[self.decision_level() as usize];
                    match self.lit_value(a) {
                        LBool::True => {
                            // Already implied: introduce an empty decision level.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => return Some(SolveResult::Unsat),
                        LBool::Undef => {
                            self.trail_lim.push(self.trail.len());
                            self.unchecked_enqueue(a, None);
                        }
                    }
                    continue;
                }
                match self.pick_branch() {
                    None => return Some(SolveResult::Sat),
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let phase = self.polarity[v.index()];
                        self.unchecked_enqueue(v.lit(phase), None);
                    }
                }
            }
        }
    }
}

/// The Luby restart sequence (1, 1, 2, 1, 1, 2, 4, ...).
fn luby(i: u64) -> u64 {
    let mut size = 1u64;
    let mut seq = 0u32;
    let mut x = i;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) / 2;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(solver: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| solver.new_var().positive()).collect()
    }

    #[test]
    fn trivial_sat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[v[0], v[1]]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert!(s.is_true(v[0]) || s.is_true(v[1]));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        s.add_clause(&[v[0]]);
        s.add_clause(&[!v[0]]);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        s.add_clause(&[v[0]]);
        s.add_clause(&[!v[0], v[1]]);
        s.add_clause(&[!v[1], v[2]]);
        s.add_clause(&[!v[2], v[3]]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        for &l in &v {
            assert!(s.is_true(l));
        }
    }

    #[test]
    fn assumptions_flip_results() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[v[0], v[1]]);
        assert_eq!(s.solve(&[!v[0], !v[1]]), SolveResult::Unsat);
        assert_eq!(s.solve(&[!v[0]]), SolveResult::Sat);
        assert!(s.is_true(v[1]));
        // Solver remains usable after an assumption failure.
        assert_eq!(s.solve(&[v[0]]), SolveResult::Sat);
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[v[0], v[1]]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        s.add_clause(&[!v[0]]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert!(s.is_true(v[1]));
        s.add_clause(&[!v[1]]);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p[i][j]: pigeon i in hole j.
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..3)
            .map(|_| (0..2).map(|_| s.new_var().positive()).collect())
            .collect();
        for row in &p {
            s.add_clause(row);
        }
        #[allow(clippy::needless_range_loop)] // triple-index form is the textbook encoding
        for j in 0..2 {
            for i in 0..3 {
                for k in (i + 1)..3 {
                    s.add_clause(&[!p[i][j], !p[k][j]]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_5_into_5_is_sat() {
        let mut s = Solver::new();
        let n = 5;
        let p: Vec<Vec<Lit>> = (0..n)
            .map(|_| (0..n).map(|_| s.new_var().positive()).collect())
            .collect();
        for row in &p {
            s.add_clause(row);
        }
        #[allow(clippy::needless_range_loop)] // triple-index form is the textbook encoding
        for j in 0..n {
            for i in 0..n {
                for k in (i + 1)..n {
                    s.add_clause(&[!p[i][j], !p[k][j]]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        // Verify it is a permutation matrix.
        #[allow(clippy::needless_range_loop)] // column scan over a square matrix
        for j in 0..n {
            let count = (0..n).filter(|&i| s.is_true(p[i][j])).count();
            assert!(count <= 1, "two pigeons share hole {j}");
        }
        for (i, row) in p.iter().enumerate() {
            assert!(row.iter().any(|&l| s.is_true(l)), "pigeon {i} homeless");
        }
    }

    #[test]
    fn duplicate_and_tautological_clauses_are_handled() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        assert!(s.add_clause(&[v[0], v[0], v[1]]));
        assert!(s.add_clause(&[v[0], !v[0]])); // tautology, dropped
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn model_enumeration_via_blocking_clauses() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause(&[v[0], v[1], v[2]]);
        let mut models = 0;
        while s.solve(&[]) == SolveResult::Sat {
            models += 1;
            assert!(models <= 7, "more models than exist");
            let blocking: Vec<Lit> = v
                .iter()
                .map(|&l| if s.is_true(l) { !l } else { l })
                .collect();
            s.add_clause(&blocking);
        }
        assert_eq!(models, 7);
    }

    #[test]
    fn dimacs_export_round_trips_through_a_reference_check() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause(&[v[0], v[1]]);
        s.add_clause(&[!v[1], v[2]]);
        s.add_clause(&[!v[0]]); // becomes a level-0 unit
        let dimacs = s.to_dimacs();
        assert!(dimacs.starts_with("p cnf 3 "));
        // Parse it back and check each clause against the solver's model.
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        for line in dimacs.lines().skip(1) {
            let lits: Vec<i64> = line
                .split_whitespace()
                .map(|t| t.parse().expect("integer"))
                .take_while(|&x| x != 0)
                .collect();
            assert!(
                lits.iter().any(|&x| {
                    let var = Var::from_index((x.unsigned_abs() as usize) - 1);
                    s.is_true(var.lit(x > 0))
                }),
                "model violates exported clause {line}"
            );
        }
    }

    #[test]
    fn dimacs_export_is_byte_stable() {
        // Golden output: clauses are normalized (sorted, deduplicated) on
        // entry and emitted in insertion order, so this exact string is part
        // of the determinism guarantee.
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        s.add_clause(&[v[0], v[1]]);
        s.add_clause(&[!v[1], v[2]]);
        s.add_clause(&[!v[0], !v[2]]);
        s.add_clause(&[v[3]]); // level-0 unit
        assert_eq!(s.to_dimacs(), "p cnf 4 4\n1 2 0\n-2 3 0\n-1 -3 0\n4 0\n");
    }

    #[test]
    fn conflict_analysis_minimizes_learnt_clauses() {
        // Assumption x0 propagates x1 (c0). Assumption y then propagates a
        // and b (c1, c2), falsifying c3 — which kept two free literals at
        // level 1, so the conflict genuinely happens at level 2. First-UIP
        // learns (!y !x0 !x1), where !x1 is self-subsumed by c0 (its reason
        // mentions only x0, already in the clause) and must be resolved away.
        let mut s = Solver::new();
        let v = lits(&mut s, 5);
        let (x0, x1, y, a, b) = (v[0], v[1], v[2], v[3], v[4]);
        s.add_clause(&[!x0, x1]); // c0
        s.add_clause(&[!y, a]); // c1
        s.add_clause(&[!y, b]); // c2
        s.add_clause(&[!a, !b, !x0, !x1]); // c3
        assert_eq!(s.solve(&[x0, y]), SolveResult::Unsat);
        assert_eq!(s.stats().conflicts, 1);
        assert!(
            s.stats().minimized_lits >= 1,
            "expected self-subsumption to fire: {:?}",
            s.stats()
        );
        // The clause set itself stays satisfiable.
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        for cl in [
            vec![!x0, x1],
            vec![!y, a],
            vec![!y, b],
            vec![!a, !b, !x0, !x1],
        ] {
            assert!(cl.iter().any(|&l| s.is_true(l)));
        }
    }

    #[test]
    fn luby_sequence_prefix() {
        let seq: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(seq, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn random_3sat_agrees_with_brute_force() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0x5E9A12 + 42);
        for round in 0..60 {
            let n = 8;
            let m = 3 + (round % 30);
            let mut clauses: Vec<Vec<(usize, bool)>> = Vec::new();
            for _ in 0..m {
                let mut cl = Vec::new();
                for _ in 0..3 {
                    cl.push((rng.gen_range(0..n), rng.gen_bool(0.5)));
                }
                clauses.push(cl);
            }
            // Brute force.
            let mut any = false;
            'outer: for bits in 0u32..(1 << n) {
                for cl in &clauses {
                    if !cl.iter().any(|&(v, sign)| ((bits >> v) & 1 == 1) == sign) {
                        continue 'outer;
                    }
                }
                any = true;
                break;
            }
            // CDCL.
            let mut s = Solver::new();
            let vars: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
            for cl in &clauses {
                let lits: Vec<Lit> = cl.iter().map(|&(v, sign)| vars[v].lit(sign)).collect();
                s.add_clause(&lits);
            }
            let got = s.solve(&[]) == SolveResult::Sat;
            assert_eq!(got, any, "mismatch on round {round}");
            if got {
                for cl in &clauses {
                    assert!(
                        cl.iter().any(|&(v, sign)| s.is_true(vars[v].lit(sign))),
                        "returned model violates a clause"
                    );
                }
            }
        }
    }
}
