//! **separ-logic** — a bounded relational-logic model finder over a
//! from-scratch CDCL SAT core.
//!
//! This crate is the reproduction of the formal-methods substrate the SEPAR
//! paper builds on (Alloy + Kodkod + SAT4J + Aluminum): specifications are
//! written in first-order relational logic with transitive closure
//! ([`ast`]), bounded by finite universes and per-relation tuple bounds
//! ([`universe`], [`relation`]), translated to boolean circuits and CNF
//! ([`translate`], [`circuit`]), and solved with a CDCL SAT solver
//! ([`sat`]). The [`finder`] module exposes plain model enumeration (the
//! Alloy Analyzer behaviour) and minimal-model enumeration (the Aluminum
//! behaviour the paper uses to synthesize minimal exploit scenarios).
//!
//! # Examples
//!
//! ```
//! use separ_logic::ast::Expr;
//! use separ_logic::finder::Problem;
//! use separ_logic::relation::{RelationDecl, TupleSet};
//! use separ_logic::universe::Universe;
//!
//! // A toy "some component is exported" check.
//! let mut u = Universe::new();
//! let c0 = u.add("Comp0");
//! let c1 = u.add("Comp1");
//! let mut p = Problem::new(u);
//! let exported = p.relation(RelationDecl::free(
//!     "exported",
//!     TupleSet::unary_from([c0, c1]),
//! ));
//! p.fact(Expr::relation(exported).some());
//! let instance = p.solve_minimal()?.expect("satisfiable");
//! assert_eq!(instance.tuples(exported).len(), 1);
//! # Ok::<(), separ_logic::error::LogicError>(())
//! ```
#![warn(missing_docs)]

pub mod ast;
pub mod circuit;
pub mod error;
pub mod finder;
pub mod instance;
pub mod relation;
pub mod sat;
pub mod symmetry;
pub mod translate;
pub mod universe;

pub use ast::{Expr, Formula, QuantVar};
pub use circuit::CnfEncoding;
pub use error::LogicError;
pub use finder::{FinderOptions, ModelFinder, Problem};
pub use instance::Instance;
pub use relation::{RelationDecl, RelationId, Tuple, TupleSet};
pub use sat::SolverStats;
pub use translate::TranslationBase;
pub use universe::{Atom, Universe};
