//! Problems and the bounded model finder.
//!
//! A [`Problem`] bundles a universe, bounded relation declarations and a
//! conjunction of facts. [`ModelFinder`] solves it and supports both plain
//! model enumeration (Alloy Analyzer style) and *minimal* model enumeration
//! (Aluminum style), which the paper relies on to synthesize minimal exploit
//! scenarios.

use std::collections::{BTreeSet, HashMap};
use std::time::{Duration, Instant};

use crate::ast::{Formula, QuantVar};
use crate::circuit::{assert_circuit_with, CnfEncoding};
use crate::error::Result;
use crate::instance::Instance;
use crate::relation::{RelationDecl, RelationId, Tuple, TupleSet};
use crate::sat::{Lit, SolveResult, Solver, SolverStats, Var};
use crate::symmetry;
use crate::translate::{build_base, translate, translate_from, Translation, TranslationBase};
use crate::universe::Universe;

/// Options controlling how a [`Problem`] is lowered into a [`ModelFinder`].
///
/// The defaults (polarity-aware CNF, no symmetry breaking) preserve the
/// model set and enumeration semantics of the seed pipeline. Symmetry
/// breaking is opt-in because it prunes symmetric models — satisfiability
/// and per-orbit representatives are preserved, but exact model counts
/// shrink.
#[derive(Debug, Default, Copy, Clone, PartialEq, Eq)]
pub struct FinderOptions {
    /// CNF transformation for the circuit-to-solver lowering.
    pub encoding: CnfEncoding,
    /// Conjoin bound-induced lex-leader symmetry-breaking predicates.
    pub symmetry_breaking: bool,
}

/// A bounded relational-logic problem.
///
/// # Examples
///
/// ```
/// use separ_logic::finder::Problem;
/// use separ_logic::ast::Expr;
/// use separ_logic::relation::{RelationDecl, TupleSet};
/// use separ_logic::universe::Universe;
///
/// let mut u = Universe::new();
/// let atoms: Vec<_> = (0..2).map(|i| u.add(format!("c{i}"))).collect();
/// let mut p = Problem::new(u);
/// let comp = p.relation(RelationDecl::free(
///     "Component",
///     TupleSet::unary_from(atoms),
/// ));
/// p.fact(Expr::relation(comp).some());
/// let mut finder = p.model_finder()?;
/// let instance = finder.next_model().expect("satisfiable");
/// assert!(!instance.tuples(comp).is_empty());
/// # Ok::<(), separ_logic::error::LogicError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Problem {
    universe: Universe,
    relations: Vec<RelationDecl>,
    facts: Vec<Formula>,
    next_var: u32,
}

impl Problem {
    /// Creates a problem over the given universe.
    pub fn new(universe: Universe) -> Problem {
        Problem {
            universe,
            relations: Vec::new(),
            facts: Vec::new(),
            next_var: 0,
        }
    }

    /// The universe of this problem.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// Declares a bounded relation, returning its id.
    pub fn relation(&mut self, decl: RelationDecl) -> RelationId {
        let id = RelationId(self.relations.len() as u32);
        self.relations.push(decl);
        id
    }

    /// Looks up a declared relation id by name.
    pub fn relation_by_name(&self, name: &str) -> Option<RelationId> {
        self.relations
            .iter()
            .position(|d| d.name() == name)
            .map(|i| RelationId(i as u32))
    }

    /// The declaration of a relation.
    pub fn decl(&self, r: RelationId) -> &RelationDecl {
        &self.relations[r.index()]
    }

    /// Number of declared relations.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// Adds a fact (conjoined with all others).
    pub fn fact(&mut self, f: Formula) {
        self.facts.push(f);
    }

    /// Tightens the upper bound of `rel`, keeping lower-bound tuples plus
    /// free tuples satisfying `keep`, and returns how many free tuples were
    /// dropped. This is the relevance-slicing entry point: callers must
    /// ensure dropped tuples are false in every (minimal) model of the
    /// facts they intend to assert, which preserves the minimal-model set
    /// while shrinking the primary-variable count.
    ///
    /// Must be called before [`Problem::translation_base`] /
    /// [`Problem::model_finder_from`]; bases built from the old bounds do
    /// not see the tightening.
    pub fn tighten_upper(&mut self, rel: RelationId, keep: impl FnMut(&Tuple) -> bool) -> usize {
        let decl = &self.relations[rel.index()];
        let before = decl.upper().len();
        let tightened = decl.tightened_upper(keep);
        let dropped = before - tightened.upper().len();
        self.relations[rel.index()] = tightened;
        dropped
    }

    /// Allocates a quantified variable unique within this problem.
    pub fn fresh_var(&mut self) -> QuantVar {
        let v = QuantVar::new(self.next_var);
        self.next_var += 1;
        v
    }

    /// Translates the problem and returns a reusable model finder, using
    /// default [`FinderOptions`].
    ///
    /// # Errors
    ///
    /// Returns an error if any fact is ill-typed.
    pub fn model_finder(&self) -> Result<ModelFinder> {
        self.model_finder_with(FinderOptions::default())
    }

    /// Translates the problem with explicit [`FinderOptions`].
    ///
    /// # Errors
    ///
    /// Returns an error if any fact is ill-typed.
    pub fn model_finder_with(&self, options: FinderOptions) -> Result<ModelFinder> {
        self.build_finder(None, options)
    }

    /// Builds the reusable, fact-independent translation base (all leaf
    /// matrices) for this problem's bounds. Share it across several
    /// problems derived from these declarations via
    /// [`Problem::model_finder_from`].
    pub fn translation_base(&self) -> TranslationBase {
        build_base(&self.universe, &self.relations)
    }

    /// Translates the problem starting from a shared [`TranslationBase`],
    /// which must have been built from a prefix of this problem's relation
    /// declarations (relations appended afterwards translate lazily).
    ///
    /// # Errors
    ///
    /// Returns an error if any fact is ill-typed.
    pub fn model_finder_from(
        &self,
        base: &TranslationBase,
        options: FinderOptions,
    ) -> Result<ModelFinder> {
        self.build_finder(Some(base), options)
    }

    fn build_finder(
        &self,
        base: Option<&TranslationBase>,
        options: FinderOptions,
    ) -> Result<ModelFinder> {
        let conj = Formula::and(self.facts.iter().cloned());
        let mut span = separ_obs::span("logic.translate");
        let t0 = Instant::now();
        let mut translation = match base {
            Some(b) => translate_from(b, &self.universe, &self.relations, &conj)?,
            None => translate(&self.universe, &self.relations, &conj)?,
        };
        let root = self.apply_symmetry_breaking(&mut translation, options);
        let mut solver = Solver::new();
        let cnf = assert_circuit_with(&translation.circuit, root, &mut solver, options.encoding);
        let construction_time = t0.elapsed();
        span.set_arg("shared_base", base.is_some().to_string());
        span.set_arg("clauses", cnf.num_clauses().to_string());
        drop(span);
        // Map each free tuple to its solver variable, if the tuple's input
        // survived into the CNF (inputs the formula never constrains do
        // not; they decode as absent, biasing toward minimal instances).
        let mut free_vars: Vec<(RelationId, Tuple, Var)> = Vec::new();
        for (label, (rel, tuple)) in &translation.free_inputs {
            if let Some(var) = cnf.var_for_input(*label) {
                free_vars.push((*rel, tuple.clone(), var));
            }
        }
        free_vars.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        Ok(ModelFinder {
            universe: self.universe.clone(),
            relations: self.relations.clone(),
            solver,
            free_vars,
            construction_time,
            solve_time: Duration::ZERO,
            exhausted: false,
            cnf_clauses: cnf.num_clauses(),
            shared_base: base.is_some(),
        })
    }

    /// Conjoins lex-leader predicates onto the translated root when
    /// symmetry breaking is enabled; otherwise returns the root unchanged.
    ///
    /// The predicates only mention inputs already reachable from the root,
    /// so the primary-variable set (and hence instance decoding) is
    /// unaffected.
    fn apply_symmetry_breaking(
        &self,
        translation: &mut Translation,
        options: FinderOptions,
    ) -> crate::circuit::BoolRef {
        let root = translation.root;
        if !options.symmetry_breaking || root.is_const_true() || root.is_const_false() {
            return root;
        }
        let pinned: BTreeSet<_> = self
            .facts
            .iter()
            .flat_map(symmetry::formula_atoms)
            .collect();
        let classes = symmetry::atom_classes(&self.universe, &self.relations, &pinned);
        if classes.is_empty() {
            return root;
        }
        let reachable: BTreeSet<u32> = translation
            .circuit
            .reachable_inputs(root)
            .into_iter()
            .collect();
        let sb = symmetry::break_predicate(
            &mut translation.circuit,
            &translation.free_inputs,
            &reachable,
            &classes,
        );
        translation.circuit.and(root, sb)
    }

    /// Convenience: finds one satisfying instance, if any.
    ///
    /// # Errors
    ///
    /// Returns an error if any fact is ill-typed.
    pub fn solve(&self) -> Result<Option<Instance>> {
        Ok(self.model_finder()?.next_model())
    }

    /// Convenience: finds one minimal satisfying instance, if any.
    ///
    /// # Errors
    ///
    /// Returns an error if any fact is ill-typed.
    pub fn solve_minimal(&self) -> Result<Option<Instance>> {
        Ok(self.model_finder()?.next_minimal_model())
    }

    /// Checks an assertion against the facts: returns a counterexample
    /// instance if the facts do not entail `assertion` within the bounds,
    /// or `None` if the assertion holds.
    ///
    /// This is the *verification* direction of the paper's observation
    /// that synthesis is the dual of verification: `solve` looks for a
    /// model of `facts ∧ property`, `check` looks for a model of
    /// `facts ∧ ¬assertion`.
    ///
    /// # Errors
    ///
    /// Returns an error if the assertion or any fact is ill-typed.
    pub fn check(&self, assertion: Formula) -> Result<Option<Instance>> {
        let conj = Formula::and(
            self.facts
                .iter()
                .cloned()
                .chain(std::iter::once(assertion.not())),
        );
        let translation = translate(&self.universe, &self.relations, &conj)?;
        let mut solver = Solver::new();
        let cnf = assert_circuit_with(
            &translation.circuit,
            translation.root,
            &mut solver,
            CnfEncoding::default(),
        );
        let mut free_vars: Vec<(RelationId, Tuple, Var)> = Vec::new();
        for (label, (rel, tuple)) in &translation.free_inputs {
            if let Some(var) = cnf.var_for_input(*label) {
                free_vars.push((*rel, tuple.clone(), var));
            }
        }
        free_vars.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        let mut finder = ModelFinder {
            universe: self.universe.clone(),
            relations: self.relations.clone(),
            solver,
            free_vars,
            construction_time: Duration::ZERO,
            solve_time: Duration::ZERO,
            exhausted: false,
            cnf_clauses: cnf.num_clauses(),
            shared_base: false,
        };
        Ok(finder.next_model())
    }
}

/// An incremental model finder over a translated [`Problem`].
///
/// Use either [`next_model`](ModelFinder::next_model) repeatedly (plain
/// enumeration with blocking clauses) or
/// [`next_minimal_model`](ModelFinder::next_minimal_model) repeatedly
/// (Aluminum-style minimal-scenario enumeration: each returned instance is
/// minimal, and all of its supersets are excluded from later results). The
/// two modes should not be mixed on one finder.
#[derive(Debug)]
pub struct ModelFinder {
    universe: Universe,
    relations: Vec<RelationDecl>,
    solver: Solver,
    /// Free tuples with their solver variables, sorted for determinism.
    free_vars: Vec<(RelationId, Tuple, Var)>,
    construction_time: Duration,
    solve_time: Duration,
    exhausted: bool,
    cnf_clauses: usize,
    shared_base: bool,
}

impl ModelFinder {
    /// Time spent translating the relational problem into CNF.
    pub fn construction_time(&self) -> Duration {
        self.construction_time
    }

    /// Cumulative time spent inside the SAT solver.
    pub fn solve_time(&self) -> Duration {
        self.solve_time
    }

    /// Number of free boolean variables (primary variables).
    pub fn num_primary_vars(&self) -> usize {
        self.free_vars.len()
    }

    /// Total number of solver variables, including gate auxiliaries.
    pub fn num_solver_vars(&self) -> usize {
        self.solver.num_vars()
    }

    /// Number of CNF clauses the translation emitted at construction time
    /// (enumeration adds blocking clauses afterwards; they are not counted).
    pub fn cnf_clauses(&self) -> usize {
        self.cnf_clauses
    }

    /// Returns `true` if this finder was built from a shared
    /// [`TranslationBase`].
    pub fn used_shared_base(&self) -> bool {
        self.shared_base
    }

    /// A snapshot of the underlying SAT solver's counters.
    pub fn solver_stats(&self) -> SolverStats {
        self.solver.stats()
    }

    fn timed_solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        let _span = separ_obs::span("logic.solve");
        let t0 = Instant::now();
        let r = self.solver.solve(assumptions);
        self.solve_time += t0.elapsed();
        r
    }

    fn snapshot(&self) -> Vec<bool> {
        self.free_vars
            .iter()
            .map(|&(_, _, v)| self.solver.is_true(v.positive()))
            .collect()
    }

    fn decode(&self, assignment: &[bool]) -> Instance {
        let mut rels: HashMap<RelationId, TupleSet> = HashMap::new();
        for (i, decl) in self.relations.iter().enumerate() {
            rels.insert(RelationId(i as u32), decl.lower().clone());
        }
        for (i, (rel, tuple, _)) in self.free_vars.iter().enumerate() {
            if assignment[i] {
                rels.get_mut(rel)
                    .expect("free var belongs to declared relation")
                    .insert(tuple.clone());
            }
        }
        let names = self
            .relations
            .iter()
            .map(|d| d.name().to_string())
            .collect();
        Instance::new(names, rels, self.universe.clone())
    }

    /// Finds the next satisfying instance, blocking it for later calls.
    ///
    /// Returns `None` once the instance space is exhausted. Instances are
    /// distinguished by their free-tuple assignment.
    pub fn next_model(&mut self) -> Option<Instance> {
        if self.exhausted {
            return None;
        }
        if self.timed_solve(&[]) != SolveResult::Sat {
            self.exhausted = true;
            return None;
        }
        let assignment = self.snapshot();
        if self.free_vars.is_empty() {
            // A unique (fully determined) instance.
            self.exhausted = true;
            return Some(self.decode(&assignment));
        }
        let blocking: Vec<Lit> = self
            .free_vars
            .iter()
            .zip(&assignment)
            .map(|(&(_, _, v), &val)| v.lit(!val))
            .collect();
        self.solver.add_clause(&blocking);
        Some(self.decode(&assignment))
    }

    /// Finds the next *minimal* satisfying instance.
    ///
    /// An instance is minimal if no other satisfying instance has a strict
    /// subset of its free tuples. After one is returned, every superset of
    /// its positive tuples (including itself) is excluded, so repeated calls
    /// walk the antichain of minimal scenarios, as Aluminum does.
    pub fn next_minimal_model(&mut self) -> Option<Instance> {
        if self.exhausted {
            return None;
        }
        if self.timed_solve(&[]) != SolveResult::Sat {
            self.exhausted = true;
            return None;
        }
        let mut assignment = self.snapshot();
        // Shrink: repeatedly ask for a model whose positives are a strict
        // subset of the current ones.
        loop {
            let positives: Vec<usize> = (0..assignment.len()).filter(|&i| assignment[i]).collect();
            if positives.is_empty() {
                break;
            }
            // Activation literal for the "drop at least one positive" clause.
            let act = self.solver.new_var();
            let mut clause: Vec<Lit> = positives
                .iter()
                .map(|&i| self.free_vars[i].2.negative())
                .collect();
            clause.push(act.negative());
            self.solver.add_clause(&clause);
            let mut assumptions: Vec<Lit> = vec![act.positive()];
            for (i, &val) in assignment.iter().enumerate() {
                if !val {
                    assumptions.push(self.free_vars[i].2.negative());
                }
            }
            if self.timed_solve(&assumptions) == SolveResult::Sat {
                assignment = self.snapshot();
                // Retire the activation var so its clause becomes inert.
                self.solver.add_clause(&[act.negative()]);
            } else {
                self.solver.add_clause(&[act.negative()]);
                break;
            }
        }
        // Block the upward cone of this minimal model.
        let positives: Vec<Lit> = (0..assignment.len())
            .filter(|&i| assignment[i])
            .map(|i| self.free_vars[i].2.negative())
            .collect();
        if positives.is_empty() {
            self.exhausted = true;
        } else {
            self.solver.add_clause(&positives);
        }
        Some(self.decode(&assignment))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Expr;

    fn unary_problem(n_atoms: usize) -> (Problem, RelationId) {
        let mut u = Universe::new();
        let atoms: Vec<_> = (0..n_atoms).map(|i| u.add(format!("a{i}"))).collect();
        let mut p = Problem::new(u);
        let r = p.relation(RelationDecl::free("r", TupleSet::unary_from(atoms)));
        (p, r)
    }

    #[test]
    fn some_forces_nonempty() {
        let (mut p, r) = unary_problem(3);
        p.fact(Expr::relation(r).some());
        let inst = p.solve().expect("well-typed").expect("satisfiable");
        assert!(!inst.tuples(r).is_empty());
    }

    #[test]
    fn contradiction_is_unsat() {
        let (mut p, r) = unary_problem(2);
        p.fact(Expr::relation(r).some());
        p.fact(Expr::relation(r).no());
        assert!(p.solve().expect("well-typed").is_none());
    }

    #[test]
    fn one_gives_singleton() {
        let (mut p, r) = unary_problem(4);
        p.fact(Expr::relation(r).one());
        let inst = p.solve().expect("well-typed").expect("satisfiable");
        assert_eq!(inst.tuples(r).len(), 1);
    }

    #[test]
    fn enumeration_counts_models() {
        // `lone r` over 3 atoms: the empty set plus 3 singletons = 4 models.
        let (mut p, r) = unary_problem(3);
        p.fact(Expr::relation(r).lone());
        let mut finder = p.model_finder().expect("well-typed");
        let mut count = 0;
        while let Some(inst) = finder.next_model() {
            assert!(inst.tuples(r).len() <= 1);
            count += 1;
            assert!(count <= 4, "too many models");
        }
        assert_eq!(count, 4);
    }

    #[test]
    fn minimal_model_of_some_is_singleton() {
        let (mut p, r) = unary_problem(5);
        p.fact(Expr::relation(r).some());
        let inst = p.solve_minimal().expect("well-typed").expect("satisfiable");
        assert_eq!(
            inst.tuples(r).len(),
            1,
            "minimal witness of `some` is a singleton"
        );
    }

    #[test]
    fn minimal_enumeration_walks_the_antichain() {
        // `some r` over 3 atoms has exactly 3 minimal models (singletons).
        let (mut p, r) = unary_problem(3);
        p.fact(Expr::relation(r).some());
        let mut finder = p.model_finder().expect("well-typed");
        let mut count = 0;
        while let Some(inst) = finder.next_minimal_model() {
            assert_eq!(inst.tuples(r).len(), 1);
            count += 1;
            assert!(count <= 3);
        }
        assert_eq!(count, 3);
    }

    fn count_models(finder: &mut ModelFinder) -> usize {
        let mut count = 0;
        while finder.next_model().is_some() {
            count += 1;
            assert!(count <= 64, "runaway enumeration");
        }
        count
    }

    #[test]
    fn symmetry_breaking_prunes_symmetric_models() {
        // `some r` over 4 interchangeable atoms: 15 nonempty subsets
        // plainly; the lex-leader predicates keep only the 4 "sorted"
        // representatives (one per subset size).
        let (mut p, r) = unary_problem(4);
        p.fact(Expr::relation(r).some());
        let mut plain = p.model_finder().expect("well-typed");
        assert_eq!(count_models(&mut plain), 15);
        let sb = FinderOptions {
            symmetry_breaking: true,
            ..FinderOptions::default()
        };
        let mut broken = p.model_finder_with(sb).expect("well-typed");
        assert_eq!(count_models(&mut broken), 4);
    }

    #[test]
    fn symmetry_breaking_preserves_satisfiability_and_minimality() {
        let (mut p, r) = unary_problem(5);
        p.fact(Expr::relation(r).some());
        let sb = FinderOptions {
            symmetry_breaking: true,
            ..FinderOptions::default()
        };
        let mut finder = p.model_finder_with(sb).expect("well-typed");
        let inst = finder.next_minimal_model().expect("satisfiable");
        assert_eq!(inst.tuples(r).len(), 1, "a singleton orbit representative");
    }

    #[test]
    fn symmetry_breaking_respects_pinned_atoms() {
        // The fact mentions a0 literally, so a0 must stay out of the
        // symmetry class: `r = {a0}` must remain reachable.
        let (mut p, r) = unary_problem(3);
        let a0 = p.universe().lookup("a0").expect("atom exists");
        p.fact(Expr::atom(a0).in_(&Expr::relation(r)));
        let sb = FinderOptions {
            symmetry_breaking: true,
            ..FinderOptions::default()
        };
        let mut finder = p.model_finder_with(sb).expect("well-typed");
        let inst = finder.next_minimal_model().expect("satisfiable");
        assert!(inst.tuples(r).contains(&Tuple::unary(a0)));
    }

    #[test]
    fn encodings_and_sharing_agree_on_model_counts() {
        for encoding in [CnfEncoding::PlaistedGreenbaum, CnfEncoding::Tseitin] {
            let (mut p, r) = unary_problem(3);
            p.fact(Expr::relation(r).lone());
            let options = FinderOptions {
                encoding,
                ..FinderOptions::default()
            };
            let mut fresh = p.model_finder_with(options).expect("well-typed");
            assert_eq!(count_models(&mut fresh), 4, "{encoding:?}");
            let base = p.translation_base();
            let mut shared = p.model_finder_from(&base, options).expect("well-typed");
            assert!(shared.used_shared_base());
            assert_eq!(count_models(&mut shared), 4, "{encoding:?} shared");
        }
    }

    #[test]
    fn polarity_encoding_reduces_clause_counts() {
        let (mut p, r) = unary_problem(6);
        p.fact(Expr::relation(r).one());
        let pg = p.model_finder().expect("well-typed");
        let ts = p
            .model_finder_with(FinderOptions {
                encoding: CnfEncoding::Tseitin,
                ..FinderOptions::default()
            })
            .expect("well-typed");
        assert!(
            pg.cnf_clauses() < ts.cnf_clauses(),
            "pg {} vs tseitin {}",
            pg.cnf_clauses(),
            ts.cnf_clauses()
        );
    }

    #[test]
    fn quantifiers_and_join_interact() {
        // Universe: two components, one app. cmp_app: Component -> App,
        // constrained so every component maps to exactly one app.
        let mut u = Universe::new();
        let c0 = u.add("C0");
        let c1 = u.add("C1");
        let a0 = u.add("A0");
        let mut p = Problem::new(u);
        let comp = p.relation(RelationDecl::exact(
            "Component",
            TupleSet::unary_from([c0, c1]),
        ));
        let app = p.relation(RelationDecl::exact("App", TupleSet::unary_from([a0])));
        let cmp_app = p.relation(RelationDecl::free(
            "cmp_app",
            TupleSet::binary_from([(c0, a0), (c1, a0)]),
        ));
        let v = p.fresh_var();
        p.fact(Formula::for_all(
            v,
            Expr::relation(comp),
            Expr::var(v).join(&Expr::relation(cmp_app)).one(),
        ));
        // Redundant but exercises join in the other direction:
        p.fact(
            Expr::relation(app)
                .join(&Expr::relation(cmp_app).transpose())
                .some(),
        );
        let inst = p.solve().expect("well-typed").expect("satisfiable");
        assert_eq!(inst.tuples(cmp_app).len(), 2);
    }

    #[test]
    fn closure_reaches_transitively() {
        // edges is exact {(a,b),(b,c)}; fact: (a,c) in ^edges must hold —
        // trivially true, so solvable; and (c,a) in ^edges must be
        // unsatisfiable.
        let mut u = Universe::new();
        let a = u.add("a");
        let b = u.add("b");
        let c = u.add("c");
        let mut p = Problem::new(u.clone());
        let edges = p.relation(RelationDecl::exact(
            "edges",
            TupleSet::binary_from([(a, b), (b, c)]),
        ));
        p.fact(
            Expr::atom(a)
                .product(&Expr::atom(c))
                .in_(&Expr::relation(edges).closure()),
        );
        assert!(p.solve().expect("ok").is_some());

        let mut p2 = Problem::new(u);
        let edges2 = p2.relation(RelationDecl::exact(
            "edges",
            TupleSet::binary_from([(a, b), (b, c)]),
        ));
        p2.fact(
            Expr::atom(c)
                .product(&Expr::atom(a))
                .in_(&Expr::relation(edges2).closure()),
        );
        assert!(p2.solve().expect("ok").is_none());
    }

    #[test]
    fn paper_style_component_app_meta_model() {
        // The Alloy example from the paper (Fig. 4): each Component belongs
        // to exactly one Application. With 1 app and 2 components, the
        // instance where a component is orphaned must be excluded.
        let mut u = Universe::new();
        let app1 = u.add("App1");
        let app2 = u.add("App2");
        let c1 = u.add("Comp1");
        let c2 = u.add("Comp2");
        let mut p = Problem::new(u);
        let application = p.relation(RelationDecl::exact(
            "Application",
            TupleSet::unary_from([app1, app2]),
        ));
        let component = p.relation(RelationDecl::exact(
            "Component",
            TupleSet::unary_from([c1, c2]),
        ));
        let cmps = p.relation(RelationDecl::free(
            "cmps",
            TupleSet::binary_from([(app1, c1), (app1, c2), (app2, c1), (app2, c2)]),
        ));
        // fact { all c: Component | one c.~cmps }
        let v = p.fresh_var();
        p.fact(Formula::for_all(
            v,
            Expr::relation(component),
            Expr::var(v).join(&Expr::relation(cmps).transpose()).one(),
        ));
        let _ = application;
        let mut finder = p.model_finder().expect("well-typed");
        let mut count = 0;
        while let Some(inst) = finder.next_model() {
            // Every model assigns each component exactly one app.
            let ts = inst.tuples(cmps);
            assert_eq!(ts.len(), 2);
            count += 1;
            assert!(count <= 4);
        }
        // 2 choices for c1 × 2 choices for c2.
        assert_eq!(count, 4);
    }

    #[test]
    fn check_returns_counterexamples_or_proves() {
        // Facts: r is a singleton. Assertion `some r` holds; assertion
        // `no r` has a counterexample.
        let (mut p, r) = unary_problem(3);
        p.fact(Expr::relation(r).one());
        assert!(
            p.check(Expr::relation(r).some()).expect("ok").is_none(),
            "one(r) entails some(r)"
        );
        let cex = p
            .check(Expr::relation(r).no())
            .expect("ok")
            .expect("counterexample exists");
        assert_eq!(cex.tuples(r).len(), 1, "counterexample satisfies facts");
    }

    #[test]
    fn check_is_bounded_verification() {
        // Vacuous entailment: with an empty-upper-bound constraint the
        // assertion holds for want of counterexamples.
        let (mut p, r) = unary_problem(2);
        p.fact(Expr::relation(r).no());
        assert!(p.check(Expr::relation(r).lone()).expect("ok").is_none());
    }

    #[test]
    fn timing_counters_accumulate() {
        let (mut p, r) = unary_problem(6);
        p.fact(Expr::relation(r).some());
        let mut finder = p.model_finder().expect("well-typed");
        let _ = finder.next_model();
        assert!(finder.num_primary_vars() > 0);
        assert!(finder.num_solver_vars() >= finder.num_primary_vars());
    }
}
