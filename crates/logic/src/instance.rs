//! Decoded model instances.

use std::collections::HashMap;
use std::fmt;

use crate::relation::{RelationId, Tuple, TupleSet};
use crate::universe::Universe;

/// A satisfying instance: a concrete tuple set for every declared relation.
#[derive(Clone, Debug)]
pub struct Instance {
    names: Vec<String>,
    relations: HashMap<RelationId, TupleSet>,
    universe: Universe,
}

impl Instance {
    pub(crate) fn new(
        names: Vec<String>,
        relations: HashMap<RelationId, TupleSet>,
        universe: Universe,
    ) -> Instance {
        Instance {
            names,
            relations,
            universe,
        }
    }

    /// The tuples of a relation in this instance.
    ///
    /// # Panics
    ///
    /// Panics if `r` was not declared in the problem that produced this
    /// instance.
    pub fn tuples(&self, r: RelationId) -> &TupleSet {
        self.relations
            .get(&r)
            .expect("relation declared in the originating problem")
    }

    /// Returns `true` if the relation contains the given tuple.
    pub fn contains(&self, r: RelationId, t: &Tuple) -> bool {
        self.tuples(r).contains(t)
    }

    /// The universe this instance was found in (for naming atoms).
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// Total number of tuples across all relations (a size measure used by
    /// minimality tests).
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(TupleSet::len).sum()
    }

    /// Iterates over `(relation, name, tuples)`.
    pub fn iter(&self) -> impl Iterator<Item = (RelationId, &str, &TupleSet)> + '_ {
        let mut ids: Vec<&RelationId> = self.relations.keys().collect();
        ids.sort();
        ids.into_iter()
            .map(move |&r| (r, self.names[r.index()].as_str(), &self.relations[&r]))
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (_, name, tuples) in self.iter() {
            write!(f, "{name} = {{")?;
            for (i, t) in tuples.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "(")?;
                for (j, a) in t.atoms().iter().enumerate() {
                    if j > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}", self.universe.name(*a))?;
                }
                write!(f, ")")?;
            }
            writeln!(f, "}}")?;
        }
        Ok(())
    }
}
