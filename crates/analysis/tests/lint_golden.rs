//! Golden tests for the verification/diagnostics layer: one hand-built
//! malformed package per diagnostic kind, quarantine semantics through the
//! extractor, and the property that builder-produced packages lint clean.

use proptest::prelude::*;

use separ_analysis::diagnostics::{self, DiagnosticKind, Severity};
use separ_analysis::extractor::extract_apk;
use separ_dex::build::ApkBuilder;
use separ_dex::instr::{Instr, InvokeKind, Reg};
use separ_dex::manifest::{ComponentDecl, ComponentKind, IntentFilterDecl, Manifest};
use separ_dex::program::{Apk, Class, Dex, Method};
use separ_dex::refs::{MethodId, StrId};

/// A minimal well-formed app hosting one hand-built method named `m` in
/// class `LHost;` (pools interned consistently).
fn apk_with_code(code: Vec<Instr>) -> Apk {
    let mut dex = Dex::new();
    let ty = dex.pools.ty("LHost;");
    let name = dex.pools.str("m");
    dex.classes.push(Class {
        ty,
        super_ty: None,
        fields: vec![],
        methods: vec![simple_method(name, code)],
    });
    Apk::new(Manifest::new("com.golden"), dex)
}

fn simple_method(name: StrId, code: Vec<Instr>) -> Method {
    Method {
        name,
        num_registers: 2,
        num_params: 0,
        is_static: true,
        returns_value: false,
        code,
    }
}

fn lint_kinds(apk: &Apk) -> Vec<(DiagnosticKind, Severity)> {
    diagnostics::lint_apk(apk)
        .diagnostics
        .iter()
        .map(|d| (d.kind, d.severity))
        .collect()
}

#[test]
fn golden_register_bounds() {
    let apk = apk_with_code(vec![
        Instr::ConstInt {
            dst: Reg(9),
            value: 1,
        },
        Instr::ReturnVoid,
    ]);
    assert_eq!(
        lint_kinds(&apk),
        vec![(DiagnosticKind::RegisterBounds, Severity::Error)]
    );
    let lint = diagnostics::lint_apk(&apk);
    assert_eq!(lint.quarantined_methods, 1);
    assert_eq!(lint.diagnostics[0].app, "com.golden");
    assert_eq!(lint.diagnostics[0].location, "LHost;->m@0");
}

#[test]
fn golden_use_before_def() {
    let apk = apk_with_code(vec![Instr::Return { reg: Reg(0) }]);
    assert_eq!(
        lint_kinds(&apk),
        vec![(DiagnosticKind::UseBeforeDef, Severity::Warning)]
    );
    // Warnings do not quarantine.
    assert_eq!(diagnostics::lint_apk(&apk).quarantined_methods, 0);
}

#[test]
fn golden_move_result_pairing() {
    let apk = apk_with_code(vec![Instr::MoveResult { dst: Reg(0) }, Instr::ReturnVoid]);
    assert_eq!(
        lint_kinds(&apk),
        vec![(DiagnosticKind::MoveResultPairing, Severity::Error)]
    );
}

#[test]
fn golden_branch_target() {
    let apk = apk_with_code(vec![Instr::Goto { target: 77 }]);
    assert_eq!(
        lint_kinds(&apk),
        vec![(DiagnosticKind::BranchTarget, Severity::Error)]
    );
}

#[test]
fn golden_pool_index() {
    let apk = apk_with_code(vec![
        Instr::Invoke {
            kind: InvokeKind::Static,
            method: MethodId::from_index(999),
            args: vec![],
        },
        Instr::ReturnVoid,
    ]);
    assert_eq!(
        lint_kinds(&apk),
        vec![(DiagnosticKind::PoolIndex, Severity::Error)]
    );
}

#[test]
fn golden_unreachable_code() {
    let apk = apk_with_code(vec![Instr::ReturnVoid, Instr::Nop, Instr::ReturnVoid]);
    assert_eq!(
        lint_kinds(&apk),
        vec![(DiagnosticKind::UnreachableCode, Severity::Warning)]
    );
}

#[test]
fn golden_superclass_cycle() {
    let mut dex = Dex::new();
    let a = dex.pools.ty("LA;");
    let b = dex.pools.ty("LB;");
    for (ty, sup) in [(a, b), (b, a)] {
        dex.classes.push(Class {
            ty,
            super_ty: Some(sup),
            fields: vec![],
            methods: vec![],
        });
    }
    let apk = Apk::new(Manifest::new("com.cycle"), dex);
    let kinds = lint_kinds(&apk);
    assert_eq!(kinds.len(), 2);
    assert!(kinds
        .iter()
        .all(|k| *k == (DiagnosticKind::SuperclassCycle, Severity::Error)));
    // Both classes are structurally untrustworthy and removed.
    let lint = diagnostics::lint_apk(&apk);
    let sanitized = lint.sanitized_apk(&apk).expect("needs quarantine");
    assert!(sanitized.dex.classes.is_empty());
    // Extraction over the cyclic app terminates.
    let model = extract_apk(&apk);
    assert!(model.has_error_diagnostics());
}

#[test]
fn golden_duplicate_class() {
    let mut dex = Dex::new();
    let ty = dex.pools.ty("LDup;");
    for _ in 0..2 {
        dex.classes.push(Class {
            ty,
            super_ty: None,
            fields: vec![],
            methods: vec![],
        });
    }
    let apk = Apk::new(Manifest::new("com.dup"), dex);
    assert_eq!(
        lint_kinds(&apk),
        vec![(DiagnosticKind::DuplicateClass, Severity::Warning)]
    );
}

#[test]
fn golden_unresolved_component() {
    let mut b = ApkBuilder::new("com.ghost");
    b.add_component(ComponentDecl::new("LGhost;", ComponentKind::Activity));
    assert_eq!(
        lint_kinds(&b.finish()),
        vec![(DiagnosticKind::UnresolvedComponent, Severity::Warning)]
    );
}

#[test]
fn golden_missing_entry_point() {
    let mut b = ApkBuilder::new("com.noentry");
    let mut decl = ComponentDecl::new("LSvc;", ComponentKind::Service);
    decl.exported = Some(true);
    b.add_component(decl);
    let mut cb = b.class("LSvc;");
    let mut m = cb.method("helper", 1, true, false);
    m.ret_void();
    m.finish();
    cb.finish();
    assert_eq!(
        lint_kinds(&b.finish()),
        vec![(DiagnosticKind::MissingEntryPoint, Severity::Warning)]
    );
    // An inherited entry point satisfies the check.
    let mut b = ApkBuilder::new("com.inherited");
    let mut decl = ComponentDecl::new("LSvc;", ComponentKind::Service);
    decl.exported = Some(true);
    b.add_component(decl);
    let mut cb = b.class("LBase;");
    let mut m = cb.method("onStartCommand", 1, false, false);
    m.ret_void();
    m.finish();
    cb.finish();
    let mut cb = b.class_extends("LSvc;", "LBase;");
    let mut m = cb.method("helper", 1, true, false);
    m.ret_void();
    m.finish();
    cb.finish();
    assert_eq!(lint_kinds(&b.finish()), vec![]);
}

#[test]
fn golden_filter_without_action() {
    let mut b = ApkBuilder::new("com.emptyfilter");
    let mut decl = ComponentDecl::new("LAct;", ComponentKind::Activity);
    decl.exported = Some(false);
    decl.intent_filters.push(IntentFilterDecl::default());
    b.add_component(decl);
    let mut cb = b.class("LAct;");
    let mut m = cb.method("onCreate", 1, false, false);
    m.ret_void();
    m.finish();
    cb.finish();
    assert_eq!(
        lint_kinds(&b.finish()),
        vec![(DiagnosticKind::FilterWithoutAction, Severity::Warning)]
    );
}

#[test]
fn golden_provider_with_filter() {
    let mut b = ApkBuilder::new("com.provfilter");
    let mut decl = ComponentDecl::new("LProv;", ComponentKind::Provider);
    decl.exported = Some(false);
    decl.intent_filters
        .push(IntentFilterDecl::for_actions(["x"]));
    b.add_component(decl);
    let mut cb = b.class("LProv;");
    let mut m = cb.method("query", 1, false, true);
    let v = m.reg();
    m.const_null(v);
    m.ret(v);
    m.finish();
    cb.finish();
    assert_eq!(
        lint_kinds(&b.finish()),
        vec![(DiagnosticKind::ProviderWithFilter, Severity::Warning)]
    );
}

#[test]
fn golden_duplicate_component() {
    let mut b = ApkBuilder::new("com.twice");
    for _ in 0..2 {
        b.add_component(ComponentDecl::new("LMain;", ComponentKind::Activity));
    }
    let mut cb = b.class("LMain;");
    let mut m = cb.method("onCreate", 1, false, false);
    m.ret_void();
    m.finish();
    cb.finish();
    assert_eq!(
        lint_kinds(&b.finish()),
        vec![(DiagnosticKind::DuplicateComponent, Severity::Warning)]
    );
}

#[test]
fn golden_component_unreachable() {
    // LIdle; is private, sends nothing and sinks nothing: no signature
    // footprint can match it. LLeaker; makes a tainted implicit send and
    // must NOT be flagged.
    let mut b = ApkBuilder::new("com.partly");
    b.add_component(ComponentDecl::new("LIdle;", ComponentKind::Activity));
    let mut cb = b.class("LIdle;");
    let mut m = cb.method("onCreate", 1, false, false);
    m.ret_void();
    m.finish();
    cb.finish();
    b.add_component(ComponentDecl::new("LLeaker;", ComponentKind::Service));
    let mut cb = b.class_extends("LLeaker;", "Landroid/app/Service;");
    let mut m = cb.method("onStartCommand", 2, false, false);
    let loc = m.reg();
    let intent = m.reg();
    // Initialize the receiver register so the method also lints clean.
    m.new_instance(loc, "Landroid/location/LocationManager;");
    m.invoke_virtual(
        "Landroid/location/LocationManager;",
        "getLastKnownLocation",
        &[loc],
        true,
    );
    m.move_result(loc);
    m.new_instance(intent, "Landroid/content/Intent;");
    m.invoke_virtual(
        "Landroid/content/Intent;",
        "putExtra",
        &[intent, loc, loc],
        false,
    );
    m.invoke_virtual(
        "Landroid/content/Context;",
        "startService",
        &[m.this(), intent],
        false,
    );
    m.ret_void();
    m.finish();
    cb.finish();
    let apk = b.finish();
    // The relevance check is not part of the well-formedness lint.
    assert_eq!(lint_kinds(&apk), vec![]);
    let model = extract_apk(&apk);
    let found = diagnostics::unreachable_components(&model);
    assert_eq!(
        found
            .iter()
            .map(|d| (d.kind, d.severity, d.location.as_str()))
            .collect::<Vec<_>>(),
        vec![(
            DiagnosticKind::ComponentUnreachable,
            Severity::Info,
            "manifest:LIdle;"
        )]
    );
    assert_eq!(found[0].app, "com.partly");
}

#[test]
fn golden_decode_failure() {
    let d = diagnostics::decode_failure("bundle/app.sdex", &separ_dex::DexError::Truncated);
    assert_eq!(d.kind, DiagnosticKind::DecodeFailure);
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.app, "bundle/app.sdex");
}

#[test]
fn quarantined_method_is_skipped_but_the_app_still_analyzes() {
    // One good service leaking Location over ICC, one malformed method
    // (orphan move-result). The bad method is quarantined; the good
    // component's facts survive.
    let mut b = ApkBuilder::new("com.mixed");
    b.add_component(ComponentDecl::new("LLeaker;", ComponentKind::Service));
    let mut cb = b.class_extends("LLeaker;", "Landroid/app/Service;");
    let mut m = cb.method("onStartCommand", 2, false, false);
    let loc = m.reg();
    let intent = m.reg();
    m.invoke_virtual(
        "Landroid/location/LocationManager;",
        "getLastKnownLocation",
        &[loc],
        true,
    );
    m.move_result(loc);
    m.new_instance(intent, "Landroid/content/Intent;");
    m.invoke_virtual(
        "Landroid/content/Intent;",
        "putExtra",
        &[intent, loc, loc],
        false,
    );
    m.invoke_virtual(
        "Landroid/content/Context;",
        "startService",
        &[m.this(), intent],
        false,
    );
    m.ret_void();
    m.finish();
    cb.finish();
    let mut apk = b.finish();
    // Plant the malformed method post-builder (the DSL cannot emit it).
    let bad_name = apk.dex.pools.str("corrupted");
    apk.dex.classes[0].methods.push(Method {
        name: bad_name,
        num_registers: 1,
        num_params: 0,
        is_static: true,
        returns_value: false,
        code: vec![Instr::MoveResult { dst: Reg(0) }, Instr::ReturnVoid],
    });

    let model = extract_apk(&apk);
    assert!(model.has_error_diagnostics());
    assert_eq!(model.stats.quarantined_methods, 1);
    assert!(model
        .diagnostics
        .iter()
        .any(|d| d.kind == DiagnosticKind::MoveResultPairing));
    // The well-formed entry point was still analyzed.
    let leaker = model.component("LLeaker;").expect("component extracted");
    assert!(
        !leaker.sent_intents.is_empty(),
        "good method's facts survive quarantine: {leaker:?}"
    );
}

#[test]
fn quarantine_only_empties_the_poisoned_body() {
    let mut dex = Dex::new();
    let name_good = dex.pools.str("good");
    let name_bad = dex.pools.str("bad");
    let ty = dex.pools.ty("LHost;");
    dex.classes.push(Class {
        ty,
        super_ty: None,
        fields: vec![],
        methods: vec![
            simple_method(name_good, vec![Instr::ReturnVoid]),
            simple_method(name_bad, vec![Instr::Goto { target: 5 }]),
        ],
    });
    let apk = Apk::new(Manifest::new("com.q"), dex);
    let lint = diagnostics::lint_apk(&apk);
    let sanitized = lint.sanitized_apk(&apk).expect("quarantine needed");
    assert_eq!(sanitized.dex.classes[0].methods[0].code.len(), 1);
    assert!(sanitized.dex.classes[0].methods[1].code.is_empty());
}

/// Strategy: a random app assembled through the builder DSL with strict
/// define-before-use discipline, so it must be diagnostic-free.
fn arb_clean_apk() -> impl Strategy<Value = Apk> {
    (
        "[a-z]{3,8}",
        prop::collection::vec(
            (0u8..4, any::<bool>(), prop::collection::vec(0u8..7, 0..24)),
            1..4,
        ),
    )
        .prop_map(|(package, components)| {
            let mut b = ApkBuilder::new(format!("com.{package}"));
            for (i, (kind_tag, exported, ops)) in components.iter().enumerate() {
                let kind = ComponentKind::from_tag(kind_tag % 4).expect("tag in range");
                let class_name = format!("LGen{i};");
                let mut decl = ComponentDecl::new(&class_name, kind);
                decl.exported = Some(*exported);
                if *exported && kind != ComponentKind::Provider {
                    decl.intent_filters
                        .push(IntentFilterDecl::for_actions([format!("act.{i}")]));
                }
                b.add_component(decl);
                let mut cb = b.class(&class_name);
                let entry = separ_android::api::entry_points(kind)[0];
                let mut m = cb.method(entry, 2, false, true);
                let a = m.reg();
                let s = m.reg();
                m.const_int(a, 1);
                m.const_string(s, "seed");
                for op in ops {
                    match op % 7 {
                        0 => {
                            m.binop(separ_dex::BinOp::Add, a, a, a);
                        }
                        1 => {
                            m.const_string(s, "other");
                        }
                        2 => {
                            m.mov(s, a);
                        }
                        3 => {
                            m.invoke_static(&class_name, entry, &[a], true);
                            m.move_result(a);
                        }
                        4 => {
                            m.new_instance(s, "Landroid/content/Intent;");
                        }
                        5 => {
                            m.const_null(s);
                        }
                        _ => {
                            m.nop();
                        }
                    }
                }
                m.ret(a);
                m.finish();
                cb.finish();
            }
            b.finish()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn builder_output_lints_clean(apk in arb_clean_apk()) {
        let lint = diagnostics::lint_apk(&apk);
        prop_assert!(lint.diagnostics.is_empty(), "{:?}", lint.diagnostics);
        prop_assert!(!lint.needs_quarantine());
    }
}
