//! Intra-procedural control-flow graphs.
//!
//! Basic blocks are built from branch leaders; the graph supports forward
//! reachability (used to prune dead code, which is how the DroidBench
//! unreachable-leak decoys are correctly ignored).

use separ_dex::program::Method;

/// A basic block: a half-open instruction range `[start, end)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Block {
    /// First instruction index.
    pub start: u32,
    /// One past the last instruction index.
    pub end: u32,
}

/// A control-flow graph over a method's instructions.
#[derive(Clone, Debug)]
pub struct Cfg {
    blocks: Vec<Block>,
    successors: Vec<Vec<u32>>,
}

impl Cfg {
    /// Builds the CFG of a method.
    pub fn build(method: &Method) -> Cfg {
        let code = &method.code;
        let n = code.len();
        if n == 0 {
            return Cfg {
                blocks: vec![],
                successors: vec![],
            };
        }
        // Leaders: entry, branch targets, instructions after branches.
        let mut is_leader = vec![false; n];
        is_leader[0] = true;
        for (i, instr) in code.iter().enumerate() {
            if let Some(t) = instr.branch_target() {
                if (t as usize) < n {
                    is_leader[t as usize] = true;
                }
                if i + 1 < n {
                    is_leader[i + 1] = true;
                }
            }
            if instr.is_terminator() && i + 1 < n {
                is_leader[i + 1] = true;
            }
        }
        let mut blocks = Vec::new();
        let mut block_of = vec![0u32; n];
        let mut start = 0usize;
        #[allow(clippy::needless_range_loop)] // index math over two arrays is clearer here
        for i in 1..=n {
            if i == n || is_leader[i] {
                let b = blocks.len() as u32;
                for slot in block_of.iter_mut().take(i).skip(start) {
                    *slot = b;
                }
                blocks.push(Block {
                    start: start as u32,
                    end: i as u32,
                });
                start = i;
            }
        }
        let mut successors = vec![Vec::new(); blocks.len()];
        for (bi, b) in blocks.iter().enumerate() {
            let last = &code[(b.end - 1) as usize];
            if let Some(t) = last.branch_target() {
                successors[bi].push(block_of[t as usize]);
            }
            if !last.is_terminator() && (b.end as usize) < n {
                successors[bi].push(block_of[b.end as usize]);
            }
            successors[bi].sort_unstable();
            successors[bi].dedup();
        }
        Cfg { blocks, successors }
    }

    /// The basic blocks in order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Successor block indices of a block.
    pub fn successors(&self, block: usize) -> &[u32] {
        &self.successors[block]
    }

    /// Block indices reachable from the entry block.
    pub fn reachable_blocks(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        if self.blocks.is_empty() {
            return seen;
        }
        let mut stack = vec![0u32];
        while let Some(b) = stack.pop() {
            if std::mem::replace(&mut seen[b as usize], true) {
                continue;
            }
            for &s in &self.successors[b as usize] {
                if !seen[s as usize] {
                    stack.push(s);
                }
            }
        }
        seen
    }

    /// Instruction indices reachable from the entry.
    pub fn reachable_instructions(&self) -> Vec<bool> {
        let blocks_reach = self.reachable_blocks();
        let n = self
            .blocks
            .last()
            .map(|b| b.end as usize)
            .unwrap_or_default();
        let mut out = vec![false; n];
        for (bi, b) in self.blocks.iter().enumerate() {
            if blocks_reach[bi] {
                for pc in b.start..b.end {
                    out[pc as usize] = true;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use separ_dex::instr::{Instr, Reg};
    use separ_dex::program::Method;
    use separ_dex::refs::StrId;

    fn method(code: Vec<Instr>) -> Method {
        Method {
            name: StrId::from_index(0),
            num_registers: 4,
            num_params: 0,
            is_static: true,
            returns_value: false,
            code,
        }
    }

    #[test]
    fn straight_line_is_one_block() {
        let m = method(vec![Instr::Nop, Instr::Nop, Instr::ReturnVoid]);
        let cfg = Cfg::build(&m);
        assert_eq!(cfg.blocks().len(), 1);
        assert!(cfg.successors(0).is_empty());
    }

    #[test]
    fn diamond_shape() {
        // 0: if-eqz v0 -> 3
        // 1: nop
        // 2: goto 4
        // 3: nop
        // 4: return-void
        let m = method(vec![
            Instr::IfEqz {
                reg: Reg(0),
                target: 3,
            },
            Instr::Nop,
            Instr::Goto { target: 4 },
            Instr::Nop,
            Instr::ReturnVoid,
        ]);
        let cfg = Cfg::build(&m);
        assert_eq!(cfg.blocks().len(), 4);
        assert_eq!(cfg.successors(0), &[1, 2]);
        assert_eq!(cfg.successors(1), &[3]);
        assert_eq!(cfg.successors(2), &[3]);
        assert!(cfg.successors(3).is_empty());
        assert!(cfg.reachable_blocks().iter().all(|&b| b));
    }

    #[test]
    fn code_after_goto_is_unreachable() {
        // 0: goto 2
        // 1: nop        <- dead
        // 2: return-void
        let m = method(vec![
            Instr::Goto { target: 2 },
            Instr::Nop,
            Instr::ReturnVoid,
        ]);
        let cfg = Cfg::build(&m);
        let reach = cfg.reachable_instructions();
        assert_eq!(reach, vec![true, false, true]);
    }

    #[test]
    fn empty_method() {
        let m = method(vec![]);
        let cfg = Cfg::build(&m);
        assert!(cfg.blocks().is_empty());
        assert!(cfg.reachable_instructions().is_empty());
    }

    #[test]
    fn loop_back_edge() {
        // 0: nop
        // 1: if-nez v0 -> 0
        // 2: return-void
        let m = method(vec![
            Instr::Nop,
            Instr::IfNez {
                reg: Reg(0),
                target: 0,
            },
            Instr::ReturnVoid,
        ]);
        let cfg = Cfg::build(&m);
        // nop + if-nez form one block (the nop is the branch target, so the
        // block is [0,2)); return-void is its own block.
        assert_eq!(cfg.blocks().len(), 2);
        assert_eq!(cfg.successors(0), &[0, 1]);
        assert!(cfg.successors(1).is_empty());
    }
}
