//! On-demand backward alias and slice analysis.
//!
//! The paper's AME "handles aliasing through performing on-demand alias
//! analysis: for each attribute that is assigned to a heap variable, the
//! backward analysis finds its aliases and updates the set of its captured
//! values". This module provides that query interface over a single
//! method: given a register at a program point, walk definitions backward
//! (through moves, field round-trips and `move-result`) to find every
//! aliasing register and the contributing instructions — the backward
//! slice used by flow-explanation diagnostics.
//!
//! Within the extraction pipeline itself the abstract interpreter
//! subsumes these facts (values flow through moves and fields directly);
//! the on-demand query exists for callers that need *provenance*, not
//! just values — e.g. explaining to a user why a flow was reported.

use std::collections::{BTreeSet, VecDeque};

use separ_dex::instr::{Instr, Reg};
use separ_dex::program::Method;

use crate::cfg::Cfg;

/// A backward query result.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BackwardSlice {
    /// Instruction indices that may contribute to the queried value, in
    /// ascending order.
    pub instructions: Vec<u32>,
    /// Registers that may alias the queried value somewhere in the slice.
    pub aliases: BTreeSet<Reg>,
    /// Field names (`class->field`) the value may round-trip through.
    pub fields: BTreeSet<String>,
}

/// Computes the backward slice of `reg` as observed *before* executing
/// the instruction at `pc`.
///
/// The walk is flow-sensitive over the CFG's reverse edges and
/// field-insensitive across objects (a store to a field name reaches all
/// loads of that name), matching the extraction pipeline's abstraction.
pub fn backward_slice(
    method: &Method,
    pools: &separ_dex::refs::Pools,
    pc: u32,
    reg: Reg,
) -> BackwardSlice {
    let cfg = Cfg::build(method);
    // Reverse CFG on instruction granularity: predecessors of each pc.
    let n = method.code.len();
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (bi, block) in cfg.blocks().iter().enumerate() {
        // Within a block, each instruction's predecessor is the previous.
        for p in (block.start + 1)..block.end {
            preds[p as usize].push(p - 1);
        }
        // The first instruction of each successor block has the block's
        // last instruction as predecessor.
        for &succ in cfg.successors(bi) {
            let sb = cfg.blocks()[succ as usize];
            preds[sb.start as usize].push(block.end - 1);
        }
    }

    let mut result = BackwardSlice::default();
    result.aliases.insert(reg);
    // Worklist of (pc, tracked register or field). Fields are tracked by
    // pool id — interning makes ids 1:1 with `class->name` pairs, so the
    // walk compares integers; names are rendered only into the result.
    #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    enum Tracked {
        Reg(Reg),
        Field(separ_dex::refs::FieldId),
    }
    let mut seen: BTreeSet<(u32, Tracked)> = BTreeSet::new();
    let mut work: VecDeque<(u32, Tracked)> = VecDeque::new();
    // Start at every predecessor of the query point.
    if pc == 0 {
        return result;
    }
    for &p in &preds[pc as usize] {
        work.push_back((p, Tracked::Reg(reg)));
    }
    let mut slice: BTreeSet<u32> = BTreeSet::new();
    while let Some((at, tracked)) = work.pop_front() {
        if !seen.insert((at, tracked)) {
            continue;
        }
        let instr = &method.code[at as usize];
        let mut continue_with: Vec<Tracked> = Vec::new();
        match (&tracked, instr) {
            (Tracked::Reg(r), Instr::Move { dst, src }) if dst == r => {
                slice.insert(at);
                result.aliases.insert(*src);
                continue_with.push(Tracked::Reg(*src));
            }
            (Tracked::Reg(r), Instr::IGet { dst, field, .. })
            | (Tracked::Reg(r), Instr::SGet { dst, field })
                if dst == r =>
            {
                slice.insert(at);
                let fref = pools.field_at(*field);
                result.fields.insert(format!(
                    "{}->{}",
                    pools.type_at(fref.class),
                    pools.str_at(fref.name)
                ));
                continue_with.push(Tracked::Field(*field));
            }
            (Tracked::Field(fid), Instr::IPut { src, field, .. })
            | (Tracked::Field(fid), Instr::SPut { src, field }) => {
                if field == fid {
                    slice.insert(at);
                    result.aliases.insert(*src);
                    continue_with.push(Tracked::Reg(*src));
                } else {
                    continue_with.push(tracked);
                }
            }
            (Tracked::Reg(r), instr) if instr.def() == Some(*r) => {
                // Any other defining instruction terminates this strand
                // (const, move-result, new-instance, binop...): record it
                // and, for move-result, also record the invoke above.
                slice.insert(at);
                if matches!(instr, Instr::MoveResult { .. }) && at > 0 {
                    slice.insert(at - 1);
                }
                if let Instr::BinOp { lhs, rhs, .. } = instr {
                    result.aliases.insert(*lhs);
                    result.aliases.insert(*rhs);
                    continue_with.push(Tracked::Reg(*lhs));
                    continue_with.push(Tracked::Reg(*rhs));
                }
            }
            _ => {
                // Not a definition of what we track: keep walking.
                continue_with.push(tracked);
            }
        }
        for next in continue_with {
            for &p in &preds[at as usize] {
                work.push_back((p, next));
            }
        }
    }
    result.instructions = slice.into_iter().collect();
    result
}

/// Renders a slice as a human-readable explanation against the method's
/// disassembly (used by flow-provenance diagnostics).
pub fn explain(method: &Method, dex: &separ_dex::program::Dex, slice: &BackwardSlice) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "value may flow through {} instruction(s), aliases {:?}, fields {:?}:",
        slice.instructions.len(),
        slice.aliases,
        slice.fields
    );
    for &pc in &slice.instructions {
        let _ = writeln!(
            out,
            "  {pc:4}: {}",
            separ_dex::disasm::instruction(dex, &method.code[pc as usize])
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use separ_dex::build::ApkBuilder;

    /// Builds: v0 = source(); v1 = v0; this.stash = v1; v2 = this.stash;
    /// sink(v2)  — the slice of v2 at the sink must reach the source.
    fn aliasing_method() -> (separ_dex::program::Apk, usize) {
        let mut apk = ApkBuilder::new("t");
        let mut cb = apk.class("LAlias;");
        cb.field("stash", false);
        let mut m = cb.method("run", 1, false, false);
        let v0 = m.reg();
        let v1 = m.reg();
        let v2 = m.reg();
        m.invoke_virtual(
            "Landroid/telephony/TelephonyManager;",
            "getDeviceId",
            &[v0],
            true,
        );
        m.move_result(v0); // pc 1
        m.mov(v1, v0); // pc 2
        m.iput(v1, m.this(), "LAlias;", "stash"); // pc 3
        m.iget(v2, m.this(), "LAlias;", "stash"); // pc 4
        m.invoke_virtual("Landroid/util/Log;", "d", &[v2], false); // pc 5
        m.ret_void();
        m.finish();
        cb.finish();
        (apk.finish(), 5)
    }

    #[test]
    fn slice_traverses_moves_and_field_round_trips() {
        let (apk, sink_pc) = aliasing_method();
        let class = apk.dex.class_by_name("LAlias;").expect("class");
        let method = &class.methods[0];
        let slice = backward_slice(
            method,
            &apk.dex.pools,
            sink_pc as u32,
            separ_dex::instr::Reg(2),
        );
        // iget (4), iput (3), move (2), move-result (1) and the invoke (0).
        assert_eq!(slice.instructions, vec![0, 1, 2, 3, 4]);
        assert!(slice.fields.contains("LAlias;->stash"));
        use separ_dex::instr::Reg;
        for r in [Reg(0), Reg(1), Reg(2)] {
            assert!(slice.aliases.contains(&r), "missing alias {r:?}");
        }
        let text = explain(method, &apk.dex, &slice);
        assert!(text.contains("getDeviceId"));
    }

    #[test]
    fn slice_respects_branches() {
        // v0 is defined on both arms; the slice at the join includes both.
        let mut apk = ApkBuilder::new("t");
        let mut cb = apk.class("LBranchy;");
        let mut m = cb.method("run", 1, false, false);
        let v0 = m.reg();
        let cond = m.reg();
        let other = m.new_label();
        let join = m.new_label();
        m.const_int(cond, 1); // 0 — deliberately not pruned here: alias
                              // analysis is independent of const-prop
        m.if_eqz(cond, other); // 1
        m.const_string(v0, "left"); // 2
        m.goto(join); // 3
        m.bind(other);
        m.const_string(v0, "right"); // 4
        m.bind(join);
        m.invoke_virtual("Landroid/util/Log;", "d", &[v0], false); // 5
        m.ret_void();
        m.finish();
        cb.finish();
        let apk = apk.finish();
        let class = apk.dex.class_by_name("LBranchy;").expect("class");
        let method = &class.methods[0];
        let slice = backward_slice(method, &apk.dex.pools, 5, separ_dex::instr::Reg(0));
        assert!(slice.instructions.contains(&2), "left arm def");
        assert!(slice.instructions.contains(&4), "right arm def");
    }

    #[test]
    fn unrelated_registers_stay_out_of_the_slice() {
        let (apk, sink_pc) = aliasing_method();
        let class = apk.dex.class_by_name("LAlias;").expect("class");
        let method = &class.methods[0];
        // Query `this` (the parameter register): nothing defines it.
        let this_reg = method.param_reg(0);
        let slice = backward_slice(method, &apk.dex.pools, sink_pc as u32, this_reg);
        assert!(slice.instructions.is_empty());
        assert_eq!(slice.aliases.len(), 1);
    }

    #[test]
    fn query_at_entry_is_empty() {
        let (apk, _) = aliasing_method();
        let class = apk.dex.class_by_name("LAlias;").expect("class");
        let method = &class.methods[0];
        let slice = backward_slice(method, &apk.dex.pools, 0, separ_dex::instr::Reg(0));
        assert!(slice.instructions.is_empty());
    }
}
