//! Extracted app specifications — the output of AME.
//!
//! These are the architectural models the paper renders as per-app Alloy
//! modules (Listing 4): components with their filters, permissions,
//! sensitive data-flow paths, and the Intents they send.

use std::collections::BTreeSet;
use std::time::Duration;

use separ_android::api::IccMethod;
use separ_android::types::{FlowPath, Resource};
use separ_dex::manifest::{ComponentKind, IntentFilterDecl};

/// An Intent entity extracted from code (one per disambiguated value
/// combination, as the paper prescribes).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SentIntentModel {
    /// The ICC API it is sent through.
    pub via: IccMethod,
    /// The action, if statically known.
    pub action: Option<String>,
    /// Categories attached.
    pub categories: BTreeSet<String>,
    /// MIME type, if any.
    pub data_type: Option<String>,
    /// Data scheme, if any.
    pub data_scheme: Option<String>,
    /// Explicit receiver class, if the intent is explicit.
    pub explicit_target: Option<String>,
    /// Keys of attached extras.
    pub extra_keys: BTreeSet<String>,
    /// Sensitive resources flowing into the extras.
    pub extra_taints: BTreeSet<Resource>,
    /// Whether the sender awaits a result (`startActivityForResult`,
    /// `bindService`).
    pub requests_result: bool,
    /// Whether this is a passive (reply) intent from `setResult`.
    pub is_passive: bool,
    /// For passive intents: target components recovered by Algorithm 1.
    pub resolved_targets: BTreeSet<String>,
}

impl SentIntentModel {
    /// Returns `true` if the intent is implicit (no explicit target).
    pub fn is_implicit(&self) -> bool {
        self.explicit_target.is_none()
    }

    /// View of this intent as resolution-ready [`IntentData`].
    ///
    /// [`IntentData`]: separ_android::resolution::IntentData
    pub fn as_intent_data(&self) -> separ_android::resolution::IntentData {
        separ_android::resolution::IntentData {
            action: self.action.clone(),
            categories: self.categories.clone(),
            data_type: self.data_type.clone(),
            data_scheme: self.data_scheme.clone(),
            explicit_target: self.explicit_target.clone(),
            extras: self
                .extra_keys
                .iter()
                .map(|k| (k.clone(), String::new()))
                .collect(),
        }
    }
}

/// The extracted model of one component.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ComponentModel {
    /// Implementing class descriptor.
    pub class: String,
    /// Component kind.
    pub kind: ComponentKind,
    /// Effective export status (explicit flag or filter-implied).
    pub exported: bool,
    /// Statically declared intent filters (dynamic registration is not
    /// modelled — a documented limitation shared with the paper's tool).
    pub filters: Vec<IntentFilterDecl>,
    /// Manifest-enforced access permission.
    pub enforced_permission: Option<String>,
    /// Permissions checked dynamically on some reachable code path.
    pub dynamic_checks: BTreeSet<String>,
    /// Sensitive data-flow paths through this component.
    pub paths: BTreeSet<FlowPath>,
    /// Intents this component sends.
    pub sent_intents: Vec<SentIntentModel>,
    /// Permissions exercised by reachable API calls (transitive tagging).
    pub used_permissions: BTreeSet<String>,
    /// Whether the component registers receivers dynamically (observed so
    /// the limitation is explicit in reports).
    pub registers_dynamically: bool,
}

impl ComponentModel {
    /// Returns `true` if the component's exported surface is guarded by
    /// neither a manifest permission nor a reachable dynamic check of
    /// `permission`.
    pub fn is_unguarded_for(&self, permission: &str) -> bool {
        self.enforced_permission.as_deref() != Some(permission)
            && !self.dynamic_checks.contains(permission)
    }

    /// Paths that start at an ICC source (data arriving via Intent).
    pub fn icc_entry_paths(&self) -> impl Iterator<Item = &FlowPath> + '_ {
        self.paths.iter().filter(|p| p.source == Resource::Icc)
    }

    /// Paths that end at an ICC sink (data leaving via Intent).
    pub fn icc_exit_paths(&self) -> impl Iterator<Item = &FlowPath> + '_ {
        self.paths.iter().filter(|p| p.sink == Resource::Icc)
    }
}

/// Extraction statistics for one app (Figure 5's measurements).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ExtractionStats {
    /// Wall time spent decoding + analyzing.
    pub duration: Duration,
    /// App size metric (instructions + declarations).
    pub app_size: usize,
    /// Instructions abstractly interpreted.
    pub instructions_visited: u64,
    /// Method bodies the verifier quarantined (skipped, never analyzed).
    pub quarantined_methods: usize,
}

/// The extracted model of one app — the unit the ASE composes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AppModel {
    /// Package name.
    pub package: String,
    /// Component models.
    pub components: Vec<ComponentModel>,
    /// Install-time permissions the app holds.
    pub uses_permissions: BTreeSet<String>,
    /// Custom permissions the app defines.
    pub defines_permissions: BTreeSet<String>,
    /// Verification findings from the pre-analysis lint pass.
    pub diagnostics: Vec<crate::diagnostics::Diagnostic>,
    /// Extraction statistics.
    pub stats: ExtractionStats,
}

impl AppModel {
    /// Finds a component by class descriptor.
    pub fn component(&self, class: &str) -> Option<&ComponentModel> {
        self.components.iter().find(|c| c.class == class)
    }

    /// All exported components.
    pub fn exported_components(&self) -> impl Iterator<Item = &ComponentModel> + '_ {
        self.components.iter().filter(|c| c.exported)
    }

    /// Total number of sent-intent entities across components.
    pub fn num_intents(&self) -> usize {
        self.components.iter().map(|c| c.sent_intents.len()).sum()
    }

    /// Total number of declared intent filters across components.
    pub fn num_filters(&self) -> usize {
        self.components.iter().map(|c| c.filters.len()).sum()
    }

    /// Returns `true` if the verifier found Error-severity defects (some
    /// code was quarantined or structurally untrustworthy).
    pub fn has_error_diagnostics(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == crate::diagnostics::Severity::Error)
    }
}

/// Updates passive-intent targets across a set of app models — the paper's
/// Algorithm 1 ("Update Passive Intent Target").
///
/// For each passive intent `p`, find intents `i` that request results and
/// whose (explicit) target matches `p`'s sender component; add `i`'s sender
/// to `p`'s resolved targets.
///
/// The pass is a pure function of the current bundle: resolved targets
/// are recomputed from scratch on every call (extraction always leaves
/// them empty), so re-resolving after an app is updated or removed sheds
/// targets the departed version contributed. Long-lived sessions
/// (`IncrementalSession`, `separ serve`) depend on this idempotence.
pub fn update_passive_intent_targets(apps: &mut [AppModel]) {
    for app in apps.iter_mut() {
        for c in &mut app.components {
            for p in &mut c.sent_intents {
                if p.is_passive {
                    p.resolved_targets.clear();
                }
            }
        }
    }
    // Collect (requester component class, requested target class).
    let mut requesters: Vec<(String, String)> = Vec::new();
    for app in apps.iter() {
        for c in &app.components {
            for i in &c.sent_intents {
                if i.requests_result {
                    if let Some(t) = &i.explicit_target {
                        requesters.push((c.class.clone(), t.clone()));
                    }
                }
            }
        }
    }
    for app in apps.iter_mut() {
        for c in &mut app.components {
            let sender = c.class.clone();
            for p in &mut c.sent_intents {
                if !p.is_passive {
                    continue;
                }
                for (req_sender, req_target) in &requesters {
                    if *req_target == sender {
                        p.resolved_targets.insert(req_sender.clone());
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn intent(passive: bool, requests: bool, target: Option<&str>) -> SentIntentModel {
        SentIntentModel {
            via: if passive {
                IccMethod::SetResult
            } else {
                IccMethod::StartActivityForResult
            },
            action: None,
            categories: BTreeSet::new(),
            data_type: None,
            data_scheme: None,
            explicit_target: target.map(String::from),
            extra_keys: BTreeSet::new(),
            extra_taints: BTreeSet::new(),
            requests_result: requests,
            is_passive: passive,
            resolved_targets: BTreeSet::new(),
        }
    }

    fn component(class: &str, intents: Vec<SentIntentModel>) -> ComponentModel {
        ComponentModel {
            class: class.into(),
            kind: ComponentKind::Activity,
            exported: false,
            filters: vec![],
            enforced_permission: None,
            dynamic_checks: BTreeSet::new(),
            paths: BTreeSet::new(),
            sent_intents: intents,
            used_permissions: BTreeSet::new(),
            registers_dynamically: false,
        }
    }

    fn app(package: &str, components: Vec<ComponentModel>) -> AppModel {
        AppModel {
            package: package.into(),
            components,
            uses_permissions: BTreeSet::new(),
            defines_permissions: BTreeSet::new(),
            diagnostics: Vec::new(),
            stats: ExtractionStats::default(),
        }
    }

    #[test]
    fn algorithm_1_resolves_passive_targets() {
        // A starts B for result; B replies via setResult.
        let a = app(
            "a",
            vec![component("LA;", vec![intent(false, true, Some("LB;"))])],
        );
        let b = app("b", vec![component("LB;", vec![intent(true, false, None)])]);
        let mut apps = vec![a, b];
        update_passive_intent_targets(&mut apps);
        let passive = &apps[1].components[0].sent_intents[0];
        assert!(passive.resolved_targets.contains("LA;"));
    }

    #[test]
    fn algorithm_1_ignores_non_requesters() {
        // A targets B explicitly but does NOT request a result.
        let a = app(
            "a",
            vec![component("LA;", vec![intent(false, false, Some("LB;"))])],
        );
        let b = app("b", vec![component("LB;", vec![intent(true, false, None)])]);
        let mut apps = vec![a, b];
        update_passive_intent_targets(&mut apps);
        assert!(apps[1].components[0].sent_intents[0]
            .resolved_targets
            .is_empty());
    }

    #[test]
    fn unguarded_check_considers_both_layers() {
        let mut c = component("LX;", vec![]);
        assert!(c.is_unguarded_for("android.permission.SEND_SMS"));
        c.dynamic_checks
            .insert("android.permission.SEND_SMS".into());
        assert!(!c.is_unguarded_for("android.permission.SEND_SMS"));
        c.dynamic_checks.clear();
        c.enforced_permission = Some("android.permission.SEND_SMS".into());
        assert!(!c.is_unguarded_for("android.permission.SEND_SMS"));
    }

    #[test]
    fn path_direction_helpers() {
        let mut c = component("LX;", vec![]);
        c.paths.insert(FlowPath::new(Resource::Icc, Resource::Sms));
        c.paths
            .insert(FlowPath::new(Resource::Location, Resource::Icc));
        assert_eq!(c.icc_entry_paths().count(), 1);
        assert_eq!(c.icc_exit_paths().count(), 1);
    }
}
