//! The top-level Android Model Extractor (AME).
//!
//! Consumes APK bytes (or decoded packages), runs the architectural and
//! code analyses, and emits [`AppModel`]s — the per-app formal
//! specifications the analysis-and-synthesis engine composes.

use std::time::Instant;

use separ_android::api::IccMethod;
use separ_dex::codec;
use separ_dex::error::DexError;
use separ_dex::program::Apk;

use crate::absint::AbstractIntent;
use crate::model::{AppModel, ComponentModel, ExtractionStats, SentIntentModel};

/// Extracts the model of an app from its binary package.
///
/// This is the full AME pipeline: decode the container, read the manifest
/// architecture, then analyze each component's bytecode.
///
/// # Errors
///
/// Returns a [`DexError`] if the binary is malformed.
pub fn extract(bytes: &[u8]) -> Result<AppModel, DexError> {
    let apk = codec::decode(bytes)?;
    Ok(extract_apk(&apk))
}

/// Extracts the model of an already-decoded app.
pub fn extract_apk(apk: &Apk) -> AppModel {
    extract_apk_with(apk, crate::absint::AnalysisOptions::default())
}

/// Extracts the model of an app under an explicit tool profile (used by
/// the comparator baselines).
pub fn extract_apk_with(apk: &Apk, options: crate::absint::AnalysisOptions) -> AppModel {
    let mut span = separ_obs::span("ame.extract");
    span.set_arg("app", apk.manifest.package.clone());
    let start = Instant::now();
    // Graceful-degradation pre-pass: verify first, then analyze a
    // sanitized copy with Error-poisoned scopes quarantined, so the
    // abstract interpreter never consumes malformed structure.
    let lint = crate::diagnostics::lint_apk(apk);
    let sanitized = lint.sanitized_apk(apk);
    let analyzed: &Apk = sanitized.as_ref().unwrap_or(apk);
    // Resolve every method-pool entry (API classification, permissions,
    // call targets) once; all component analyses share the result.
    let index = crate::index::ApkIndex::new(analyzed);
    let mut components = Vec::with_capacity(analyzed.manifest.components.len());
    let mut instructions = 0u64;
    let mut summary_hits = 0u64;
    let mut summary_misses = 0u64;
    let mut dynamic_filters: Vec<(String, String)> = Vec::new();
    for decl in &analyzed.manifest.components {
        let facts = {
            let mut cspan = separ_obs::span("ame.summary");
            cspan.set_arg("component", decl.class.clone());
            let facts =
                crate::absint::analyze_component_indexed(analyzed, &index, &decl.class, options);
            cspan.set_arg("hits", facts.summary_hits.to_string());
            cspan.set_arg("misses", facts.summary_misses.to_string());
            facts
        };
        instructions += facts.instructions_visited;
        summary_hits += facts.summary_hits;
        summary_misses += facts.summary_misses;
        dynamic_filters.extend(facts.dynamic_filters.iter().cloned());
        let sent_intents = flatten_intents(&facts.intents);
        components.push(ComponentModel {
            class: decl.class.clone(),
            kind: decl.kind,
            exported: decl.is_effectively_exported(),
            filters: decl.intent_filters.clone(),
            enforced_permission: decl.permission.clone(),
            dynamic_checks: facts.dynamic_checks,
            paths: facts.flows,
            sent_intents,
            used_permissions: facts.used_permissions,
            registers_dynamically: facts.registers_dynamically,
        });
    }
    // Under the dynamic-receiver-modelling profile, attach recovered
    // runtime filters to their receiver components (and consider them
    // exported, as runtime-registered receivers are reachable).
    for (class, action) in dynamic_filters {
        if let Some(c) = components.iter_mut().find(|c| c.class == class) {
            c.filters
                .push(separ_dex::manifest::IntentFilterDecl::for_actions([action]));
            c.exported = true;
        }
    }
    let mut model = AppModel {
        package: apk.manifest.package.clone(),
        components,
        uses_permissions: apk.manifest.uses_permissions.iter().cloned().collect(),
        defines_permissions: apk.manifest.defines_permissions.iter().cloned().collect(),
        diagnostics: lint.diagnostics,
        stats: ExtractionStats::default(),
    };
    // Intra-app passive-intent resolution (Algorithm 1); the bundle-level
    // pass in the ASE re-runs it across apps.
    crate::model::update_passive_intent_targets(std::slice::from_mut(&mut model));
    separ_obs::counter_add("ame.summary.hit", summary_hits);
    separ_obs::counter_add("ame.summary.miss", summary_misses);
    model.stats = ExtractionStats {
        duration: start.elapsed(),
        app_size: apk.size_metric(),
        instructions_visited: instructions,
        quarantined_methods: lint.quarantined_methods,
    };
    model
}

/// Flattens abstract intents into model entities: one entity per
/// disambiguated (action × target × type × scheme) combination, as the
/// paper prescribes for properties resolved to multiple values.
fn flatten_intents(intents: &[AbstractIntent]) -> Vec<SentIntentModel> {
    let mut out = Vec::new();
    for ai in intents {
        if ai.sent_via.is_empty() || ai.is_received {
            continue;
        }
        let actions: Vec<Option<String>> = if ai.actions.is_empty() {
            vec![None]
        } else {
            let mut v: Vec<Option<String>> = ai.actions.iter().cloned().map(Some).collect();
            if ai.actions_unknown {
                v.push(None);
            }
            v
        };
        let targets: Vec<Option<String>> = if ai.targets.is_empty() {
            vec![None]
        } else {
            ai.targets.iter().cloned().map(Some).collect()
        };
        let types: Vec<Option<String>> = if ai.data_types.is_empty() {
            vec![None]
        } else {
            ai.data_types.iter().cloned().map(Some).collect()
        };
        let schemes: Vec<Option<String>> = if ai.data_schemes.is_empty() {
            vec![None]
        } else {
            ai.data_schemes.iter().cloned().map(Some).collect()
        };
        for &via in &ai.sent_via {
            let is_passive = via == IccMethod::SetResult;
            for action in &actions {
                for target in &targets {
                    for ty in &types {
                        for scheme in &schemes {
                            out.push(SentIntentModel {
                                via,
                                action: action.clone(),
                                categories: ai.categories.clone(),
                                data_type: ty.clone(),
                                data_scheme: scheme.clone(),
                                explicit_target: target.clone(),
                                extra_keys: ai.extra_keys.clone(),
                                extra_taints: ai.extra_taints.clone(),
                                requests_result: via.requests_result(),
                                is_passive,
                                resolved_targets: Default::default(),
                            });
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use separ_android::api::class;
    use separ_android::types::{perm, FlowPath, Resource};
    use separ_dex::build::ApkBuilder;
    use separ_dex::manifest::{ComponentDecl, ComponentKind, IntentFilterDecl};

    fn nav_app() -> Apk {
        let mut apk = ApkBuilder::new("com.example.navigator");
        apk.uses_permission(perm::ACCESS_FINE_LOCATION);
        apk.add_component(ComponentDecl::new(
            "Lcom/example/LocationFinder;",
            ComponentKind::Service,
        ));
        let mut decl = ComponentDecl::new("Lcom/example/RouteFinder;", ComponentKind::Service);
        decl.intent_filters
            .push(IntentFilterDecl::for_actions(["showLoc"]));
        apk.add_component(decl);
        {
            let mut cb = apk.class_extends("Lcom/example/LocationFinder;", class::SERVICE);
            let mut m = cb.method("onStartCommand", 3, false, false);
            let loc = m.reg();
            let intent = m.reg();
            let s = m.reg();
            m.invoke_virtual(
                class::LOCATION_MANAGER,
                "getLastKnownLocation",
                &[loc],
                true,
            );
            m.move_result(loc);
            m.new_instance(intent, class::INTENT);
            m.const_string(s, "showLoc");
            m.invoke_virtual(class::INTENT, "setAction", &[intent, s], false);
            m.const_string(s, "locationInfo");
            m.invoke_virtual(class::INTENT, "putExtra", &[intent, s, loc], false);
            m.invoke_virtual(class::CONTEXT, "startService", &[m.this(), intent], false);
            m.ret_void();
            m.finish();
            cb.finish();
        }
        {
            let mut cb = apk.class_extends("Lcom/example/RouteFinder;", class::SERVICE);
            let mut m = cb.method("onStartCommand", 3, false, false);
            m.ret_void();
            m.finish();
            cb.finish();
        }
        apk.finish()
    }

    #[test]
    fn full_extraction_round_trip_through_binary() {
        let apk = nav_app();
        let bytes = codec::encode(&apk);
        let model = extract(&bytes).expect("decodes and extracts");
        assert_eq!(model.package, "com.example.navigator");
        assert_eq!(model.components.len(), 2);
        let lf = model
            .component("Lcom/example/LocationFinder;")
            .expect("component");
        assert!(!lf.exported, "no filters and no flag");
        assert!(lf
            .paths
            .contains(&FlowPath::new(Resource::Location, Resource::Icc)));
        assert_eq!(lf.sent_intents.len(), 1);
        let intent = &lf.sent_intents[0];
        assert_eq!(intent.action.as_deref(), Some("showLoc"));
        assert!(intent.is_implicit());
        assert!(intent.extra_taints.contains(&Resource::Location));
        let rf = model
            .component("Lcom/example/RouteFinder;")
            .expect("component");
        assert!(rf.exported, "filter implies exported");
        assert_eq!(model.num_intents(), 1);
        assert_eq!(model.num_filters(), 1);
        assert!(model.stats.app_size > 0);
        assert!(model.stats.instructions_visited > 0);
    }

    #[test]
    fn multi_value_action_yields_multiple_entities() {
        // A conditional assignment gives the intent two possible actions;
        // the paper requires one entity per value.
        let mut apk = ApkBuilder::new("t");
        apk.add_component(ComponentDecl::new("LMulti;", ComponentKind::Activity));
        let mut cb = apk.class_extends("LMulti;", class::ACTIVITY);
        let mut m = cb.method("onCreate", 1, false, false);
        let i = m.reg();
        let s = m.reg();
        let cond = m.reg();
        let other = m.new_label();
        let send = m.new_label();
        m.new_instance(i, class::INTENT);
        m.invoke_virtual(class::ACTIVITY, "getIntent", &[m.this()], true);
        m.move_result(cond);
        m.if_eqz(cond, other);
        m.const_string(s, "actionA");
        m.goto(send);
        m.bind(other);
        m.const_string(s, "actionB");
        m.bind(send);
        m.invoke_virtual(class::INTENT, "setAction", &[i, s], false);
        m.invoke_virtual(class::CONTEXT, "startActivity", &[m.this(), i], false);
        m.ret_void();
        m.finish();
        cb.finish();
        let apk = apk.finish();
        let model = extract_apk(&apk);
        let c = model.component("LMulti;").expect("component");
        let actions: Vec<_> = c
            .sent_intents
            .iter()
            .filter_map(|i| i.action.as_deref())
            .collect();
        assert_eq!(c.sent_intents.len(), 2, "{:?}", c.sent_intents);
        assert!(actions.contains(&"actionA") && actions.contains(&"actionB"));
    }

    #[test]
    fn extraction_scales_with_app_size() {
        // Sanity check for the Figure-5 harness: a bigger app visits more
        // instructions.
        let small = extract_apk(&nav_app());
        let mut big_builder = ApkBuilder::new("big");
        big_builder.add_component(ComponentDecl::new("LBig;", ComponentKind::Service));
        let mut cb = big_builder.class_extends("LBig;", class::SERVICE);
        let mut m = cb.method("onStartCommand", 3, false, false);
        let v = m.reg();
        for k in 0..200 {
            m.const_int(v, k);
        }
        m.ret_void();
        m.finish();
        cb.finish();
        let big = extract_apk(&big_builder.finish());
        assert!(big.stats.instructions_visited > small.stats.instructions_visited);
    }
}
