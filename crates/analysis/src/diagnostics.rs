//! Verification diagnostics and quarantine — the graceful-degradation
//! pre-pass of the AME.
//!
//! The paper's extractor inherits Dalvik's bytecode-verifier guarantees;
//! here [`lint_apk`] runs the sdex verifier ([`separ_dex::verify`]) plus
//! manifest↔class cross-checks before any abstract interpretation:
//!
//! * every declared component resolves to a class in the dex;
//! * exported components define (or inherit) a lifecycle entry point;
//! * intent filters declare at least one action, and providers declare no
//!   filters at all;
//! * no component class is declared twice.
//!
//! Findings become [`Diagnostic`]s attached to the extracted
//! [`AppModel`](crate::model::AppModel). Error-severity bytecode defects
//! quarantine their scope: [`Lint::sanitized_apk`] produces a copy of the
//! package with poisoned method bodies emptied and structurally broken
//! classes removed, so the abstract interpreter only ever sees well-formed
//! code and malformed input degrades to *less information*, never to
//! garbage facts.

use std::collections::BTreeSet;

use separ_android::api;
use separ_dex::manifest::ComponentKind;
use separ_dex::program::{Apk, Class, Dex};
use separ_dex::verify::{self, DefectScope};

pub use separ_dex::verify::Severity;

/// The diagnostic classes: bytecode defects plus manifest cross-checks.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum DiagnosticKind {
    /// A register index outside the declared frame.
    RegisterBounds,
    /// A register read before any assignment on some path.
    UseBeforeDef,
    /// A `move-result` without a directly preceding value-returning invoke.
    MoveResultPairing,
    /// A branch target outside the method body, or control running off it.
    BranchTarget,
    /// A string/type/field/method id outside its pool.
    PoolIndex,
    /// Instructions unreachable from the method entry.
    UnreachableCode,
    /// A superclass chain that never terminates.
    SuperclassCycle,
    /// Two classes sharing one type descriptor.
    DuplicateClass,
    /// A declared component with no implementing class in the dex.
    UnresolvedComponent,
    /// An exported component without any lifecycle entry point.
    MissingEntryPoint,
    /// An intent filter declaring no actions (matches nothing implicit).
    FilterWithoutAction,
    /// A content provider declaring intent filters.
    ProviderWithFilter,
    /// A component class declared more than once in the manifest.
    DuplicateComponent,
    /// A package that failed to decode at all.
    DecodeFailure,
    /// A component whose capability summary matches no signature
    /// footprint: relevance slicing excludes it from every synthesis
    /// universe.
    ComponentUnreachable,
}

impl DiagnosticKind {
    /// Stable kebab-case tag for display and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            DiagnosticKind::RegisterBounds => "register-bounds",
            DiagnosticKind::UseBeforeDef => "use-before-def",
            DiagnosticKind::MoveResultPairing => "move-result-pairing",
            DiagnosticKind::BranchTarget => "branch-target",
            DiagnosticKind::PoolIndex => "pool-index",
            DiagnosticKind::UnreachableCode => "unreachable-code",
            DiagnosticKind::SuperclassCycle => "superclass-cycle",
            DiagnosticKind::DuplicateClass => "duplicate-class",
            DiagnosticKind::UnresolvedComponent => "unresolved-component",
            DiagnosticKind::MissingEntryPoint => "missing-entry-point",
            DiagnosticKind::FilterWithoutAction => "filter-without-action",
            DiagnosticKind::ProviderWithFilter => "provider-with-filter",
            DiagnosticKind::DuplicateComponent => "duplicate-component",
            DiagnosticKind::DecodeFailure => "decode-failure",
            DiagnosticKind::ComponentUnreachable => "component-unreachable",
        }
    }
}

impl From<verify::DefectKind> for DiagnosticKind {
    fn from(kind: verify::DefectKind) -> DiagnosticKind {
        match kind {
            verify::DefectKind::RegisterBounds => DiagnosticKind::RegisterBounds,
            verify::DefectKind::UseBeforeDef => DiagnosticKind::UseBeforeDef,
            verify::DefectKind::MoveResultPairing => DiagnosticKind::MoveResultPairing,
            verify::DefectKind::BranchTarget => DiagnosticKind::BranchTarget,
            verify::DefectKind::PoolIndex => DiagnosticKind::PoolIndex,
            verify::DefectKind::UnreachableCode => DiagnosticKind::UnreachableCode,
            verify::DefectKind::SuperclassCycle => DiagnosticKind::SuperclassCycle,
            verify::DefectKind::DuplicateClass => DiagnosticKind::DuplicateClass,
        }
    }
}

/// One structured finding, attributed to an app and a location.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// How serious the finding is.
    pub severity: Severity,
    /// Package name (or file path for decode failures).
    pub app: String,
    /// Where in the app: `LClass;->method@pc`, `manifest:LClass;`, or a
    /// file path.
    pub location: String,
    /// The diagnostic class.
    pub kind: DiagnosticKind,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[{}] {} {}: {}",
            self.severity,
            self.kind.as_str(),
            self.app,
            self.location,
            self.message
        )
    }
}

/// A decode failure rendered as a diagnostic, so `separ lint` can report
/// per-file problems without aborting the run.
pub fn decode_failure(path: &str, error: &separ_dex::DexError) -> Diagnostic {
    Diagnostic {
        severity: Severity::Error,
        app: path.to_string(),
        location: "container".to_string(),
        kind: DiagnosticKind::DecodeFailure,
        message: error.to_string(),
    }
}

/// The result of linting one package: diagnostics plus quarantine sets.
#[derive(Clone, Debug, Default)]
pub struct Lint {
    /// All findings, in deterministic order (manifest checks first, then
    /// bytecode defects grouped by class/method/pc).
    pub diagnostics: Vec<Diagnostic>,
    /// How many method bodies Error-severity defects poison (directly or
    /// via their class).
    pub quarantined_methods: usize,
    /// `(class_idx, method_idx)` of methods with Error-severity body
    /// defects.
    method_quarantine: BTreeSet<(usize, usize)>,
    /// Classes whose structure cannot be trusted.
    class_quarantine: BTreeSet<usize>,
}

impl Lint {
    /// Returns `true` if any finding is Error-severity.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Number of Error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Returns `true` if some scope must be quarantined before analysis.
    pub fn needs_quarantine(&self) -> bool {
        !self.method_quarantine.is_empty() || !self.class_quarantine.is_empty()
    }

    /// A copy of the package safe for analysis: quarantined method bodies
    /// are emptied and structurally broken classes removed, so downstream
    /// passes see strictly less information instead of malformed input.
    /// Returns `None` when nothing needs quarantining.
    pub fn sanitized_apk(&self, apk: &Apk) -> Option<Apk> {
        if !self.needs_quarantine() {
            return None;
        }
        let mut apk = apk.clone();
        for &(ci, mi) in &self.method_quarantine {
            if !self.class_quarantine.contains(&ci) {
                apk.dex.classes[ci].methods[mi].code.clear();
            }
        }
        for &ci in self.class_quarantine.iter().rev() {
            apk.dex.classes.remove(ci);
        }
        Some(apk)
    }
}

/// Lints one decoded package: manifest↔class cross-checks plus the sdex
/// bytecode verifier, with Error-severity defects recorded for quarantine.
pub fn lint_apk(apk: &Apk) -> Lint {
    let mut span = separ_obs::span("ame.lint");
    span.set_arg("app", apk.manifest.package.clone());
    let app = apk.manifest.package.clone();
    let mut lint = Lint::default();
    lint_manifest(apk, &app, &mut lint.diagnostics);
    for defect in verify::verify_dex(&apk.dex) {
        if defect.severity() == Severity::Error {
            match defect.scope {
                DefectScope::Class => {
                    lint.class_quarantine.insert(defect.class_idx);
                }
                DefectScope::Method => {
                    if let Some(mi) = defect.method_idx {
                        lint.method_quarantine.insert((defect.class_idx, mi));
                    }
                }
            }
        }
        lint.diagnostics.push(Diagnostic {
            severity: defect.severity(),
            app: app.clone(),
            location: defect.location(),
            kind: defect.kind.into(),
            message: defect.message,
        });
    }
    lint.quarantined_methods = lint
        .class_quarantine
        .iter()
        .map(|&ci| apk.dex.classes[ci].methods.len())
        .sum::<usize>()
        + lint
            .method_quarantine
            .iter()
            .filter(|(ci, _)| !lint.class_quarantine.contains(ci))
            .count();
    lint
}

fn lint_manifest(apk: &Apk, app: &str, out: &mut Vec<Diagnostic>) {
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for decl in &apk.manifest.components {
        let location = format!("manifest:{}", decl.class);
        let warn = |kind: DiagnosticKind, message: String| Diagnostic {
            severity: Severity::Warning,
            app: app.to_string(),
            location: location.clone(),
            kind,
            message,
        };
        if !seen.insert(&decl.class) {
            out.push(warn(
                DiagnosticKind::DuplicateComponent,
                format!("component {} is declared more than once", decl.class),
            ));
        }
        match apk.dex.class_by_name(&decl.class) {
            None => out.push(warn(
                DiagnosticKind::UnresolvedComponent,
                format!(
                    "declared {} {} has no implementing class",
                    decl.kind, decl.class
                ),
            )),
            Some(class) => {
                if decl.is_effectively_exported() && !has_entry_point(&apk.dex, class, decl.kind) {
                    out.push(warn(
                        DiagnosticKind::MissingEntryPoint,
                        format!(
                            "exported {} {} defines no lifecycle entry point ({})",
                            decl.kind,
                            decl.class,
                            api::entry_points(decl.kind).join(", ")
                        ),
                    ));
                }
            }
        }
        for (fi, filter) in decl.intent_filters.iter().enumerate() {
            if filter.actions.is_empty() {
                out.push(warn(
                    DiagnosticKind::FilterWithoutAction,
                    format!("intent filter #{fi} declares no actions and matches nothing"),
                ));
            }
        }
        if decl.kind == ComponentKind::Provider && !decl.intent_filters.is_empty() {
            out.push(warn(
                DiagnosticKind::ProviderWithFilter,
                "content providers may not declare intent filters".to_string(),
            ));
        }
    }
}

/// Info-severity findings for components no signature footprint can ever
/// match: their capability summary ([`crate::slicing`]) sets no bit, so
/// every relevance slice excludes them and no shipped signature can bind
/// them. Deliberately not part of [`lint_apk`] — that pass checks
/// well-formedness of the package, while this one reads the *extracted
/// model*; `separ lint` runs both.
pub fn unreachable_components(app: &crate::model::AppModel) -> Vec<Diagnostic> {
    crate::slicing::summarize_app(app)
        .components
        .iter()
        .filter(|c| !c.caps.any())
        .map(|c| Diagnostic {
            severity: Severity::Info,
            app: app.package.clone(),
            location: format!("manifest:{}", c.class),
            kind: DiagnosticKind::ComponentUnreachable,
            message: format!(
                "component {} matches no signature footprint (no exported ICC \
                 surface, unguarded dangerous permission, tainted send or sink \
                 path): relevance slicing excludes it from every synthesis",
                c.class
            ),
        })
        .collect()
}

/// Whether the class (or a superclass, walked with a cycle bound) defines
/// any lifecycle entry point for the component kind. Only pool-valid method
/// names are consulted, so this is safe on unverified input.
fn has_entry_point(dex: &Dex, class: &Class, kind: ComponentKind) -> bool {
    let entry_points = api::entry_points(kind);
    let mut current = Some(class);
    let mut hops = 0usize;
    while let Some(c) = current {
        if hops > dex.classes.len() {
            return false;
        }
        hops += 1;
        for m in &c.methods {
            if m.name.index() < dex.pools.num_strings()
                && entry_points.contains(&dex.pools.str_at(m.name))
            {
                return true;
            }
        }
        current = c.super_ty.and_then(|t| dex.class(t));
    }
    false
}

/// Renders diagnostics as a JSON array (machine-readable `separ lint
/// --json` output).
pub fn to_json(diagnostics: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {\"severity\": \"");
        out.push_str(d.severity.as_str());
        out.push_str("\", \"app\": \"");
        separ_obs::json::escape_into(&d.app, &mut out);
        out.push_str("\", \"location\": \"");
        separ_obs::json::escape_into(&d.location, &mut out);
        out.push_str("\", \"kind\": \"");
        out.push_str(d.kind.as_str());
        out.push_str("\", \"message\": \"");
        separ_obs::json::escape_into(&d.message, &mut out);
        out.push_str("\"}");
    }
    if !diagnostics.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use separ_dex::build::ApkBuilder;
    use separ_dex::manifest::{ComponentDecl, IntentFilterDecl};

    fn empty_app(package: &str) -> Apk {
        ApkBuilder::new(package).finish()
    }

    #[test]
    fn clean_app_lints_clean() {
        let mut b = ApkBuilder::new("com.clean");
        b.add_component(ComponentDecl::new("LMain;", ComponentKind::Activity));
        let mut cb = b.class("LMain;");
        let mut m = cb.method("onCreate", 1, false, false);
        m.ret_void();
        m.finish();
        cb.finish();
        let lint = lint_apk(&b.finish());
        assert!(lint.diagnostics.is_empty(), "{:?}", lint.diagnostics);
        assert!(!lint.needs_quarantine());
        assert!(lint.sanitized_apk(&empty_app("x")).is_none());
    }

    #[test]
    fn unresolved_component_is_flagged() {
        let mut b = ApkBuilder::new("com.ghost");
        b.add_component(ComponentDecl::new("LGhost;", ComponentKind::Service));
        let lint = lint_apk(&b.finish());
        assert_eq!(lint.diagnostics.len(), 1);
        assert_eq!(
            lint.diagnostics[0].kind,
            DiagnosticKind::UnresolvedComponent
        );
        assert_eq!(lint.diagnostics[0].severity, Severity::Warning);
        assert_eq!(lint.diagnostics[0].location, "manifest:LGhost;");
    }

    #[test]
    fn json_escapes_and_renders() {
        let d = Diagnostic {
            severity: Severity::Error,
            app: "a\"b".into(),
            location: "L;->m@0".into(),
            kind: DiagnosticKind::PoolIndex,
            message: "line\nbreak".into(),
        };
        let json = to_json(&[d]);
        assert!(json.contains("\\\"b"));
        assert!(json.contains("line\\nbreak"));
        assert!(json.contains("\"kind\": \"pool-index\""));
        assert_eq!(to_json(&[]), "[]\n");
    }

    #[test]
    fn unreachable_components_are_info_findings() {
        let mut b = ApkBuilder::new("com.idle");
        b.add_component(ComponentDecl::new("LMain;", ComponentKind::Activity));
        let mut cb = b.class("LMain;");
        let mut m = cb.method("onCreate", 1, false, false);
        m.ret_void();
        m.finish();
        cb.finish();
        let model = crate::extractor::extract_apk(&b.finish());
        let found = unreachable_components(&model);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].kind, DiagnosticKind::ComponentUnreachable);
        assert_eq!(found[0].severity, Severity::Info);
        assert_eq!(found[0].location, "manifest:LMain;");
    }

    #[test]
    fn provider_and_filter_sanity() {
        let mut b = ApkBuilder::new("com.filters");
        let mut prov = ComponentDecl::new("LProv;", ComponentKind::Provider);
        prov.intent_filters
            .push(IntentFilterDecl::for_actions(["a"]));
        b.add_component(prov);
        let mut act = ComponentDecl::new("LAct;", ComponentKind::Activity);
        act.intent_filters.push(IntentFilterDecl::default());
        b.add_component(act);
        let lint = lint_apk(&b.finish());
        let kinds: Vec<_> = lint.diagnostics.iter().map(|d| d.kind).collect();
        assert!(kinds.contains(&DiagnosticKind::ProviderWithFilter));
        assert!(kinds.contains(&DiagnosticKind::FilterWithoutAction));
    }
}
