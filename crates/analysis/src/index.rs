//! Per-app precomputed invocation index.
//!
//! The seed interpreter re-resolved every `invoke` from strings on every
//! abstract visit: pool lookups, API classification, permission mapping
//! and superclass-chain method resolution, all per call per context. All
//! of those are pure functions of the (immutable) constant pools, so this
//! module computes them once per app, indexed densely by [`MethodId`] —
//! an `invoke` during interpretation becomes one array load.

use std::collections::HashMap;

use separ_android::api::{self, ApiKind};
use separ_dex::program::Apk;
use separ_dex::refs::{MethodId, TypeId};

use crate::callgraph::MethodNode;

/// Everything the interpreter needs to know about one method-pool entry.
#[derive(Clone, Copy, Debug)]
pub(crate) struct InvokeInfo {
    /// API classification of the callee.
    pub kind: ApiKind,
    /// Permission exercised by calling it, if any.
    pub permission: Option<&'static str>,
    /// For program-defined callees: the resolved (class, method) target,
    /// following the same first-match superclass walk as
    /// `Dex::resolve_method`.
    pub target: Option<MethodNode>,
    /// Whether this is `getIntent` (returns the received intent itself).
    pub is_get_intent: bool,
}

/// Immutable per-app lookup tables shared by every component analysis.
pub(crate) struct ApkIndex {
    /// Invocation facts, indexed by `MethodId`.
    pub invoke: Vec<InvokeInfo>,
    /// The `android.content.Intent` type id, if interned.
    pub intent_type: Option<TypeId>,
    /// First class-table position per type id.
    pub class_of_type: HashMap<TypeId, usize>,
}

impl ApkIndex {
    /// Builds the index for one app.
    pub fn new(apk: &Apk) -> ApkIndex {
        let dex = &apk.dex;
        let pools = &dex.pools;
        let mut class_of_type: HashMap<TypeId, usize> = HashMap::new();
        for (i, c) in dex.classes.iter().enumerate() {
            // First occurrence wins, matching `Dex::class`'s linear find.
            class_of_type.entry(c.ty).or_insert(i);
        }
        let mut invoke = Vec::with_capacity(pools.num_methods());
        for i in 0..pools.num_methods() {
            let mref = pools.method_at(MethodId::from_index(i));
            let class = pools.type_at(mref.class);
            let name = pools.str_at(mref.name);
            let kind = api::classify(class, name);
            let target = if matches!(kind, ApiKind::Neutral) {
                resolve_target(apk, &class_of_type, mref.class, mref.name)
            } else {
                None
            };
            invoke.push(InvokeInfo {
                kind,
                permission: api::permission_for(class, name),
                target,
                is_get_intent: matches!(kind, ApiKind::IntentRead) && name == "getIntent",
            });
        }
        ApkIndex {
            invoke,
            intent_type: pools.find_type(api::class::INTENT),
            class_of_type,
        }
    }
}

/// Walks the superclass chain from `ty` looking for a method named
/// `name`, mirroring `Dex::resolve_method` (first class with the type,
/// first method with the name, hop-bounded against hostile cycles).
fn resolve_target(
    apk: &Apk,
    class_of_type: &HashMap<TypeId, usize>,
    ty: TypeId,
    name: separ_dex::refs::StrId,
) -> Option<MethodNode> {
    let dex = &apk.dex;
    let mut current = Some(ty);
    let mut hops = 0;
    while let Some(t) = current {
        if hops > dex.classes.len() {
            return None;
        }
        hops += 1;
        let &ci = class_of_type.get(&t)?;
        let class = &dex.classes[ci];
        if let Some(mi) = class.methods.iter().position(|m| m.name == name) {
            return Some((ci, mi));
        }
        current = class.super_ty;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use separ_dex::build::ApkBuilder;

    #[test]
    fn index_resolves_inherited_methods_like_the_dex() {
        let mut apk = ApkBuilder::new("t");
        let mut base = apk.class("LBase;");
        let mut m = base.method("helper", 1, false, false);
        m.ret_void();
        m.finish();
        base.finish();
        let mut derived = apk.class_extends("LDerived;", "LBase;");
        let mut m = derived.method("run", 1, false, false);
        m.invoke_virtual("LDerived;", "helper", &[m.this()], false);
        m.ret_void();
        m.finish();
        derived.finish();
        let apk = apk.finish();
        let index = ApkIndex::new(&apk);
        // Every resolved target must agree with Dex::resolve_method.
        for i in 0..apk.dex.pools.num_methods() {
            let mref = apk.dex.pools.method_at(MethodId::from_index(i));
            let name = apk.dex.pools.str_at(mref.name).to_string();
            let expected = apk
                .dex
                .resolve_method(mref.class, &name)
                .map(|(def_ty, _)| {
                    let ci = apk
                        .dex
                        .classes
                        .iter()
                        .position(|c| c.ty == def_ty)
                        .expect("class");
                    let mi = apk.dex.classes[ci]
                        .methods
                        .iter()
                        .position(|m| apk.dex.pools.str_at(m.name) == name)
                        .expect("method");
                    (ci, mi)
                });
            let info = &index.invoke[i];
            if matches!(info.kind, ApiKind::Neutral) {
                assert_eq!(info.target, expected, "method {name}");
            }
        }
    }
}
