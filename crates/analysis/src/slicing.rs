//! Signature-guided relevance slicing — a sound static pre-analysis that
//! shrinks the relational universe before synthesis.
//!
//! Every vulnerability signature constrains its witnesses with facts that
//! can only ever be satisfied by apps exhibiting specific *capabilities*:
//! an intent-hijacking victim must send an implicit, source-tainted
//! intent; a launchable victim must export an Activity/Service with an
//! ICC entry path; and so on. At market scale almost no app exhibits any
//! given capability, yet the encoder translates every signature against
//! the whole bundle. This module computes, once per bundle, a per-app /
//! per-component [`AppSummary`] of those capabilities (exported surface,
//! intent-filter resolution via [`separ_android::resolution`], permission
//! requirements and grants, taint-source reachability into ICC sinks from
//! the extracted flow paths) and lets each signature declare — through a
//! `SignatureFootprint` in `separ-core` — the [`SliceDemand`]s its
//! relational atoms range over. Intersecting the two yields the *slice*:
//! the subset of apps that can possibly participate in a minimal model of
//! that signature.
//!
//! # Soundness
//!
//! Every demand predicate is a per-app (or existential cross-app)
//! **over-approximation** of the corresponding signature facts: it
//! ignores component kinds, export restrictions and multiplicities that
//! the facts additionally impose, so it can only keep *more* apps than
//! strictly necessary. Two structural properties make dropping the rest
//! sound:
//!
//! 1. The bundle encoding asserts **no facts** — all constraints come
//!    from the signature. Relation rows of dropped apps are therefore
//!    unconstrained, and rows the signature's facts never force true are
//!    false in every *minimal* model. Removing those apps (and their
//!    atoms/rows) from the universe leaves the minimal-model set of the
//!    signature's facts unchanged.
//! 2. Intent resolution ([`crate::model::update_passive_intent_targets`]
//!    and the encoder's `canReceive` construction) is *pair-local*: a
//!    `(intent, component)` row exists based only on the sending and
//!    receiving app, never on third apps. So re-encoding an app subset
//!    preserves exactly the rows among kept apps.
//!
//! Monotonicity follows from the same shape: demand predicates are
//! existential over the bundle, so installing an app can only grow every
//! slice, never evict a member — `tests/slicing_equivalence.rs` asserts
//! both properties, plus byte-identical exploits and policies against
//! unsliced synthesis, over randomized market bundles.

use std::collections::BTreeSet;

use separ_android::resolution::{any_filter_matches, IntentData};
use separ_android::types::{is_protected_broadcast, perm, Resource};
use separ_dex::manifest::{ComponentKind, IntentFilterDecl};

use crate::model::{AppModel, ComponentModel};

/// A capability class a signature's relational atoms can range over.
///
/// A signature footprint is a set of demands; an app joins a signature's
/// slice when it satisfies at least one of the footprint's demands (see
/// [`select_apps`]). `Everything` is the conservative default: the
/// signature ranges over the whole bundle and slicing is a no-op for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SliceDemand {
    /// The signature may range over any app — disables slicing for it.
    Everything,
    /// Apps sending an implicit, non-passive, broadcast-deliverable
    /// intent carrying a non-ICC source taint (intent-hijacking victims).
    HijackableTaintedSender,
    /// Apps exporting an Activity or Service with an ICC entry flow path
    /// (component-launch victims).
    LaunchableIccEntry,
    /// Apps exporting a component that exercises a granted dangerous
    /// permission without enforcing it (privilege-escalation victims).
    EscalationSurface,
    /// Apps on either end of a potential cross-app leak: senders of
    /// source-tainted intents that resolve to some ICC-entry sink
    /// component, and the apps owning those sink components.
    LeakChannel,
    /// Apps declaring a broadcast receiver with a protected-action filter
    /// and an ICC entry path (broadcast-injection victims).
    InjectableProtectedReceiver,
}

impl SliceDemand {
    /// The concrete (non-`Everything`) demands, in declaration order.
    pub const CONCRETE: &'static [SliceDemand] = &[
        SliceDemand::HijackableTaintedSender,
        SliceDemand::LaunchableIccEntry,
        SliceDemand::EscalationSurface,
        SliceDemand::LeakChannel,
        SliceDemand::InjectableProtectedReceiver,
    ];

    /// The demand's stable textual name (usable as a spec-file footprint
    /// annotation; underscores, so it lexes as one identifier).
    pub fn name(&self) -> &'static str {
        match self {
            SliceDemand::Everything => "everything",
            SliceDemand::HijackableTaintedSender => "hijackable_sender",
            SliceDemand::LaunchableIccEntry => "launchable_icc_entry",
            SliceDemand::EscalationSurface => "escalation_surface",
            SliceDemand::LeakChannel => "leak_channel",
            SliceDemand::InjectableProtectedReceiver => "injectable_receiver",
        }
    }

    /// Parses a demand name (the inverse of [`SliceDemand::name`]).
    pub fn from_name(name: &str) -> Option<SliceDemand> {
        match name {
            "everything" => Some(SliceDemand::Everything),
            "hijackable_sender" => Some(SliceDemand::HijackableTaintedSender),
            "launchable_icc_entry" => Some(SliceDemand::LaunchableIccEntry),
            "escalation_surface" => Some(SliceDemand::EscalationSurface),
            "leak_channel" => Some(SliceDemand::LeakChannel),
            "injectable_receiver" => Some(SliceDemand::InjectableProtectedReceiver),
            _ => None,
        }
    }

    /// Whether a component with capabilities `caps` can satisfy this
    /// demand's component-level facts. Used both to tighten the malicious
    /// intent's receiver rows and to diagnose dead analysis surface.
    pub fn component_matches(&self, caps: &ComponentCaps) -> bool {
        match self {
            SliceDemand::Everything => true,
            SliceDemand::HijackableTaintedSender => caps.hijackable_tainted_sender,
            SliceDemand::LaunchableIccEntry => caps.launchable_icc_entry,
            SliceDemand::EscalationSurface => caps.escalation_surface,
            SliceDemand::LeakChannel => caps.leak_sink || caps.tainted_sender,
            SliceDemand::InjectableProtectedReceiver => caps.injectable_receiver,
        }
    }
}

/// Per-component capability bits, each an over-approximation of one
/// demand's component-level facts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ComponentCaps {
    /// Sends an implicit, non-passive, hijackable-delivery intent with a
    /// non-ICC source taint in its extras.
    pub hijackable_tainted_sender: bool,
    /// Sends *any* intent (any delivery, passive included) carrying a
    /// non-ICC source taint — the sender end of a potential leak.
    pub tainted_sender: bool,
    /// Exported Activity/Service with an ICC entry flow path.
    pub launchable_icc_entry: bool,
    /// Exported, exercises a granted dangerous permission unguarded.
    pub escalation_surface: bool,
    /// Has an `Icc -> real sink` flow path — the receiving end of a
    /// potential leak (and the payload of launch/injection scenarios).
    pub leak_sink: bool,
    /// Broadcast receiver filtering a protected system action, with an
    /// ICC entry path.
    pub injectable_receiver: bool,
}

impl ComponentCaps {
    /// Whether any capability bit is set — components where this is
    /// `false` can never be matched by any concrete signature footprint.
    pub fn any(&self) -> bool {
        self.hijackable_tainted_sender
            || self.tainted_sender
            || self.launchable_icc_entry
            || self.escalation_surface
            || self.leak_sink
            || self.injectable_receiver
    }
}

/// A source-tainted intent send, summarized for cross-app leak matching.
#[derive(Debug, Clone)]
pub struct TaintedSend {
    /// Passive sends resolve through the cross-app Algorithm 1 fixpoint,
    /// so the summary over-approximates them as reaching any sink.
    pub passive: bool,
    /// The intent's resolution-relevant fields (action, categories, data,
    /// explicit target).
    pub data: IntentData,
}

/// One component's capability summary.
#[derive(Debug, Clone)]
pub struct ComponentSummary {
    /// The component's class descriptor.
    pub class: String,
    /// Capability bits.
    pub caps: ComponentCaps,
    /// Source-tainted sends originating here (leak sender side).
    pub tainted_sends: Vec<TaintedSend>,
    /// The component's static intent filters (leak receiver side).
    pub filters: Vec<IntentFilterDecl>,
}

/// One app's capability summary.
///
/// Summaries are deliberately computed from the app model *alone* — they
/// never read `resolved_targets` or any other cross-app state — so an
/// incremental session can re-summarize exactly the apps a delta touched
/// and keep every other summary verbatim.
#[derive(Debug, Clone)]
pub struct AppSummary {
    /// The app's package name.
    pub package: String,
    /// Per-component summaries, in model order.
    pub components: Vec<ComponentSummary>,
    /// The app contributes at least one action atom to the encoding
    /// (a sent intent's action or a filter action).
    pub has_action: bool,
    /// The app sends a hijackable tainted intent *without* an action
    /// (such an exploit still needs some action atom for the malicious
    /// filter to declare — see the donor rule in [`select_apps`]).
    pub actionless_hijackable_send: bool,
}

fn tainted(extra_taints: &BTreeSet<Resource>) -> bool {
    extra_taints
        .iter()
        .any(|r| r.is_source() && *r != Resource::Icc)
}

/// The delivery methods the `hijackable` encoding relation admits.
fn hijackable_via(via: separ_android::api::IccMethod) -> bool {
    use separ_android::api::IccMethod;
    matches!(
        via,
        IccMethod::StartActivity
            | IccMethod::StartActivityForResult
            | IccMethod::StartService
            | IccMethod::SendBroadcast
    )
}

fn summarize_component(app: &AppModel, c: &ComponentModel) -> ComponentSummary {
    let mut caps = ComponentCaps::default();
    let mut tainted_sends = Vec::new();
    for i in &c.sent_intents {
        if !tainted(&i.extra_taints) {
            continue;
        }
        caps.tainted_sender = true;
        tainted_sends.push(TaintedSend {
            passive: i.is_passive,
            data: i.as_intent_data(),
        });
        if i.is_implicit() && !i.is_passive && hijackable_via(i.via) {
            caps.hijackable_tainted_sender = true;
        }
    }
    caps.launchable_icc_entry = c.exported
        && matches!(c.kind, ComponentKind::Activity | ComponentKind::Service)
        && c.icc_entry_paths().next().is_some();
    caps.escalation_surface = c.exported
        && c.used_permissions.iter().any(|p| {
            perm::is_dangerous(p) && c.is_unguarded_for(p) && app.uses_permissions.contains(p)
        });
    caps.leak_sink = c
        .icc_entry_paths()
        .any(|p| p.sink.is_sink() && p.sink != Resource::Icc);
    caps.injectable_receiver = c.kind == ComponentKind::Receiver
        && c.filters
            .iter()
            .flat_map(|f| f.actions.iter())
            .any(|a| is_protected_broadcast(a))
        && c.icc_entry_paths().next().is_some();
    ComponentSummary {
        class: c.class.clone(),
        caps,
        tainted_sends,
        filters: c.filters.clone(),
    }
}

/// Summarizes one app's capabilities (app-local; see [`AppSummary`]).
pub fn summarize_app(app: &AppModel) -> AppSummary {
    let components: Vec<ComponentSummary> = app
        .components
        .iter()
        .map(|c| summarize_component(app, c))
        .collect();
    let has_action = app.components.iter().any(|c| {
        c.filters.iter().any(|f| !f.actions.is_empty())
            || c.sent_intents.iter().any(|i| i.action.is_some())
    });
    let actionless_hijackable_send = app.components.iter().any(|c| {
        c.sent_intents.iter().any(|i| {
            i.action.is_none()
                && i.is_implicit()
                && !i.is_passive
                && hijackable_via(i.via)
                && tainted(&i.extra_taints)
        })
    });
    AppSummary {
        package: app.package.clone(),
        components,
        has_action,
        actionless_hijackable_send,
    }
}

/// Summarizes a whole bundle, in bundle order.
pub fn summarize_bundle(apps: &[AppModel]) -> Vec<AppSummary> {
    apps.iter().map(summarize_app).collect()
}

fn app_has_cap(s: &AppSummary, f: impl Fn(&ComponentCaps) -> bool) -> bool {
    s.components.iter().any(|c| f(&c.caps))
}

/// Cross-app leak matching: keep every sender of a tainted intent that
/// can resolve to some ICC-entry sink component, and every app owning a
/// matched sink. Matching over-approximates the encoder's `canReceive`
/// construction (kind, export and same-app restrictions are ignored);
/// passive sends match every sink, over-approximating the Algorithm 1
/// fixpoint without reading cross-app state.
fn select_leak_channel(summaries: &[AppSummary], kept: &mut BTreeSet<usize>) {
    let sinks: Vec<(usize, &ComponentSummary)> = summaries
        .iter()
        .enumerate()
        .flat_map(|(ai, s)| {
            s.components
                .iter()
                .filter(|c| c.caps.leak_sink)
                .map(move |c| (ai, c))
        })
        .collect();
    if sinks.is_empty() {
        return;
    }
    for (ai, s) in summaries.iter().enumerate() {
        for comp in &s.components {
            for send in &comp.tainted_sends {
                if send.passive {
                    kept.insert(ai);
                    kept.extend(sinks.iter().map(|&(si, _)| si));
                    continue;
                }
                for &(si, sink) in &sinks {
                    let reaches = match &send.data.explicit_target {
                        Some(target) => *target == sink.class,
                        None => any_filter_matches(&send.data, &sink.filters),
                    };
                    if reaches {
                        kept.insert(ai);
                        kept.insert(si);
                    }
                }
            }
        }
    }
}

/// Selects the apps a footprint with the given demands ranges over.
///
/// Returns the (sorted, deduplicated) indices into `summaries`. The
/// result is monotone in the bundle: appending an app never removes an
/// existing index. The *donor rule* handles the one existence dependency
/// a demand predicate cannot see app-locally: an actionless hijackable
/// send is only exploitable if the universe contains at least one action
/// atom for the malicious filter to declare, so the lowest-indexed app
/// with any action is pulled into the slice alongside such senders.
pub fn select_apps(demands: &BTreeSet<SliceDemand>, summaries: &[AppSummary]) -> BTreeSet<usize> {
    if demands.contains(&SliceDemand::Everything) {
        return (0..summaries.len()).collect();
    }
    let mut kept = BTreeSet::new();
    for demand in demands {
        match demand {
            SliceDemand::Everything => unreachable!("handled above"),
            SliceDemand::HijackableTaintedSender => {
                for (i, s) in summaries.iter().enumerate() {
                    if app_has_cap(s, |c| c.hijackable_tainted_sender) {
                        kept.insert(i);
                    }
                }
                if summaries
                    .iter()
                    .enumerate()
                    .any(|(i, s)| kept.contains(&i) && s.actionless_hijackable_send)
                {
                    if let Some(donor) = summaries.iter().position(|s| s.has_action) {
                        kept.insert(donor);
                    }
                }
            }
            SliceDemand::LaunchableIccEntry => {
                for (i, s) in summaries.iter().enumerate() {
                    if app_has_cap(s, |c| c.launchable_icc_entry) {
                        kept.insert(i);
                    }
                }
            }
            SliceDemand::EscalationSurface => {
                for (i, s) in summaries.iter().enumerate() {
                    if app_has_cap(s, |c| c.escalation_surface) {
                        kept.insert(i);
                    }
                }
            }
            SliceDemand::LeakChannel => select_leak_channel(summaries, &mut kept),
            SliceDemand::InjectableProtectedReceiver => {
                for (i, s) in summaries.iter().enumerate() {
                    if app_has_cap(s, |c| c.injectable_receiver) {
                        kept.insert(i);
                    }
                }
            }
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AppModel, ComponentModel, SentIntentModel};
    use separ_android::api::IccMethod;
    use separ_android::types::{action, FlowPath};

    fn comp(class: &str, kind: ComponentKind) -> ComponentModel {
        ComponentModel {
            class: class.into(),
            kind,
            exported: false,
            filters: vec![],
            enforced_permission: None,
            dynamic_checks: BTreeSet::new(),
            paths: BTreeSet::new(),
            sent_intents: vec![],
            used_permissions: BTreeSet::new(),
            registers_dynamically: false,
        }
    }

    fn sent(action: Option<&str>, via: IccMethod, taints: &[Resource]) -> SentIntentModel {
        SentIntentModel {
            via,
            action: action.map(String::from),
            categories: BTreeSet::new(),
            data_type: None,
            data_scheme: None,
            explicit_target: None,
            extra_keys: BTreeSet::new(),
            extra_taints: taints.iter().copied().collect(),
            requests_result: via.requests_result(),
            is_passive: via == IccMethod::SetResult,
            resolved_targets: BTreeSet::new(),
        }
    }

    fn app(package: &str, components: Vec<ComponentModel>) -> AppModel {
        AppModel {
            package: package.into(),
            components,
            uses_permissions: BTreeSet::new(),
            defines_permissions: BTreeSet::new(),
            diagnostics: Vec::new(),
            stats: crate::model::ExtractionStats::default(),
        }
    }

    fn nav() -> AppModel {
        // Motivating-example navigator: tainted hijackable sender.
        let mut lf = comp("LLocationFinder;", ComponentKind::Service);
        lf.paths
            .insert(FlowPath::new(Resource::Location, Resource::Icc));
        lf.sent_intents.push(sent(
            Some("showLoc"),
            IccMethod::StartService,
            &[Resource::Location],
        ));
        app("com.nav", vec![lf])
    }

    fn messenger() -> AppModel {
        // Motivating-example messenger: escalation surface + leak sink.
        let mut ms = comp("LMessageSender;", ComponentKind::Service);
        ms.exported = true;
        ms.paths.insert(FlowPath::new(Resource::Icc, Resource::Sms));
        ms.used_permissions.insert(perm::SEND_SMS.into());
        let mut a = app("com.messenger", vec![ms]);
        a.uses_permissions.insert(perm::SEND_SMS.into());
        a
    }

    fn inert() -> AppModel {
        // No capability at all: private Activity, no paths, no sends.
        app("com.inert", vec![comp("LMain;", ComponentKind::Activity)])
    }

    fn select(demand: SliceDemand, apps: &[AppModel]) -> BTreeSet<usize> {
        select_apps(&BTreeSet::from([demand]), &summarize_bundle(apps))
    }

    #[test]
    fn demand_names_round_trip() {
        for d in SliceDemand::CONCRETE
            .iter()
            .chain([SliceDemand::Everything].iter())
        {
            assert_eq!(SliceDemand::from_name(d.name()), Some(*d), "{d:?}");
        }
        assert_eq!(SliceDemand::from_name("hijackable-sender"), None);
    }

    #[test]
    fn capability_bits_mirror_the_signature_facts() {
        let apps = vec![nav(), messenger(), inert()];
        let summaries = summarize_bundle(&apps);
        let nav_caps = &summaries[0].components[0].caps;
        assert!(nav_caps.hijackable_tainted_sender && nav_caps.tainted_sender);
        assert!(!nav_caps.leak_sink && !nav_caps.escalation_surface);
        let ms_caps = &summaries[1].components[0].caps;
        assert!(ms_caps.escalation_surface && ms_caps.leak_sink && ms_caps.launchable_icc_entry);
        assert!(!ms_caps.tainted_sender);
        assert!(!summaries[2].components[0].caps.any());
    }

    #[test]
    fn slices_select_only_capable_apps() {
        let apps = vec![nav(), messenger(), inert()];
        assert_eq!(
            select(SliceDemand::HijackableTaintedSender, &apps),
            BTreeSet::from([0])
        );
        assert_eq!(
            select(SliceDemand::LaunchableIccEntry, &apps),
            BTreeSet::from([1])
        );
        assert_eq!(
            select(SliceDemand::EscalationSurface, &apps),
            BTreeSet::from([1])
        );
        assert_eq!(
            select(SliceDemand::InjectableProtectedReceiver, &apps),
            BTreeSet::new()
        );
        assert_eq!(
            select(SliceDemand::Everything, &apps),
            BTreeSet::from([0, 1, 2])
        );
    }

    #[test]
    fn leak_channel_keeps_matched_sender_and_sink_pairs() {
        // nav's tainted send is implicit with action "showLoc"; the
        // messenger sink declares no filters, so nothing reaches it and
        // the slice is empty.
        let apps = vec![nav(), messenger(), inert()];
        assert_eq!(select(SliceDemand::LeakChannel, &apps), BTreeSet::new());
        // An explicitly-targeted tainted send reaches the sink by class.
        let mut collector = comp("LCollector;", ComponentKind::Activity);
        let mut send = sent(None, IccMethod::StartService, &[Resource::DeviceId]);
        send.explicit_target = Some("LMessageSender;".to_string());
        collector.sent_intents.push(send);
        let apps = vec![nav(), messenger(), app("com.collect", vec![collector])];
        assert_eq!(
            select(SliceDemand::LeakChannel, &apps),
            BTreeSet::from([1, 2])
        );
        // A passive tainted send over-approximates to every sink app.
        let mut passive_comp = comp("LPassive;", ComponentKind::Activity);
        passive_comp
            .sent_intents
            .push(sent(None, IccMethod::SetResult, &[Resource::Contacts]));
        let apps = vec![messenger(), app("com.passive", vec![passive_comp])];
        assert_eq!(
            select(SliceDemand::LeakChannel, &apps),
            BTreeSet::from([0, 1])
        );
    }

    #[test]
    fn actionless_hijackable_sends_pull_in_an_action_donor() {
        // The sender's hijackable intent has no action; the only action
        // atom lives in an unrelated app's filter. The donor rule must
        // keep that app so `some MalFilter.malFilterActions` stays
        // satisfiable in the sliced universe.
        let mut sender_comp = comp("LBeacon;", ComponentKind::Service);
        sender_comp
            .sent_intents
            .push(sent(None, IccMethod::SendBroadcast, &[Resource::Location]));
        let sender = app("com.beacon", vec![sender_comp]);
        let mut filterer_comp = comp("LListener;", ComponentKind::Receiver);
        filterer_comp
            .filters
            .push(IntentFilterDecl::for_actions([action::BOOT_COMPLETED]));
        let filterer = app("com.listener", vec![filterer_comp]);
        let apps = vec![sender, filterer, inert()];
        assert_eq!(
            select(SliceDemand::HijackableTaintedSender, &apps),
            BTreeSet::from([0, 1])
        );
        // With an action on the intent itself, no donor is needed.
        let apps = vec![nav(), inert()];
        assert_eq!(
            select(SliceDemand::HijackableTaintedSender, &apps),
            BTreeSet::from([0])
        );
    }

    #[test]
    fn slices_are_monotone_under_app_addition() {
        let pool = [nav(), messenger(), inert()];
        for demand in SliceDemand::CONCRETE {
            let mut apps: Vec<AppModel> = Vec::new();
            let mut prev: BTreeSet<usize> = BTreeSet::new();
            for a in &pool {
                apps.push(a.clone());
                let now = select(*demand, &apps);
                assert!(
                    prev.is_subset(&now),
                    "{demand:?}: adding {} evicted {:?}",
                    a.package,
                    prev.difference(&now).collect::<Vec<_>>()
                );
                prev = now;
            }
        }
    }
}
