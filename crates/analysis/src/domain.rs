//! Sparse abstract-value domains for the interpreter.
//!
//! The seed analyzer tracked constants and taints in `BTreeSet<String>` /
//! `BTreeSet<Resource>`, so every join allocated and every memo-key hash
//! walked heap strings. This module replaces those with interned,
//! integer-backed representations:
//!
//! * strings are the dex **string-pool ids** (`StrId` indices) — the pool
//!   is the arena, and every constant the analysis can observe is already
//!   interned there;
//! * taints are a [`ResourceSet`] — one bit per [`Resource`] variant, so
//!   joins, widening and membership are single integer ops;
//! * small ordered sets ([`SmallSet`]) are sorted vectors, cheap to
//!   clone, hash and merge at the cardinalities the `SET_CAP` widening
//!   admits (≤ 8 elements).
//!
//! The public model types ([`crate::model`]) stay string-based; ids are
//! resolved back through the pool once per component when the engine's
//! internal state is converted to [`crate::absint::ComponentFacts`].

use separ_android::types::Resource;

/// Cap on tracked constants per register before widening to "unknown".
pub(crate) const SET_CAP: usize = 8;

/// A sorted-vector set: ordered, deduplicated, optimized for the tiny
/// cardinalities the widening cap admits.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub(crate) struct SmallSet<T>(Vec<T>);

impl<T: Ord + Copy> SmallSet<T> {
    /// Inserts a value; returns `true` if it was new.
    pub fn insert(&mut self, v: T) -> bool {
        match self.0.binary_search(&v) {
            Ok(_) => false,
            Err(i) => {
                self.0.insert(i, v);
                true
            }
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        self.0.iter().copied()
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.0.clear();
    }

    /// Merges `other` in; returns `true` if anything was added.
    pub fn merge(&mut self, other: &SmallSet<T>) -> bool {
        let mut changed = false;
        for v in other.iter() {
            changed |= self.insert(v);
        }
        changed
    }
}

/// A set of [`Resource`]s as a bitmask (19 variants fit in a `u32`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub(crate) struct ResourceSet(u32);

impl ResourceSet {
    fn bit(r: Resource) -> u32 {
        1u32 << (r as u32)
    }

    /// The mask of every source resource (the taint-widening fixpoint).
    pub fn all_sources() -> ResourceSet {
        let mut mask = 0;
        for &r in Resource::ALL.iter().filter(|r| r.is_source()) {
            mask |= ResourceSet::bit(r);
        }
        ResourceSet(mask)
    }

    /// Inserts a resource; returns `true` if it was new.
    pub fn insert(&mut self, r: Resource) -> bool {
        let before = self.0;
        self.0 |= ResourceSet::bit(r);
        self.0 != before
    }

    /// Membership test.
    pub fn contains(self, r: Resource) -> bool {
        self.0 & ResourceSet::bit(r) != 0
    }

    /// Number of resources in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Unions `other` in; returns `true` if anything was added.
    pub fn union(&mut self, other: ResourceSet) -> bool {
        let before = self.0;
        self.0 |= other.0;
        self.0 != before
    }

    /// Iterates members in declaration order.
    pub fn iter(self) -> impl Iterator<Item = Resource> {
        Resource::ALL
            .iter()
            .copied()
            .filter(move |&r| self.contains(r))
    }

    /// The members as an ordered standard set (boundary conversion).
    pub fn to_btree(self) -> std::collections::BTreeSet<Resource> {
        self.iter().collect()
    }
}

/// An abstract value: interned constant sets, a taint bitmask, abstract
/// intent references, plus an "other values possible" flag.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub(crate) struct Val {
    /// Possible constant strings (string-pool indices).
    pub strings: SmallSet<u32>,
    /// Possible constant integers.
    pub ints: SmallSet<i64>,
    /// Sensitive resources that may have flowed into this value.
    pub taints: ResourceSet,
    /// Abstract intent objects this value may reference (table indices).
    pub intents: SmallSet<u32>,
    /// Whether values outside the tracked sets are possible.
    pub unknown: bool,
}

impl Val {
    /// The fully-unknown value.
    pub fn top() -> Val {
        Val {
            unknown: true,
            ..Val::default()
        }
    }

    /// A known constant string (by pool id).
    pub fn of_string(id: u32) -> Val {
        let mut v = Val::default();
        v.strings.insert(id);
        v
    }

    /// A known constant integer.
    pub fn of_int(i: i64) -> Val {
        let mut v = Val::default();
        v.ints.insert(i);
        v
    }

    /// Joins `other` into `self`; returns `true` if anything changed.
    pub fn join(&mut self, other: &Val) -> bool {
        let before = (
            self.strings.len(),
            self.ints.len(),
            self.taints.len(),
            self.intents.len(),
            self.unknown,
        );
        self.strings.merge(&other.strings);
        self.ints.merge(&other.ints);
        self.taints.union(other.taints);
        self.intents.merge(&other.intents);
        self.unknown |= other.unknown;
        self.widen();
        before
            != (
                self.strings.len(),
                self.ints.len(),
                self.taints.len(),
                self.intents.len(),
                self.unknown,
            )
    }

    /// Applies the `SET_CAP` widening.
    pub fn widen(&mut self) {
        if self.strings.len() > SET_CAP {
            self.strings.clear();
            self.unknown = true;
        }
        if self.ints.len() > SET_CAP {
            self.ints.clear();
            self.unknown = true;
        }
        if self.taints.len() > SET_CAP {
            // Taints must stay sound: widen to "tainted by every source"
            // rather than dropping them (the full set is the fixpoint).
            self.taints.union(ResourceSet::all_sources());
        }
        if self.intents.len() > SET_CAP {
            // Dropping intent references loses precision, not soundness:
            // `unknown` marks the value as referencing untracked objects.
            self.intents.clear();
            self.unknown = true;
        }
    }

    /// Mixes this value into an order-sensitive FNV-1a fingerprint. Used
    /// as a memo-bucket key: collisions are resolved by full comparison,
    /// so only distribution matters, not cryptographic strength.
    pub fn fingerprint(&self, h: &mut u64) {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut mix = |v: u64| *h = (*h ^ v).wrapping_mul(PRIME);
        mix(self.strings.0.len() as u64);
        for &s in &self.strings.0 {
            mix(s as u64);
        }
        mix(self.ints.0.len() as u64);
        for &i in &self.ints.0 {
            mix(i as u64);
        }
        mix(u64::from(self.taints.0));
        mix(self.intents.0.len() as u64);
        for &i in &self.intents.0 {
            mix(i as u64);
        }
        mix(u64::from(self.unknown));
    }

    /// Definite truthiness, if statically known: `Some(false)` when the
    /// value is exactly the integer 0 or null-like, `Some(true)` when it
    /// cannot be zero, `None` otherwise.
    pub fn definite_nonzero(&self) -> Option<bool> {
        if self.unknown || !self.intents.is_empty() || !self.taints.is_empty() {
            return None;
        }
        if !self.strings.is_empty() {
            // Strings are non-null references.
            return if self.ints.is_empty() {
                Some(true)
            } else {
                None
            };
        }
        if self.ints.len() == 1 {
            return Some(self.ints.iter().next().expect("len 1") != 0);
        }
        if self.ints.is_empty() {
            // Default-initialized register: null.
            return Some(false);
        }
        if self.ints.iter().all(|i| i != 0) {
            return Some(true);
        }
        if self.ints.iter().all(|i| i == 0) {
            return Some(false);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_set_is_sorted_and_deduplicated() {
        let mut s = SmallSet::default();
        assert!(s.insert(5u32));
        assert!(s.insert(1));
        assert!(!s.insert(5));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 5]);
        assert!(s.iter().any(|v| v == 1) && !s.iter().any(|v| v == 2));
    }

    #[test]
    fn resource_set_matches_btree_semantics() {
        let mut rs = ResourceSet::default();
        assert!(rs.insert(Resource::Location));
        assert!(!rs.insert(Resource::Location));
        assert!(rs.insert(Resource::Sms));
        assert_eq!(rs.len(), 2);
        let bt = rs.to_btree();
        assert!(bt.contains(&Resource::Location) && bt.contains(&Resource::Sms));
        let sources = ResourceSet::all_sources();
        assert_eq!(
            sources.len(),
            Resource::ALL.iter().filter(|r| r.is_source()).count()
        );
    }

    #[test]
    fn widening_caps_each_set() {
        let mut v = Val::default();
        for i in 0..=SET_CAP as i64 {
            let mut o = Val::default();
            o.ints.insert(i);
            v.join(&o);
        }
        assert!(v.ints.is_empty() && v.unknown);

        let mut v = Val::default();
        for i in 0..=SET_CAP as u32 {
            let mut o = Val::default();
            o.intents.insert(i);
            v.join(&o);
        }
        assert!(v.intents.is_empty() && v.unknown);
    }

    #[test]
    fn taint_widening_is_a_fixpoint() {
        let mut v = Val::default();
        for &r in Resource::ALL.iter().filter(|r| r.is_source()).take(SET_CAP) {
            v.taints.insert(r);
        }
        let mut extra = Val::default();
        extra.taints.insert(Resource::PhoneState);
        assert!(v.join(&extra));
        assert_eq!(v.taints, ResourceSet::all_sources());
        assert!(!v.join(&extra), "widened taints are a fixpoint");
    }

    #[test]
    fn definite_nonzero_matches_reference_rules() {
        assert_eq!(Val::default().definite_nonzero(), Some(false));
        assert_eq!(Val::of_int(0).definite_nonzero(), Some(false));
        assert_eq!(Val::of_int(3).definite_nonzero(), Some(true));
        assert_eq!(Val::of_string(0).definite_nonzero(), Some(true));
        assert_eq!(Val::top().definite_nonzero(), None);
        let mut v = Val::of_int(0);
        v.ints.insert(1);
        assert_eq!(v.definite_nonzero(), None);
    }
}
