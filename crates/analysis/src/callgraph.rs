//! Call-graph construction over an app's code.
//!
//! Class-hierarchy-based resolution: an `invoke-virtual` on class `C` may
//! dispatch to `C`'s own definition or any overriding definition in a
//! subclass of `C` defined in the program. Entry points are the lifecycle
//! methods of manifest-declared components.

use std::collections::{HashMap, HashSet, VecDeque};

use separ_android::api::{component_super, entry_points};
use separ_dex::instr::Instr;
use separ_dex::program::{Apk, Dex};
use separ_dex::refs::TypeId;

/// A node: `(class index, method index)` into the program.
pub type MethodNode = (usize, usize);

/// A call graph with manifest-derived entry points.
#[derive(Debug)]
pub struct CallGraph {
    /// Adjacency: caller -> callees (program-defined only).
    edges: HashMap<MethodNode, Vec<MethodNode>>,
    entry: Vec<MethodNode>,
}

impl CallGraph {
    /// Builds the call graph of an app.
    pub fn build(apk: &Apk) -> CallGraph {
        let dex = &apk.dex;
        // subclassing: super type -> direct subclasses
        let mut subclasses: HashMap<TypeId, Vec<usize>> = HashMap::new();
        for (ci, class) in dex.classes.iter().enumerate() {
            if let Some(s) = class.super_ty {
                subclasses.entry(s).or_default().push(ci);
            }
        }
        let mut edges: HashMap<MethodNode, Vec<MethodNode>> = HashMap::new();
        for (ci, class) in dex.classes.iter().enumerate() {
            for (mi, method) in class.methods.iter().enumerate() {
                let mut callees = Vec::new();
                for instr in &method.code {
                    if let Instr::Invoke { method: m, .. } = instr {
                        let mref = dex.pools.method_at(*m);
                        let name = dex.pools.str_at(mref.name);
                        callees.extend(resolve_targets(dex, &subclasses, mref.class, name));
                    }
                }
                callees.sort_unstable();
                callees.dedup();
                edges.insert((ci, mi), callees);
            }
        }
        let entry = entry_nodes(apk);
        CallGraph { edges, entry }
    }

    /// Entry-point nodes (component lifecycle methods).
    pub fn entry_points(&self) -> &[MethodNode] {
        &self.entry
    }

    /// Callees of a node.
    pub fn callees(&self, node: MethodNode) -> &[MethodNode] {
        self.edges.get(&node).map_or(&[], Vec::as_slice)
    }

    /// All nodes reachable from the entry points.
    pub fn reachable(&self) -> HashSet<MethodNode> {
        let mut seen: HashSet<MethodNode> = HashSet::new();
        let mut queue: VecDeque<MethodNode> = self.entry.iter().copied().collect();
        while let Some(n) = queue.pop_front() {
            if !seen.insert(n) {
                continue;
            }
            for &c in self.callees(n) {
                if !seen.contains(&c) {
                    queue.push_back(c);
                }
            }
        }
        seen
    }

    /// Number of nodes with any code.
    pub fn num_methods(&self) -> usize {
        self.edges.len()
    }
}

/// Resolves an invocation of `name` declared against `declared` to all
/// possible program definitions (declared class chain + overriding
/// subclasses).
fn resolve_targets(
    dex: &Dex,
    subclasses: &HashMap<TypeId, Vec<usize>>,
    declared: TypeId,
    name: &str,
) -> Vec<MethodNode> {
    let mut out = Vec::new();
    // Walk up from the declared class to find an inherited definition.
    if let Some((def_ty, _)) = dex.resolve_method(declared, name) {
        if let Some(ci) = dex.classes.iter().position(|c| c.ty == def_ty) {
            if let Some(mi) = method_index(dex, ci, name) {
                out.push((ci, mi));
            }
        }
    }
    // Walk down: overriding definitions in subclasses.
    let mut stack: Vec<usize> = subclasses
        .get(&declared)
        .map(|v| v.to_vec())
        .unwrap_or_default();
    while let Some(ci) = stack.pop() {
        if let Some(mi) = method_index(dex, ci, name) {
            out.push((ci, mi));
        }
        let ty = dex.classes[ci].ty;
        if let Some(subs) = subclasses.get(&ty) {
            stack.extend_from_slice(subs);
        }
    }
    out
}

fn method_index(dex: &Dex, class_idx: usize, name: &str) -> Option<usize> {
    dex.classes[class_idx]
        .methods
        .iter()
        .position(|m| dex.pools.str_at(m.name) == name)
}

/// Computes the component lifecycle entry-point nodes of an app.
pub fn entry_nodes(apk: &Apk) -> Vec<MethodNode> {
    let dex = &apk.dex;
    let mut out = Vec::new();
    for decl in &apk.manifest.components {
        let Some(ty) = dex.pools.find_type(&decl.class) else {
            continue;
        };
        let Some(ci) = dex.classes.iter().position(|c| c.ty == ty) else {
            continue;
        };
        let _ = component_super(decl.kind); // the canonical superclass
        for &ep in entry_points(decl.kind) {
            if let Some(mi) = method_index(dex, ci, ep) {
                out.push((ci, mi));
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use separ_dex::build::ApkBuilder;
    use separ_dex::manifest::{ComponentDecl, ComponentKind};

    fn two_level_app() -> Apk {
        let mut apk = ApkBuilder::new("t");
        apk.add_component(ComponentDecl::new("LSvc;", ComponentKind::Service));
        {
            let mut class = apk.class_extends("LSvc;", "Landroid/app/Service;");
            let mut m = class.method("onStartCommand", 2, false, false);
            let v = m.reg();
            m.const_int(v, 1);
            m.invoke_static("LHelper;", "work", &[v], false);
            m.ret_void();
            m.finish();
            // Not an entry point and never called:
            let mut dead = class.method("orphan", 1, false, false);
            dead.invoke_static("LHelper;", "secret", &[], false);
            dead.ret_void();
            dead.finish();
            class.finish();
        }
        {
            let mut class = apk.class("LHelper;");
            let mut m = class.method("work", 1, true, false);
            m.invoke_static("LHelper;", "inner", &[], false);
            m.ret_void();
            m.finish();
            let mut m = class.method("inner", 0, true, false);
            m.ret_void();
            m.finish();
            let mut m = class.method("secret", 0, true, false);
            m.ret_void();
            m.finish();
            class.finish();
        }
        apk.finish()
    }

    #[test]
    fn reachability_from_entry_points() {
        let apk = two_level_app();
        let cg = CallGraph::build(&apk);
        assert_eq!(cg.entry_points().len(), 1);
        let reach = cg.reachable();
        // onStartCommand, work, inner reachable; orphan and secret not.
        assert_eq!(reach.len(), 3);
    }

    #[test]
    fn virtual_dispatch_includes_overrides() {
        let mut apk = ApkBuilder::new("t");
        apk.add_component(ComponentDecl::new("LMain;", ComponentKind::Activity));
        {
            let mut class = apk.class("LBase;");
            let mut m = class.method("hook", 1, false, false);
            m.ret_void();
            m.finish();
            class.finish();
        }
        {
            let mut class = apk.class_extends("LSub;", "LBase;");
            let mut m = class.method("hook", 1, false, false);
            m.invoke_static("LSub;", "payload", &[], false);
            m.ret_void();
            m.finish();
            let mut m = class.method("payload", 0, true, false);
            m.ret_void();
            m.finish();
            class.finish();
        }
        {
            let mut class = apk.class_extends("LMain;", "Landroid/app/Activity;");
            let mut m = class.method("onCreate", 1, false, false);
            let v = m.reg();
            m.new_instance(v, "LSub;");
            m.invoke_virtual("LBase;", "hook", &[v], false);
            m.ret_void();
            m.finish();
            class.finish();
        }
        let apk = apk.finish();
        let cg = CallGraph::build(&apk);
        let reach = cg.reachable();
        // onCreate, Base::hook, Sub::hook, payload all reachable via CHA.
        assert_eq!(reach.len(), 4);
    }

    #[test]
    fn missing_component_classes_are_skipped() {
        let mut apk = ApkBuilder::new("t");
        apk.add_component(ComponentDecl::new("LGhost;", ComponentKind::Activity));
        let apk = apk.finish();
        let cg = CallGraph::build(&apk);
        assert!(cg.entry_points().is_empty());
        assert!(cg.reachable().is_empty());
    }
}
