//! Content-addressed extracted-model cache.
//!
//! Extraction is pure: the [`AppModel`] is a function of the package
//! bytes (and the analysis options, which the cache pins to the
//! defaults). This module memoizes that function behind a SHA-256 of the
//! package contents, so re-analyzing an unchanged apk skips decode →
//! verify → extract entirely:
//!
//! * an **in-memory** map serves repeat lookups within a process
//!   ([`CacheOutcome::MemoryHit`]);
//! * an optional **file-backed store** persists models across processes
//!   ([`CacheOutcome::DiskHit`]); entries are self-checking (magic,
//!   format version, payload checksum), and any corruption is detected,
//!   counted, and repaired by falling back to re-extraction — a damaged
//!   cache can cost time, never correctness.
//!
//! Key derivation hashes the *bytes*, not the decoded structure: any
//! byte-level change (re-signing, recompilation, manifest edit) is a new
//! key, and stale entries are simply never addressed again
//! (no explicit invalidation protocol). The serialized payload is a
//! self-contained binary codec over the model types — no external
//! serialization dependencies.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use separ_android::api::IccMethod;
use separ_android::types::{FlowPath, Resource};
use separ_dex::error::DexError;
use separ_dex::manifest::{ComponentKind, IntentFilterDecl};
use separ_dex::program::Apk;

use crate::diagnostics::{Diagnostic, DiagnosticKind, Severity};
use crate::model::{AppModel, ComponentModel, ExtractionStats, SentIntentModel};

/// How a cache lookup was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Not cached: the model was extracted from scratch (and stored).
    Miss,
    /// Served from the in-process map.
    MemoryHit,
    /// Served from the file-backed store (and promoted to memory).
    DiskHit,
}

impl CacheOutcome {
    /// Whether extraction was skipped.
    pub fn is_hit(self) -> bool {
        !matches!(self, CacheOutcome::Miss)
    }
}

/// Monotonic cache counters (also mirrored to `separ-obs` as
/// `ame.cache.*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from memory.
    pub memory_hits: u64,
    /// Lookups answered from the file store.
    pub disk_hits: u64,
    /// Lookups that extracted from scratch.
    pub misses: u64,
    /// File-store entries rejected as corrupt (each also counts as a
    /// miss).
    pub corrupt: u64,
    /// File-store entries evicted by the LRU size cap.
    pub evicted: u64,
}

/// The file-backed half of a [`ModelCache`]: a directory of
/// self-checking entries plus, when capped, LRU accounting so a
/// long-running process (the `separ serve` daemon) cannot grow the
/// directory without bound.
#[derive(Debug)]
struct DiskStore {
    dir: PathBuf,
    /// Total-bytes cap on the entry files; `None` = unbounded.
    cap_bytes: Option<u64>,
    lru: Mutex<LruState>,
}

/// Recency bookkeeping for the capped file store. `seq` is a logical
/// clock: every hit or admit stamps the entry, eviction removes the
/// smallest stamps first.
#[derive(Debug, Default)]
struct LruState {
    entries: HashMap<[u8; 32], (u64, u64)>, // key -> (size, last-use seq)
    total: u64,
    seq: u64,
}

impl DiskStore {
    /// Rebuilds LRU state from the directory contents (oldest mtime =
    /// least recent), so a restarted process caps correctly from the
    /// first admit.
    fn open(dir: PathBuf, cap_bytes: Option<u64>) -> DiskStore {
        let mut found: Vec<([u8; 32], u64, std::time::SystemTime)> = Vec::new();
        if let Ok(entries) = std::fs::read_dir(&dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(key) = parse_entry_name(&name.to_string_lossy()) else {
                    continue;
                };
                let Ok(meta) = entry.metadata() else {
                    continue;
                };
                let mtime = meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
                found.push((key, meta.len(), mtime));
            }
        }
        found.sort_by_key(|&(_, _, mtime)| mtime);
        let mut lru = LruState::default();
        for (key, size, _) in found {
            lru.seq += 1;
            lru.total += size;
            lru.entries.insert(key, (size, lru.seq));
        }
        DiskStore {
            dir,
            cap_bytes,
            lru: Mutex::new(lru),
        }
    }

    fn path(&self, key: &[u8; 32]) -> PathBuf {
        self.dir.join(entry_name(key))
    }

    /// Marks `key` most-recently-used.
    fn touch(&self, key: &[u8; 32]) {
        let mut lru = self.lru.lock().expect("lru lock");
        lru.seq += 1;
        let seq = lru.seq;
        if let Some(entry) = lru.entries.get_mut(key) {
            entry.1 = seq;
        }
    }

    /// Records an admitted entry and evicts least-recently-used files
    /// until the store fits the cap again (never the just-admitted key).
    /// Returns how many entries were evicted.
    fn admit(&self, key: [u8; 32], size: u64) -> u64 {
        let mut lru = self.lru.lock().expect("lru lock");
        lru.seq += 1;
        let seq = lru.seq;
        if let Some(&(old_size, _)) = lru.entries.get(&key) {
            lru.total -= old_size;
        }
        lru.total += size;
        lru.entries.insert(key, (size, seq));
        let Some(cap) = self.cap_bytes else { return 0 };
        let mut evicted = 0;
        while lru.total > cap && lru.entries.len() > 1 {
            let Some((&victim, _)) = lru
                .entries
                .iter()
                .filter(|&(k, _)| *k != key)
                .min_by_key(|&(_, &(_, seq))| seq)
            else {
                break;
            };
            let (size, _) = lru.entries.remove(&victim).expect("victim present");
            lru.total -= size;
            let _ = std::fs::remove_file(self.path(&victim));
            evicted += 1;
        }
        evicted
    }

    /// Drops a vanished or corrupt entry from the accounting.
    fn forget(&self, key: &[u8; 32]) {
        let mut lru = self.lru.lock().expect("lru lock");
        if let Some((size, _)) = lru.entries.remove(key) {
            lru.total -= size;
        }
    }
}

/// A content-addressed [`AppModel`] cache. Cheap to share: clone the
/// [`Arc`] it is typically held in.
#[derive(Debug)]
pub struct ModelCache {
    memory: Mutex<HashMap<[u8; 32], Arc<AppModel>>>,
    disk: Option<DiskStore>,
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    evicted: AtomicU64,
}

impl Default for ModelCache {
    fn default() -> ModelCache {
        ModelCache::new()
    }
}

impl ModelCache {
    /// An in-memory-only cache.
    pub fn new() -> ModelCache {
        ModelCache {
            memory: Mutex::new(HashMap::new()),
            disk: None,
            memory_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    /// A cache with an unbounded file-backed store under `dir` (created
    /// if absent; falls back to memory-only if the directory cannot be
    /// created).
    pub fn with_dir(dir: impl Into<PathBuf>) -> ModelCache {
        ModelCache::with_dir_capped(dir, None)
    }

    /// A cache with a file-backed store under `dir`, capped at
    /// `cap_bytes` total entry bytes. When an admit pushes the store
    /// over the cap, least-recently-used entries are deleted (and
    /// counted as [`CacheStats::evicted`] / `ame.cache.evicted`) until
    /// it fits; the entry being admitted is never the victim. Recency
    /// survives restarts via file mtimes.
    pub fn with_dir_capped(dir: impl Into<PathBuf>, cap_bytes: Option<u64>) -> ModelCache {
        let dir = dir.into();
        let disk = std::fs::create_dir_all(&dir)
            .ok()
            .map(|()| DiskStore::open(dir, cap_bytes));
        ModelCache {
            disk,
            ..ModelCache::new()
        }
    }

    /// The content key of a package.
    pub fn key(bytes: &[u8]) -> [u8; 32] {
        sha256(bytes)
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            memory_hits: self.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
        }
    }

    /// Looks up the model for `bytes`, extracting (and storing) on miss.
    ///
    /// # Errors
    ///
    /// Returns a [`DexError`] only when the package is not cached *and*
    /// fails to decode.
    pub fn get_or_extract(&self, bytes: &[u8]) -> Result<(Arc<AppModel>, CacheOutcome), DexError> {
        let key = ModelCache::key(bytes);
        if let Some(hit) = self.lookup(&key) {
            return Ok(hit);
        }
        let model = crate::extractor::extract(bytes)?;
        Ok((self.admit(key, model), CacheOutcome::Miss))
    }

    /// Looks up the model for an already-decoded package, extracting on
    /// miss. The key is derived from the package's canonical encoding, so
    /// it matches [`ModelCache::get_or_extract`] on the same bytes.
    pub fn get_or_extract_apk(&self, apk: &Apk) -> (Arc<AppModel>, CacheOutcome) {
        let key = ModelCache::key(&separ_dex::codec::encode(apk));
        if let Some(hit) = self.lookup(&key) {
            return hit;
        }
        let model = crate::extractor::extract_apk(apk);
        (self.admit(key, model), CacheOutcome::Miss)
    }

    fn lookup(&self, key: &[u8; 32]) -> Option<(Arc<AppModel>, CacheOutcome)> {
        if let Some(m) = self.memory.lock().expect("cache lock").get(key) {
            self.memory_hits.fetch_add(1, Ordering::Relaxed);
            separ_obs::counter_add("ame.cache.hit", 1);
            // A memory hit is still a use: keep the file store's recency
            // honest so the entry isn't the next LRU victim.
            if let Some(disk) = &self.disk {
                disk.touch(key);
            }
            return Some((Arc::clone(m), CacheOutcome::MemoryHit));
        }
        if let Some(disk) = &self.disk {
            if let Ok(data) = std::fs::read(disk.path(key)) {
                match decode_entry(&data) {
                    Some(model) => {
                        disk.touch(key);
                        let model = Arc::new(model);
                        self.memory
                            .lock()
                            .expect("cache lock")
                            .insert(*key, Arc::clone(&model));
                        self.disk_hits.fetch_add(1, Ordering::Relaxed);
                        separ_obs::counter_add("ame.cache.disk_hit", 1);
                        return Some((model, CacheOutcome::DiskHit));
                    }
                    None => {
                        // Detected corruption: count it and fall through
                        // to re-extraction (which overwrites the entry).
                        disk.forget(key);
                        self.corrupt.fetch_add(1, Ordering::Relaxed);
                        separ_obs::counter_add("ame.cache.corrupt", 1);
                    }
                }
            }
        }
        None
    }

    fn admit(&self, key: [u8; 32], model: AppModel) -> Arc<AppModel> {
        self.misses.fetch_add(1, Ordering::Relaxed);
        separ_obs::counter_add("ame.cache.miss", 1);
        let model = Arc::new(model);
        if let Some(disk) = &self.disk {
            // Best effort: a failed write degrades to a future miss.
            let entry = encode_entry(&model);
            if std::fs::write(disk.path(&key), &entry).is_ok() {
                let evicted = disk.admit(key, entry.len() as u64);
                if evicted > 0 {
                    self.evicted.fetch_add(evicted, Ordering::Relaxed);
                    separ_obs::counter_add("ame.cache.evicted", evicted);
                }
            }
        }
        self.memory
            .lock()
            .expect("cache lock")
            .insert(key, Arc::clone(&model));
        model
    }
}

fn entry_name(key: &[u8; 32]) -> String {
    use std::fmt::Write;
    let mut name = String::with_capacity(70);
    for b in key {
        let _ = write!(name, "{b:02x}");
    }
    name.push_str(".model");
    name
}

/// Inverse of [`entry_name`]: recovers the content key from a store
/// file name, or `None` for foreign files.
fn parse_entry_name(name: &str) -> Option<[u8; 32]> {
    let hex = name.strip_suffix(".model")?;
    if hex.len() != 64 {
        return None;
    }
    let mut key = [0u8; 32];
    for (i, byte) in key.iter_mut().enumerate() {
        *byte = u8::from_str_radix(&hex[2 * i..2 * i + 2], 16).ok()?;
    }
    Some(key)
}

// ---------------------------------------------------------------------
// File format: magic, version, payload checksum, payload.
// ---------------------------------------------------------------------

const MAGIC: &[u8; 4] = b"SEPM";
const VERSION: u32 = 1;

/// Serializes a model into a self-checking cache entry.
pub fn encode_entry(model: &AppModel) -> Vec<u8> {
    let mut payload = Vec::new();
    write_model(&mut payload, model);
    let mut out = Vec::with_capacity(payload.len() + 40);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&sha256(&payload));
    out.extend_from_slice(&payload);
    out
}

/// Deserializes a cache entry, returning `None` on any corruption
/// (bad magic, version mismatch, checksum failure, or malformed
/// payload).
pub fn decode_entry(data: &[u8]) -> Option<AppModel> {
    if data.len() < 40 || &data[..4] != MAGIC {
        return None;
    }
    if u32::from_le_bytes(data[4..8].try_into().ok()?) != VERSION {
        return None;
    }
    let checksum: [u8; 32] = data[8..40].try_into().ok()?;
    let payload = &data[40..];
    if sha256(payload) != checksum {
        return None;
    }
    let mut r = Reader(payload);
    let model = read_model(&mut r)?;
    // Trailing garbage is corruption too.
    r.0.is_empty().then_some(model)
}

// --- writing ---------------------------------------------------------

fn write_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    write_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn write_opt_str(out: &mut Vec<u8>, s: Option<&str>) {
    match s {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            write_str(out, s);
        }
    }
}

fn write_strs<'a>(out: &mut Vec<u8>, it: impl ExactSizeIterator<Item = &'a String>) {
    write_u64(out, it.len() as u64);
    for s in it {
        write_str(out, s);
    }
}

fn write_model(out: &mut Vec<u8>, m: &AppModel) {
    write_str(out, &m.package);
    write_u64(out, m.components.len() as u64);
    for c in &m.components {
        write_component(out, c);
    }
    write_strs(out, m.uses_permissions.iter());
    write_strs(out, m.defines_permissions.iter());
    write_u64(out, m.diagnostics.len() as u64);
    for d in &m.diagnostics {
        write_diagnostic(out, d);
    }
    write_u64(out, m.stats.duration.as_secs());
    out.extend_from_slice(&m.stats.duration.subsec_nanos().to_le_bytes());
    write_u64(out, m.stats.app_size as u64);
    write_u64(out, m.stats.instructions_visited);
    write_u64(out, m.stats.quarantined_methods as u64);
}

fn write_component(out: &mut Vec<u8>, c: &ComponentModel) {
    write_str(out, &c.class);
    out.push(c.kind as u8);
    out.push(u8::from(c.exported));
    write_u64(out, c.filters.len() as u64);
    for f in &c.filters {
        write_strs(out, f.actions.iter());
        write_strs(out, f.categories.iter());
        write_strs(out, f.data_types.iter());
        write_strs(out, f.data_schemes.iter());
    }
    write_opt_str(out, c.enforced_permission.as_deref());
    write_strs(out, c.dynamic_checks.iter());
    write_u64(out, c.paths.len() as u64);
    for p in &c.paths {
        out.push(p.source as u8);
        out.push(p.sink as u8);
    }
    write_u64(out, c.sent_intents.len() as u64);
    for i in &c.sent_intents {
        write_intent(out, i);
    }
    write_strs(out, c.used_permissions.iter());
    out.push(u8::from(c.registers_dynamically));
}

fn write_intent(out: &mut Vec<u8>, i: &SentIntentModel) {
    out.push(i.via as u8);
    write_opt_str(out, i.action.as_deref());
    write_strs(out, i.categories.iter());
    write_opt_str(out, i.data_type.as_deref());
    write_opt_str(out, i.data_scheme.as_deref());
    write_opt_str(out, i.explicit_target.as_deref());
    write_strs(out, i.extra_keys.iter());
    write_u64(out, i.extra_taints.len() as u64);
    for &t in &i.extra_taints {
        out.push(t as u8);
    }
    out.push(u8::from(i.requests_result));
    out.push(u8::from(i.is_passive));
    write_strs(out, i.resolved_targets.iter());
}

/// Every diagnostic kind, in a frozen serialization order (append-only:
/// extending it is compatible, reordering is a format break).
const DIAGNOSTIC_KINDS: [DiagnosticKind; 14] = [
    DiagnosticKind::RegisterBounds,
    DiagnosticKind::UseBeforeDef,
    DiagnosticKind::MoveResultPairing,
    DiagnosticKind::BranchTarget,
    DiagnosticKind::PoolIndex,
    DiagnosticKind::UnreachableCode,
    DiagnosticKind::SuperclassCycle,
    DiagnosticKind::DuplicateClass,
    DiagnosticKind::UnresolvedComponent,
    DiagnosticKind::MissingEntryPoint,
    DiagnosticKind::FilterWithoutAction,
    DiagnosticKind::ProviderWithFilter,
    DiagnosticKind::DuplicateComponent,
    DiagnosticKind::DecodeFailure,
];

fn write_diagnostic(out: &mut Vec<u8>, d: &Diagnostic) {
    out.push(match d.severity {
        Severity::Info => 0,
        Severity::Warning => 1,
        Severity::Error => 2,
    });
    write_str(out, &d.app);
    write_str(out, &d.location);
    let kind = DIAGNOSTIC_KINDS
        .iter()
        .position(|&k| k == d.kind)
        .expect("kind listed") as u8;
    out.push(kind);
    write_str(out, &d.message);
}

// --- reading ---------------------------------------------------------

struct Reader<'a>(&'a [u8]);

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.0.len() < n {
            return None;
        }
        let (head, tail) = self.0.split_at(n);
        self.0 = tail;
        Some(head)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn bool(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    /// A length prefix, sanity-bounded by the bytes actually remaining.
    fn len(&mut self) -> Option<usize> {
        let n = self.u64()?;
        (n <= self.0.len() as u64).then_some(n as usize)
    }

    fn str(&mut self) -> Option<String> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn opt_str(&mut self) -> Option<Option<String>> {
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(self.str()?)),
            _ => None,
        }
    }

    fn str_vec(&mut self) -> Option<Vec<String>> {
        let n = self.len()?;
        (0..n).map(|_| self.str()).collect()
    }

    fn str_set(&mut self) -> Option<std::collections::BTreeSet<String>> {
        let n = self.len()?;
        (0..n).map(|_| self.str()).collect()
    }

    fn resource(&mut self) -> Option<Resource> {
        Resource::ALL.get(self.u8()? as usize).copied()
    }
}

fn read_model(r: &mut Reader<'_>) -> Option<AppModel> {
    let package = r.str()?;
    let n = r.len()?;
    let components = (0..n)
        .map(|_| read_component(r))
        .collect::<Option<Vec<_>>>()?;
    let uses_permissions = r.str_set()?;
    let defines_permissions = r.str_set()?;
    let n = r.len()?;
    let diagnostics = (0..n)
        .map(|_| read_diagnostic(r))
        .collect::<Option<Vec<_>>>()?;
    let secs = r.u64()?;
    let nanos = r.u32()?;
    let stats = ExtractionStats {
        duration: Duration::new(secs, nanos),
        app_size: r.u64()? as usize,
        instructions_visited: r.u64()?,
        quarantined_methods: r.u64()? as usize,
    };
    Some(AppModel {
        package,
        components,
        uses_permissions,
        defines_permissions,
        diagnostics,
        stats,
    })
}

fn read_component(r: &mut Reader<'_>) -> Option<ComponentModel> {
    let class = r.str()?;
    let kind = *ComponentKind::ALL.get(r.u8()? as usize)?;
    let exported = r.bool()?;
    let n = r.len()?;
    let filters = (0..n)
        .map(|_| {
            Some(IntentFilterDecl {
                actions: r.str_vec()?,
                categories: r.str_vec()?,
                data_types: r.str_vec()?,
                data_schemes: r.str_vec()?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    let enforced_permission = r.opt_str()?;
    let dynamic_checks = r.str_set()?;
    let n = r.len()?;
    let paths = (0..n)
        .map(|_| {
            Some(FlowPath {
                source: r.resource()?,
                sink: r.resource()?,
            })
        })
        .collect::<Option<_>>()?;
    let n = r.len()?;
    let sent_intents = (0..n).map(|_| read_intent(r)).collect::<Option<Vec<_>>>()?;
    Some(ComponentModel {
        class,
        kind,
        exported,
        filters,
        enforced_permission,
        dynamic_checks,
        paths,
        sent_intents,
        used_permissions: r.str_set()?,
        registers_dynamically: r.bool()?,
    })
}

fn read_intent(r: &mut Reader<'_>) -> Option<SentIntentModel> {
    let via = *IccMethod::ALL.get(r.u8()? as usize)?;
    let action = r.opt_str()?;
    let categories = r.str_set()?;
    let data_type = r.opt_str()?;
    let data_scheme = r.opt_str()?;
    let explicit_target = r.opt_str()?;
    let extra_keys = r.str_set()?;
    let n = r.len()?;
    let extra_taints = (0..n).map(|_| r.resource()).collect::<Option<_>>()?;
    Some(SentIntentModel {
        via,
        action,
        categories,
        data_type,
        data_scheme,
        explicit_target,
        extra_keys,
        extra_taints,
        requests_result: r.bool()?,
        is_passive: r.bool()?,
        resolved_targets: r.str_set()?,
    })
}

fn read_diagnostic(r: &mut Reader<'_>) -> Option<Diagnostic> {
    let severity = match r.u8()? {
        0 => Severity::Info,
        1 => Severity::Warning,
        2 => Severity::Error,
        _ => return None,
    };
    Some(Diagnostic {
        severity,
        app: r.str()?,
        location: r.str()?,
        kind: *DIAGNOSTIC_KINDS.get(r.u8()? as usize)?,
        message: r.str()?,
    })
}

// ---------------------------------------------------------------------
// SHA-256 (FIPS 180-4), self-contained.
// ---------------------------------------------------------------------

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Computes the SHA-256 digest of `data`.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];
    // Padded message: data ‖ 0x80 ‖ zeros ‖ bit-length (big-endian u64).
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut msg = data.to_vec();
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());
    let mut w = [0u32; 64];
    for block in msg.chunks_exact(64) {
        for (i, word) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(word.try_into().expect("4 bytes"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (hi, v) in h.iter_mut().zip([a, b, c, d, e, f, g, hh]) {
            *hi = hi.wrapping_add(v);
        }
    }
    let mut out = [0u8; 32];
    for (chunk, hi) in out.chunks_exact_mut(4).zip(h) {
        chunk.copy_from_slice(&hi.to_be_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use separ_android::api::class;
    use separ_dex::build::ApkBuilder;
    use separ_dex::manifest::{ComponentDecl, ComponentKind};

    fn hex(d: &[u8; 32]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn sha256_matches_known_vectors() {
        // FIPS 180-4 / RFC 6234 test vectors.
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // A multi-block input (> 64 bytes).
        let long = vec![b'a'; 1000];
        assert_eq!(
            hex(&sha256(&long)),
            "41edece42d63e8d9bf515a9ba6932e1c20cbc9f5a5d134645adb5db1b9737ea3"
        );
    }

    fn leaky_app() -> Apk {
        let mut apk = ApkBuilder::new("com.cache.test");
        apk.add_component(ComponentDecl::new("LLeaky;", ComponentKind::Service));
        let mut cb = apk.class_extends("LLeaky;", class::SERVICE);
        let mut m = cb.method("onStartCommand", 3, false, false);
        let v = m.reg();
        let i = m.reg();
        let s = m.reg();
        m.invoke_virtual(class::LOCATION_MANAGER, "getLastKnownLocation", &[v], true);
        m.move_result(v);
        m.new_instance(i, class::INTENT);
        m.const_string(s, "leak");
        m.invoke_virtual(class::INTENT, "setAction", &[i, s], false);
        m.invoke_virtual(class::INTENT, "putExtra", &[i, s, v], false);
        m.invoke_virtual(class::CONTEXT, "startService", &[m.this(), i], false);
        m.ret_void();
        m.finish();
        cb.finish();
        apk.finish()
    }

    #[test]
    fn codec_round_trips_extracted_models() {
        let model = crate::extractor::extract_apk(&leaky_app());
        let encoded = encode_entry(&model);
        let decoded = decode_entry(&encoded).expect("valid entry");
        assert_eq!(decoded, model);
    }

    #[test]
    fn corrupted_entries_are_rejected() {
        let model = crate::extractor::extract_apk(&leaky_app());
        let encoded = encode_entry(&model);
        // Truncated.
        assert!(decode_entry(&encoded[..encoded.len() - 1]).is_none());
        assert!(decode_entry(&encoded[..10]).is_none());
        // Any single flipped payload byte fails the checksum.
        let mut flipped = encoded.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xff;
        assert!(decode_entry(&flipped).is_none());
        // Bad magic / version.
        let mut bad = encoded.clone();
        bad[0] = b'X';
        assert!(decode_entry(&bad).is_none());
        let mut bad = encoded.clone();
        bad[4] = 0xee;
        assert!(decode_entry(&bad).is_none());
        // Trailing garbage.
        let mut extended = encoded.clone();
        extended.push(0);
        assert!(decode_entry(&extended).is_none());
    }

    #[test]
    fn memory_cache_serves_repeat_lookups() {
        let cache = ModelCache::new();
        let bytes = separ_dex::codec::encode(&leaky_app());
        let (cold, o1) = cache.get_or_extract(&bytes).expect("decodes");
        assert_eq!(o1, CacheOutcome::Miss);
        let (warm, o2) = cache.get_or_extract(&bytes).expect("decodes");
        assert_eq!(o2, CacheOutcome::MemoryHit);
        // Byte-for-byte identical: the cache returns the stored model.
        assert!(Arc::ptr_eq(&cold, &warm));
        assert_eq!(encode_entry(&cold), encode_entry(&warm));
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.memory_hits), (1, 1));
        // The decoded-package entry point addresses the same key.
        let (via_apk, o3) = cache.get_or_extract_apk(&leaky_app());
        assert_eq!(o3, CacheOutcome::MemoryHit);
        assert!(Arc::ptr_eq(&cold, &via_apk));
    }

    #[test]
    fn disk_cache_survives_process_boundaries_and_corruption() {
        let dir = std::env::temp_dir().join(format!(
            "separ-model-cache-test-{}-{}",
            std::process::id(),
            std::thread::current().name().unwrap_or("t").len()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let bytes = separ_dex::codec::encode(&leaky_app());
        let key = ModelCache::key(&bytes);
        let (cold, outcome) = {
            let cache = ModelCache::with_dir(&dir);
            cache.get_or_extract(&bytes).expect("decodes")
        };
        assert_eq!(outcome, CacheOutcome::Miss);
        // A fresh cache over the same directory — a "new process" — hits
        // the file store.
        let cache = ModelCache::with_dir(&dir);
        let (warm, outcome) = cache.get_or_extract(&bytes).expect("decodes");
        assert_eq!(outcome, CacheOutcome::DiskHit);
        assert_eq!(*warm, *cold);
        assert_eq!(cache.stats().disk_hits, 1);
        // Corrupt the stored entry: detected, counted, re-extracted.
        let path = dir.join(entry_name(&key));
        let mut data = std::fs::read(&path).expect("entry exists");
        let mid = data.len() / 2;
        data[mid] ^= 0x55;
        std::fs::write(&path, &data).expect("rewrite");
        let cache = ModelCache::with_dir(&dir);
        let (repaired, outcome) = cache.get_or_extract(&bytes).expect("decodes");
        assert_eq!(outcome, CacheOutcome::Miss, "corruption falls back");
        assert_eq!(cache.stats().corrupt, 1);
        // Re-extraction reproduces the model (wall time aside).
        let mut repaired = (*repaired).clone();
        let mut cold = (*cold).clone();
        repaired.stats.duration = Duration::ZERO;
        cold.stats.duration = Duration::ZERO;
        assert_eq!(repaired, cold);
        // The corrupt entry was overwritten with a good one.
        let cache = ModelCache::with_dir(&dir);
        let (_, outcome) = cache.get_or_extract(&bytes).expect("decodes");
        assert_eq!(outcome, CacheOutcome::DiskHit);
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn tiny_app(package: &str) -> Apk {
        let mut apk = ApkBuilder::new(package);
        apk.add_component(ComponentDecl::new("LMain;", ComponentKind::Activity));
        let mut cb = apk.class_extends("LMain;", class::ACTIVITY);
        let mut m = cb.method("onCreate", 2, false, false);
        m.ret_void();
        m.finish();
        cb.finish();
        apk.finish()
    }

    fn store_files(dir: &std::path::Path) -> usize {
        std::fs::read_dir(dir)
            .map(|rd| {
                rd.flatten()
                    .filter(|e| parse_entry_name(&e.file_name().to_string_lossy()).is_some())
                    .count()
            })
            .unwrap_or(0)
    }

    #[test]
    fn capped_store_evicts_least_recently_used() {
        let dir = std::env::temp_dir().join(format!(
            "separ-model-cache-lru-{}-evict",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let packages: Vec<_> = (0..4)
            .map(|i| separ_dex::codec::encode(&tiny_app(&format!("com.lru.a{i}"))))
            .collect();
        let entry_size =
            encode_entry(&crate::extractor::extract(&packages[0]).expect("decodes")).len() as u64;
        // Room for exactly two entries.
        let cache = ModelCache::with_dir_capped(&dir, Some(entry_size * 2));
        cache.get_or_extract(&packages[0]).expect("decodes");
        cache.get_or_extract(&packages[1]).expect("decodes");
        assert_eq!(cache.stats().evicted, 0);
        assert_eq!(store_files(&dir), 2);
        // Refresh entry 0, then admit entry 2: entry 1 is now the LRU
        // victim.
        cache.get_or_extract(&packages[0]).expect("decodes");
        cache.get_or_extract(&packages[2]).expect("decodes");
        assert_eq!(cache.stats().evicted, 1);
        assert_eq!(store_files(&dir), 2);
        let on_disk = |bytes: &[u8]| dir.join(entry_name(&ModelCache::key(bytes))).exists();
        assert!(on_disk(&packages[0]), "recently-used entry survives");
        assert!(!on_disk(&packages[1]), "LRU entry evicted");
        assert!(on_disk(&packages[2]), "just-admitted entry never evicted");
        // An evicted entry re-extracts as a plain miss in a fresh process.
        let cache = ModelCache::with_dir_capped(&dir, Some(entry_size * 2));
        let (_, outcome) = cache.get_or_extract(&packages[1]).expect("decodes");
        assert_eq!(outcome, CacheOutcome::Miss);
        assert_eq!(cache.stats().evicted, 1, "admit over cap evicts again");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn uncapped_store_never_evicts() {
        let dir = std::env::temp_dir().join(format!(
            "separ-model-cache-lru-{}-uncapped",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ModelCache::with_dir(&dir);
        for i in 0..4 {
            let bytes = separ_dex::codec::encode(&tiny_app(&format!("com.lru.b{i}")));
            cache.get_or_extract(&bytes).expect("decodes");
        }
        assert_eq!(cache.stats().evicted, 0);
        assert_eq!(store_files(&dir), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn entry_names_round_trip() {
        let key = sha256(b"name round trip");
        assert_eq!(parse_entry_name(&entry_name(&key)), Some(key));
        assert_eq!(parse_entry_name("manifest.json"), None);
        assert_eq!(parse_entry_name("abc.model"), None);
        assert_eq!(
            parse_entry_name(&format!("{}x.model", "0".repeat(63))),
            None
        );
    }
}
