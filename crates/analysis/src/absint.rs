//! The abstract interpreter at the core of AME.
//!
//! One engine performs, simultaneously and per component:
//!
//! * **constant string/int propagation** (for Intent actions, extra keys,
//!   permission-check arguments) — flow-sensitive, with definite-constant
//!   branch pruning, so leaks guarded by dead branches are correctly
//!   ignored;
//! * **Intent tracking** — allocation-site-based abstract Intent objects
//!   whose actions/categories/data/targets/extras accumulate
//!   configuration-API effects, with one model entity emitted per
//!   disambiguated value as the paper prescribes;
//! * **taint analysis** — flow-, field- and context-sensitive propagation
//!   from source APIs (and Intent reads, the ICC source) to sink APIs (and
//!   Intent sends, the ICC sink). Context sensitivity comes from analyzing
//!   callees under their actual abstract arguments (memoized), which
//!   subsumes k-limited call strings for the app sizes involved. The
//!   analysis is deliberately **path-insensitive** (both arms of
//!   non-constant branches are joined), like the paper's.
//!
//! Dynamically registered broadcast receivers are observed but their
//! filters are *not* modelled — reproducing the paper's two ICC-Bench
//! false negatives.

use std::collections::{BTreeSet, HashMap, HashSet};

use separ_android::api::{self, ApiKind, IccMethod, IntentConfigKind};
use separ_android::types::{FlowPath, Resource};
use separ_dex::instr::{BinOp, Instr};
use separ_dex::program::{Apk, Dex};

use crate::callgraph::MethodNode;

/// Cap on tracked constants per register before widening to "unknown".
const SET_CAP: usize = 8;
/// Maximum inlining depth.
const MAX_DEPTH: usize = 12;

/// An abstract value: sets of possible constants, taints and intent
/// references, plus an "other values possible" flag.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct AbsValue {
    /// Possible constant strings.
    pub strings: BTreeSet<String>,
    /// Possible constant integers.
    pub ints: BTreeSet<i64>,
    /// Sensitive resources that may have flowed into this value.
    pub taints: BTreeSet<Resource>,
    /// Abstract intent objects this value may reference (table indices).
    pub intents: BTreeSet<usize>,
    /// Whether values outside the tracked sets are possible.
    pub unknown: bool,
}

impl AbsValue {
    /// The fully-unknown value.
    pub fn top() -> AbsValue {
        AbsValue {
            unknown: true,
            ..AbsValue::default()
        }
    }

    /// A known constant string.
    pub fn of_string(s: impl Into<String>) -> AbsValue {
        let mut v = AbsValue::default();
        v.strings.insert(s.into());
        v
    }

    /// A known constant integer.
    pub fn of_int(i: i64) -> AbsValue {
        let mut v = AbsValue::default();
        v.ints.insert(i);
        v
    }

    /// Joins `other` into `self`; returns `true` if anything changed.
    pub fn join(&mut self, other: &AbsValue) -> bool {
        let before = (
            self.strings.len(),
            self.ints.len(),
            self.taints.len(),
            self.intents.len(),
            self.unknown,
        );
        self.strings.extend(other.strings.iter().cloned());
        self.ints.extend(other.ints.iter().copied());
        self.taints.extend(other.taints.iter().copied());
        self.intents.extend(other.intents.iter().copied());
        self.unknown |= other.unknown;
        self.widen();
        before
            != (
                self.strings.len(),
                self.ints.len(),
                self.taints.len(),
                self.intents.len(),
                self.unknown,
            )
    }

    fn widen(&mut self) {
        if self.strings.len() > SET_CAP {
            self.strings.clear();
            self.unknown = true;
        }
        if self.ints.len() > SET_CAP {
            self.ints.clear();
            self.unknown = true;
        }
        if self.taints.len() > SET_CAP {
            // Taints must stay sound: widen to "tainted by every source"
            // rather than dropping them (the full set is the fixpoint).
            self.taints
                .extend(Resource::ALL.iter().filter(|r| r.is_source()));
        }
        if self.intents.len() > SET_CAP {
            // Dropping intent references loses precision, not soundness:
            // `unknown` marks the value as referencing untracked objects.
            self.intents.clear();
            self.unknown = true;
        }
    }

    /// Definite truthiness, if statically known: `Some(false)` when the
    /// value is exactly the integer 0 or null-like, `Some(true)` when it
    /// cannot be zero, `None` otherwise.
    fn definite_nonzero(&self) -> Option<bool> {
        if self.unknown || !self.intents.is_empty() || !self.taints.is_empty() {
            return None;
        }
        if !self.strings.is_empty() {
            // Strings are non-null references.
            return if self.ints.is_empty() {
                Some(true)
            } else {
                None
            };
        }
        if self.ints.len() == 1 {
            return Some(*self.ints.iter().next().expect("len 1") != 0);
        }
        if self.ints.is_empty() {
            // Default-initialized register: null.
            return Some(false);
        }
        if self.ints.iter().all(|&i| i != 0) {
            return Some(true);
        }
        if self.ints.iter().all(|&i| i == 0) {
            return Some(false);
        }
        None
    }
}

/// An abstract Intent object (allocation-site based).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct AbstractIntent {
    /// Possible action strings.
    pub actions: BTreeSet<String>,
    /// Whether an action was set to a statically unknown value.
    pub actions_unknown: bool,
    /// Categories added.
    pub categories: BTreeSet<String>,
    /// MIME types set.
    pub data_types: BTreeSet<String>,
    /// Data schemes set.
    pub data_schemes: BTreeSet<String>,
    /// Explicit target classes set.
    pub targets: BTreeSet<String>,
    /// Extra keys attached.
    pub extra_keys: BTreeSet<String>,
    /// Taints flowing into extras.
    pub extra_taints: BTreeSet<Resource>,
    /// ICC methods through which this intent was observed being sent.
    pub sent_via: BTreeSet<IccMethod>,
    /// Whether this is the component's *received* intent.
    pub is_received: bool,
}

/// Tool-profile knobs, used to reproduce comparator tools' documented
/// blind spots (the Table I baselines) as genuine analyzer restrictions.
#[derive(Debug, Clone, Copy)]
pub struct AnalysisOptions {
    /// Prune branches whose condition is a definite constant (SEPAR does;
    /// DidFail-like tools do not, producing false positives on
    /// unreachable-leak decoys).
    pub prune_dead_branches: bool,
    /// Model `registerReceiver` filters statically (AmanDroid-like tools
    /// do; SEPAR's extractor does not — its two ICC-Bench false
    /// negatives).
    pub model_dynamic_receivers: bool,
}

impl Default for AnalysisOptions {
    fn default() -> AnalysisOptions {
        AnalysisOptions {
            prune_dead_branches: true,
            model_dynamic_receivers: false,
        }
    }
}

/// The result of analyzing one component.
#[derive(Clone, Debug, Default)]
pub struct ComponentFacts {
    /// Sensitive source→sink paths.
    pub flows: BTreeSet<FlowPath>,
    /// The abstract intent table (index 0 is the received intent).
    pub intents: Vec<AbstractIntent>,
    /// Permissions checked via `checkCallingPermission` on reachable paths.
    pub dynamic_checks: BTreeSet<String>,
    /// Permissions exercised by reachable API calls.
    pub used_permissions: BTreeSet<String>,
    /// Whether `registerReceiver` is reachable.
    pub registers_dynamically: bool,
    /// Dynamically registered `(receiver class, action)` pairs — only
    /// populated when [`AnalysisOptions::model_dynamic_receivers`] is set.
    pub dynamic_filters: Vec<(String, String)>,
    /// Instructions abstractly visited.
    pub instructions_visited: u64,
}

/// Index of the received intent in every intent table.
pub const RECEIVED_INTENT: usize = 0;

/// Analyzes one component of an app: all its lifecycle entry points.
pub fn analyze_component(apk: &Apk, component_class: &str) -> ComponentFacts {
    analyze_component_with(apk, component_class, AnalysisOptions::default())
}

/// Analyzes one component under an explicit tool profile.
pub fn analyze_component_with(
    apk: &Apk,
    component_class: &str,
    options: AnalysisOptions,
) -> ComponentFacts {
    let mut engine = Engine::new(apk, options);
    let dex = &apk.dex;
    let Some(decl) = apk.manifest.component(component_class) else {
        return engine.into_facts();
    };
    let Some(ty) = dex.pools.find_type(component_class) else {
        return engine.into_facts();
    };
    let Some(ci) = dex.classes.iter().position(|c| c.ty == ty) else {
        return engine.into_facts();
    };
    // Iterate to a (bounded) fixpoint over the field state so that values
    // stored by one entry point are visible to loads in another.
    for _round in 0..3 {
        let before = engine.fields_fingerprint();
        for &ep in api::entry_points(decl.kind) {
            let Some(mi) = dex.classes[ci]
                .methods
                .iter()
                .position(|m| dex.pools.str_at(m.name) == ep)
            else {
                continue;
            };
            let method = &dex.classes[ci].methods[mi];
            let mut args: Vec<AbsValue> = Vec::new();
            if !method.is_static {
                args.push(AbsValue::top()); // `this`
            }
            while args.len() < method.num_params as usize {
                // Entry-point parameters beyond the receiver may carry the
                // received intent.
                let mut v = AbsValue::default();
                v.intents.insert(RECEIVED_INTENT);
                v.unknown = true;
                args.push(v);
            }
            engine.memo.clear();
            let _ = engine.analyze_method((ci, mi), args, 0);
        }
        if engine.fields_fingerprint() == before {
            break;
        }
    }
    engine.into_facts()
}

struct Engine<'a> {
    dex: &'a Dex,
    options: AnalysisOptions,
    flows: BTreeSet<FlowPath>,
    intents: Vec<AbstractIntent>,
    intent_sites: HashMap<(MethodNode, u32), usize>,
    dynamic_checks: BTreeSet<String>,
    used_permissions: BTreeSet<String>,
    registers_dynamically: bool,
    dynamic_filters: Vec<(String, String)>,
    fields: HashMap<(String, String), AbsValue>,
    memo: HashMap<(MethodNode, Vec<AbsValue>), AbsValue>,
    in_progress: HashSet<MethodNode>,
    visited: u64,
}

#[derive(Clone, PartialEq, Debug)]
struct Frame {
    regs: Vec<AbsValue>,
    pending: AbsValue,
}

impl Frame {
    fn join(&mut self, other: &Frame) -> bool {
        let mut changed = false;
        for (a, b) in self.regs.iter_mut().zip(&other.regs) {
            changed |= a.join(b);
        }
        changed |= self.pending.join(&other.pending);
        changed
    }
}

impl<'a> Engine<'a> {
    fn new(apk: &'a Apk, options: AnalysisOptions) -> Engine<'a> {
        let received = AbstractIntent {
            is_received: true,
            ..Default::default()
        };
        Engine {
            dex: &apk.dex,
            options,
            flows: BTreeSet::new(),
            intents: vec![received],
            intent_sites: HashMap::new(),
            dynamic_checks: BTreeSet::new(),
            used_permissions: BTreeSet::new(),
            registers_dynamically: false,
            dynamic_filters: Vec::new(),
            fields: HashMap::new(),
            memo: HashMap::new(),
            in_progress: HashSet::new(),
            visited: 0,
        }
    }

    fn into_facts(self) -> ComponentFacts {
        ComponentFacts {
            flows: self.flows,
            intents: self.intents,
            dynamic_checks: self.dynamic_checks,
            used_permissions: self.used_permissions,
            registers_dynamically: self.registers_dynamically,
            dynamic_filters: self.dynamic_filters,
            instructions_visited: self.visited,
        }
    }

    fn fields_fingerprint(&self) -> usize {
        self.fields
            .values()
            .map(|v| {
                v.strings.len()
                    + v.ints.len()
                    + v.taints.len()
                    + v.intents.len()
                    + usize::from(v.unknown)
            })
            .sum::<usize>()
            + self.fields.len() * 1000
            + self.flows.len() * 7
            + self
                .intents
                .iter()
                .map(|i| {
                    i.actions.len()
                        + i.categories.len()
                        + i.extra_keys.len()
                        + i.extra_taints.len()
                        + i.targets.len()
                        + i.sent_via.len()
                })
                .sum::<usize>()
                * 13
    }

    /// Analyzes one method under abstract arguments; returns the abstract
    /// return value.
    fn analyze_method(&mut self, node: MethodNode, args: Vec<AbsValue>, depth: usize) -> AbsValue {
        if depth > MAX_DEPTH {
            return AbsValue::top();
        }
        let key = (node, args.clone());
        if let Some(hit) = self.memo.get(&key) {
            return hit.clone();
        }
        if !self.in_progress.insert(node) {
            return AbsValue::top(); // recursion breaker
        }
        let method = &self.dex.classes[node.0].methods[node.1];
        let code = method.code.clone();
        let num_regs = method.num_registers as usize;
        let first_param = num_regs - method.num_params as usize;

        let mut init = Frame {
            regs: vec![AbsValue::default(); num_regs],
            pending: AbsValue::default(),
        };
        for (i, v) in args.iter().enumerate().take(method.num_params as usize) {
            init.regs[first_param + i] = v.clone();
        }
        let mut states: Vec<Option<Frame>> = vec![None; code.len()];
        let mut ret = AbsValue::default();
        if code.is_empty() {
            self.in_progress.remove(&node);
            self.memo.insert(key, ret.clone());
            return ret;
        }
        states[0] = Some(init);
        let mut worklist = vec![0usize];
        while let Some(pc) = worklist.pop() {
            let Some(frame) = states[pc].clone() else {
                continue;
            };
            self.visited += 1;
            let instr = &code[pc];
            let mut next = frame.clone();
            let mut succs: Vec<usize> = Vec::new();
            match instr {
                Instr::Nop => succs.push(pc + 1),
                Instr::ConstString { dst, value } => {
                    next.regs[dst.index()] = AbsValue::of_string(self.dex.pools.str_at(*value));
                    succs.push(pc + 1);
                }
                Instr::ConstInt { dst, value } => {
                    next.regs[dst.index()] = AbsValue::of_int(*value);
                    succs.push(pc + 1);
                }
                Instr::ConstNull { dst } => {
                    next.regs[dst.index()] = AbsValue::default();
                    succs.push(pc + 1);
                }
                Instr::Move { dst, src } => {
                    next.regs[dst.index()] = frame.regs[src.index()].clone();
                    succs.push(pc + 1);
                }
                Instr::NewInstance { dst, class } => {
                    let descriptor = self.dex.pools.type_at(*class);
                    if descriptor == api::class::INTENT {
                        let site = (node, pc as u32);
                        let idx = *self.intent_sites.entry(site).or_insert_with(|| {
                            self.intents.push(AbstractIntent::default());
                            self.intents.len() - 1
                        });
                        let mut v = AbsValue::default();
                        v.intents.insert(idx);
                        next.regs[dst.index()] = v;
                    } else {
                        next.regs[dst.index()] = AbsValue::top();
                    }
                    succs.push(pc + 1);
                }
                Instr::Invoke {
                    method: m, args, ..
                } => {
                    let arg_values: Vec<AbsValue> =
                        args.iter().map(|r| frame.regs[r.index()].clone()).collect();
                    next.pending = self.abstract_invoke(*m, &arg_values, depth);
                    succs.push(pc + 1);
                }
                Instr::MoveResult { dst } => {
                    next.regs[dst.index()] = frame.pending.clone();
                    next.pending = AbsValue::default();
                    succs.push(pc + 1);
                }
                Instr::IGet { dst, object, field } => {
                    let _ = object;
                    let fref = self.dex.pools.field_at(*field);
                    let fkey = (
                        self.dex.pools.type_at(fref.class).to_string(),
                        self.dex.pools.str_at(fref.name).to_string(),
                    );
                    next.regs[dst.index()] = self
                        .fields
                        .get(&fkey)
                        .cloned()
                        .unwrap_or_else(AbsValue::top);
                    succs.push(pc + 1);
                }
                Instr::IPut { src, object, field } => {
                    let _ = object;
                    let fref = self.dex.pools.field_at(*field);
                    let fkey = (
                        self.dex.pools.type_at(fref.class).to_string(),
                        self.dex.pools.str_at(fref.name).to_string(),
                    );
                    let v = frame.regs[src.index()].clone();
                    self.fields.entry(fkey).or_default().join(&v);
                    succs.push(pc + 1);
                }
                Instr::SGet { dst, field } => {
                    let fref = self.dex.pools.field_at(*field);
                    let fkey = (
                        self.dex.pools.type_at(fref.class).to_string(),
                        self.dex.pools.str_at(fref.name).to_string(),
                    );
                    next.regs[dst.index()] = self
                        .fields
                        .get(&fkey)
                        .cloned()
                        .unwrap_or_else(AbsValue::top);
                    succs.push(pc + 1);
                }
                Instr::SPut { src, field } => {
                    let fref = self.dex.pools.field_at(*field);
                    let fkey = (
                        self.dex.pools.type_at(fref.class).to_string(),
                        self.dex.pools.str_at(fref.name).to_string(),
                    );
                    let v = frame.regs[src.index()].clone();
                    self.fields.entry(fkey).or_default().join(&v);
                    succs.push(pc + 1);
                }
                Instr::IfEqz { reg, target } => {
                    match frame.regs[reg.index()]
                        .definite_nonzero()
                        .filter(|_| self.options.prune_dead_branches)
                    {
                        Some(true) => succs.push(pc + 1),
                        Some(false) => succs.push(*target as usize),
                        None => {
                            succs.push(pc + 1);
                            succs.push(*target as usize);
                        }
                    }
                }
                Instr::IfNez { reg, target } => {
                    match frame.regs[reg.index()]
                        .definite_nonzero()
                        .filter(|_| self.options.prune_dead_branches)
                    {
                        Some(true) => succs.push(*target as usize),
                        Some(false) => succs.push(pc + 1),
                        None => {
                            succs.push(pc + 1);
                            succs.push(*target as usize);
                        }
                    }
                }
                Instr::Goto { target } => succs.push(*target as usize),
                Instr::BinOp { op, dst, lhs, rhs } => {
                    let l = &frame.regs[lhs.index()];
                    let r = &frame.regs[rhs.index()];
                    let mut v = AbsValue::default();
                    if l.unknown || r.unknown || l.ints.is_empty() || r.ints.is_empty() {
                        v.unknown = true;
                    } else {
                        for &a in &l.ints {
                            for &b in &r.ints {
                                v.ints.insert(match op {
                                    BinOp::Add => a.wrapping_add(b),
                                    BinOp::Sub => a.wrapping_sub(b),
                                    BinOp::Mul => a.wrapping_mul(b),
                                    BinOp::CmpEq => i64::from(a == b),
                                });
                            }
                        }
                        v.widen();
                    }
                    v.taints
                        .extend(l.taints.iter().chain(r.taints.iter()).copied());
                    next.regs[dst.index()] = v;
                    succs.push(pc + 1);
                }
                Instr::ReturnVoid => {}
                Instr::Return { reg } => {
                    ret.join(&frame.regs[reg.index()]);
                }
                Instr::Throw { .. } => {}
            }
            for s in succs {
                if s >= code.len() {
                    continue;
                }
                let changed = match &mut states[s] {
                    Some(existing) => existing.join(&next),
                    slot @ None => {
                        *slot = Some(next.clone());
                        true
                    }
                };
                if changed {
                    worklist.push(s);
                }
            }
        }
        self.in_progress.remove(&node);
        self.memo.insert(key, ret.clone());
        ret
    }

    /// Handles one (abstract) invocation: framework semantics or callee
    /// inlining.
    fn abstract_invoke(
        &mut self,
        method: separ_dex::refs::MethodId,
        args: &[AbsValue],
        depth: usize,
    ) -> AbsValue {
        let mref = self.dex.pools.method_at(method).clone();
        let class = self.dex.pools.type_at(mref.class).to_string();
        let name = self.dex.pools.str_at(mref.name).to_string();

        if let Some(p) = api::permission_for(&class, &name) {
            self.used_permissions.insert(p.to_string());
        }

        match api::classify(&class, &name) {
            ApiKind::Source(resource) => {
                let mut v = AbsValue::top();
                v.taints.insert(resource);
                v
            }
            ApiKind::Sink(resource) => {
                for a in args {
                    for &t in &a.taints {
                        self.flows.insert(FlowPath::new(t, resource));
                    }
                    // Anything read from an Intent counts as ICC-sourced
                    // even without an explicit read call on record.
                    for &i in &a.intents {
                        if self.intents[i].is_received {
                            self.flows.insert(FlowPath::new(Resource::Icc, resource));
                        }
                    }
                }
                AbsValue::top()
            }
            ApiKind::Icc(icc) => {
                for a in args {
                    for &idx in &a.intents {
                        let entry = &mut self.intents[idx];
                        entry.sent_via.insert(icc);
                        // Data leaving in an Intent is an ICC-sink flow.
                        let taints: Vec<Resource> = entry.extra_taints.iter().copied().collect();
                        for t in taints {
                            self.flows.insert(FlowPath::new(t, Resource::Icc));
                        }
                    }
                }
                AbsValue::top()
            }
            ApiKind::IntentRead => {
                if name == "getIntent" {
                    // Returns the component's received intent itself.
                    let mut v = AbsValue::top();
                    v.intents.insert(RECEIVED_INTENT);
                    return v;
                }
                let mut v = AbsValue::top();
                let from_received = args
                    .iter()
                    .flat_map(|a| a.intents.iter())
                    .any(|&i| self.intents[i].is_received);
                if from_received {
                    v.taints.insert(Resource::Icc);
                }
                v
            }
            ApiKind::IntentConfig(kind) => {
                self.apply_intent_config(kind, args);
                AbsValue::default()
            }
            ApiKind::PermissionCheck => {
                for a in &args[1.min(args.len())..] {
                    for s in &a.strings {
                        self.dynamic_checks.insert(s.clone());
                    }
                }
                AbsValue::top()
            }
            ApiKind::DynamicRegister => {
                // SEPAR's extractor observes the call but does NOT model
                // the attached filter (the paper's documented limitation);
                // AmanDroid-profile runs do.
                self.registers_dynamically = true;
                if self.options.model_dynamic_receivers {
                    let classes: Vec<String> = args
                        .get(1)
                        .map(|a| a.strings.iter().cloned().collect())
                        .unwrap_or_default();
                    let actions: Vec<String> = args
                        .get(2)
                        .map(|a| a.strings.iter().cloned().collect())
                        .unwrap_or_default();
                    for c in &classes {
                        for a in &actions {
                            let pair = (c.clone(), a.clone());
                            if !self.dynamic_filters.contains(&pair) {
                                self.dynamic_filters.push(pair);
                            }
                        }
                    }
                }
                AbsValue::top()
            }
            ApiKind::Neutral => {
                // Program-defined method? Inline it. Otherwise an unknown
                // API: propagate taint conservatively.
                if let Some(ty) = self.dex.pools.find_type(&class) {
                    if let Some((def_ty, _)) = self.dex.resolve_method(ty, &name) {
                        if let Some(ci) = self.dex.classes.iter().position(|c| c.ty == def_ty) {
                            if let Some(mi) = self.dex.classes[ci]
                                .methods
                                .iter()
                                .position(|m| self.dex.pools.str_at(m.name) == name)
                            {
                                return self.analyze_method((ci, mi), args.to_vec(), depth + 1);
                            }
                        }
                    }
                }
                let mut v = AbsValue::top();
                for a in args {
                    v.taints.extend(a.taints.iter().copied());
                }
                v
            }
        }
    }

    fn apply_intent_config(&mut self, kind: IntentConfigKind, args: &[AbsValue]) {
        let Some(receiver) = args.first() else {
            return;
        };
        let intent_indices: Vec<usize> = receiver.intents.iter().copied().collect();
        let rest = &args[1..];
        let rest_strings = || -> Vec<String> {
            rest.iter()
                .flat_map(|a| a.strings.iter().cloned())
                .collect()
        };
        let rest_unknown = rest.iter().any(|a| a.unknown && a.strings.is_empty());
        for idx in intent_indices {
            let entry = &mut self.intents[idx];
            match kind {
                IntentConfigKind::Init => {}
                IntentConfigKind::SetAction => {
                    for s in rest_strings() {
                        entry.actions.insert(s);
                    }
                    if rest_unknown {
                        entry.actions_unknown = true;
                    }
                }
                IntentConfigKind::AddCategory => {
                    for s in rest_strings() {
                        entry.categories.insert(s);
                    }
                }
                IntentConfigKind::SetType => {
                    for s in rest_strings() {
                        entry.data_types.insert(s);
                    }
                }
                IntentConfigKind::SetData => {
                    for s in rest_strings() {
                        // The scheme is everything before the first ':'.
                        let scheme = s.split(':').next().unwrap_or(&s).to_string();
                        entry.data_schemes.insert(scheme);
                    }
                }
                IntentConfigKind::PutExtra => {
                    if let Some(key) = rest.first() {
                        for s in &key.strings {
                            entry.extra_keys.insert(s.clone());
                        }
                    }
                    for value in rest.iter().skip(1) {
                        entry.extra_taints.extend(value.taints.iter().copied());
                    }
                }
                IntentConfigKind::SetTarget => {
                    for s in rest_strings() {
                        if s.starts_with('L') && s.ends_with(';') {
                            entry.targets.insert(s);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use separ_android::api::class;
    use separ_android::types::perm;
    use separ_dex::build::ApkBuilder;
    use separ_dex::manifest::{ComponentDecl, ComponentKind};

    #[test]
    fn widening_caps_taints_and_intents() {
        // More than SET_CAP distinct taints widen to the full source set
        // (sound over-approximation, and a join fixpoint).
        let mut v = AbsValue::default();
        for &r in Resource::ALL.iter().filter(|r| r.is_source()).take(SET_CAP) {
            v.taints.insert(r);
        }
        let mut extra = AbsValue::default();
        extra.taints.insert(Resource::PhoneState);
        assert!(v.join(&extra));
        let all_sources: BTreeSet<Resource> = Resource::ALL
            .iter()
            .copied()
            .filter(|r| r.is_source())
            .collect();
        assert_eq!(v.taints, all_sources);
        assert!(!v.join(&extra), "widened taints are a fixpoint");

        // Intent references widen to "unknown object".
        let mut v = AbsValue::default();
        for i in 0..=SET_CAP {
            let mut o = AbsValue::default();
            o.intents.insert(i);
            v.join(&o);
        }
        assert!(v.intents.is_empty());
        assert!(v.unknown);
    }

    /// Builds Listing 1's LocationFinder: reads GPS, puts it into an
    /// implicit intent, startService.
    fn location_finder() -> Apk {
        let mut apk = ApkBuilder::new("com.example.navigator");
        apk.uses_permission(perm::ACCESS_FINE_LOCATION);
        apk.add_component(ComponentDecl::new(
            "Lcom/example/LocationFinder;",
            ComponentKind::Service,
        ));
        let mut cb = apk.class_extends("Lcom/example/LocationFinder;", class::SERVICE);
        let mut m = cb.method("onStartCommand", 3, false, false);
        let loc = m.reg();
        let intent = m.reg();
        let s = m.reg();
        m.invoke_virtual(
            class::LOCATION_MANAGER,
            "getLastKnownLocation",
            &[loc],
            true,
        );
        m.move_result(loc);
        m.new_instance(intent, class::INTENT);
        m.const_string(s, "showLoc");
        m.invoke_virtual(class::INTENT, "setAction", &[intent, s], false);
        m.const_string(s, "locationInfo");
        m.invoke_virtual(class::INTENT, "putExtra", &[intent, s, loc], false);
        m.invoke_virtual(class::CONTEXT, "startService", &[m.this(), intent], false);
        m.ret_void();
        m.finish();
        cb.finish();
        apk.finish()
    }

    #[test]
    fn listing1_extraction() {
        let apk = location_finder();
        let facts = analyze_component(&apk, "Lcom/example/LocationFinder;");
        // The Location -> ICC path is found.
        assert!(
            facts
                .flows
                .contains(&FlowPath::new(Resource::Location, Resource::Icc)),
            "flows: {:?}",
            facts.flows
        );
        // The sent intent has the right action and tainted extra.
        let sent: Vec<&AbstractIntent> = facts
            .intents
            .iter()
            .filter(|i| !i.sent_via.is_empty())
            .collect();
        assert_eq!(sent.len(), 1);
        assert!(sent[0].actions.contains("showLoc"));
        assert!(sent[0].extra_keys.contains("locationInfo"));
        assert!(sent[0].extra_taints.contains(&Resource::Location));
        assert!(sent[0].sent_via.contains(&IccMethod::StartService));
        // Location permission usage recorded.
        assert!(facts.used_permissions.contains(perm::ACCESS_FINE_LOCATION));
    }

    /// Builds Listing 2's MessageSender: reads intent extras, sends SMS,
    /// with an (uncalled) hasPermission check.
    fn message_sender(call_check: bool) -> Apk {
        let mut apk = ApkBuilder::new("com.example.messenger");
        apk.uses_permission(perm::SEND_SMS);
        let mut decl = ComponentDecl::new("Lcom/example/MessageSender;", ComponentKind::Service);
        decl.exported = Some(true);
        apk.add_component(decl);
        let mut cb = apk.class_extends("Lcom/example/MessageSender;", class::SERVICE);
        {
            let mut m = cb.method("onStartCommand", 3, false, false);
            let num = m.reg();
            let msg = m.reg();
            let k = m.reg();
            let intent = m.param(1);
            m.const_string(k, "PHONE_NUM");
            m.invoke_virtual(class::INTENT, "getStringExtra", &[intent, k], true);
            m.move_result(num);
            m.const_string(k, "TEXT_MSG");
            m.invoke_virtual(class::INTENT, "getStringExtra", &[intent, k], true);
            m.move_result(msg);
            if call_check {
                let ok = m.reg();
                let done = m.new_label();
                m.invoke_virtual(
                    "Lcom/example/MessageSender;",
                    "hasPermission",
                    &[m.this()],
                    true,
                );
                m.move_result(ok);
                m.if_eqz(ok, done);
                m.invoke_virtual(
                    "Lcom/example/MessageSender;",
                    "sendText",
                    &[m.this(), num, msg],
                    false,
                );
                m.bind(done);
            } else {
                m.invoke_virtual(
                    "Lcom/example/MessageSender;",
                    "sendText",
                    &[m.this(), num, msg],
                    false,
                );
            }
            m.ret_void();
            m.finish();
        }
        {
            let mut m = cb.method("sendText", 3, false, false);
            let mgr = m.reg();
            m.invoke_static(class::SMS_MANAGER, "getDefault", &[], true);
            m.move_result(mgr);
            m.invoke_virtual(
                class::SMS_MANAGER,
                "sendTextMessage",
                &[mgr, m.param(1), m.param(2)],
                false,
            );
            m.ret_void();
            m.finish();
        }
        {
            let mut m = cb.method("hasPermission", 1, false, true);
            let p = m.reg();
            let r = m.reg();
            m.const_string(p, perm::SEND_SMS);
            m.invoke_virtual(
                class::CONTEXT,
                "checkCallingPermission",
                &[m.this(), p],
                true,
            );
            m.move_result(r);
            m.ret(r);
            m.finish();
        }
        cb.finish();
        apk.finish()
    }

    #[test]
    fn listing2_finds_icc_to_sms_flow() {
        let apk = message_sender(false);
        let facts = analyze_component(&apk, "Lcom/example/MessageSender;");
        assert!(
            facts
                .flows
                .contains(&FlowPath::new(Resource::Icc, Resource::Sms)),
            "flows: {:?}",
            facts.flows
        );
        // hasPermission is never called: the check is NOT recorded.
        assert!(facts.dynamic_checks.is_empty());
        assert!(facts.used_permissions.contains(perm::SEND_SMS));
    }

    #[test]
    fn reachable_permission_check_is_recorded() {
        let apk = message_sender(true);
        let facts = analyze_component(&apk, "Lcom/example/MessageSender;");
        assert!(facts.dynamic_checks.contains(perm::SEND_SMS));
        // The flow still exists on the permission-granted path.
        assert!(facts
            .flows
            .contains(&FlowPath::new(Resource::Icc, Resource::Sms)));
    }

    #[test]
    fn dead_branch_leak_is_pruned() {
        // const v0, 0; if-eqz v0 -> skip; <leak>; skip: return
        let mut apk = ApkBuilder::new("t");
        apk.add_component(ComponentDecl::new("LDead;", ComponentKind::Service));
        let mut cb = apk.class_extends("LDead;", class::SERVICE);
        let mut m = cb.method("onStartCommand", 3, false, false);
        let flag = m.reg();
        let loc = m.reg();
        let skip = m.new_label();
        m.const_int(flag, 0);
        m.if_eqz(flag, skip);
        // Unreachable leak:
        m.invoke_virtual(
            class::LOCATION_MANAGER,
            "getLastKnownLocation",
            &[loc],
            true,
        );
        m.move_result(loc);
        m.invoke_virtual(class::SMS_MANAGER, "sendTextMessage", &[loc], false);
        m.bind(skip);
        m.ret_void();
        m.finish();
        cb.finish();
        let apk = apk.finish();
        let facts = analyze_component(&apk, "LDead;");
        assert!(
            facts.flows.is_empty(),
            "dead leak must be ignored: {:?}",
            facts.flows
        );
    }

    #[test]
    fn taint_survives_field_round_trip() {
        let mut apk = ApkBuilder::new("t");
        apk.add_component(ComponentDecl::new("LFieldy;", ComponentKind::Service));
        let mut cb = apk.class_extends("LFieldy;", class::SERVICE);
        cb.field("stash", false);
        let mut m = cb.method("onStartCommand", 3, false, false);
        let v = m.reg();
        m.invoke_virtual(class::TELEPHONY_MANAGER, "getDeviceId", &[v], true);
        m.move_result(v);
        m.iput(v, m.this(), "LFieldy;", "stash");
        m.iget(v, m.this(), "LFieldy;", "stash");
        m.invoke_virtual(class::LOG, "d", &[v], false);
        m.ret_void();
        m.finish();
        cb.finish();
        let apk = apk.finish();
        let facts = analyze_component(&apk, "LFieldy;");
        assert!(facts
            .flows
            .contains(&FlowPath::new(Resource::DeviceId, Resource::Log)));
    }

    #[test]
    fn dynamic_register_is_flagged_but_not_modelled() {
        let mut apk = ApkBuilder::new("t");
        apk.add_component(ComponentDecl::new("LDyn;", ComponentKind::Activity));
        let mut cb = apk.class_extends("LDyn;", class::ACTIVITY);
        let mut m = cb.method("onCreate", 1, false, false);
        let r = m.reg();
        m.invoke_virtual(class::CONTEXT, "registerReceiver", &[m.this(), r], true);
        m.ret_void();
        m.finish();
        cb.finish();
        let apk = apk.finish();
        let facts = analyze_component(&apk, "LDyn;");
        assert!(facts.registers_dynamically);
    }

    #[test]
    fn taint_propagates_through_helper_methods() {
        let mut apk = ApkBuilder::new("t");
        apk.add_component(ComponentDecl::new("LHelperApp;", ComponentKind::Service));
        let mut cb = apk.class_extends("LHelperApp;", class::SERVICE);
        {
            let mut m = cb.method("onStartCommand", 3, false, false);
            let v = m.reg();
            m.invoke_virtual(class::LOCATION_MANAGER, "getLastKnownLocation", &[v], true);
            m.move_result(v);
            m.invoke_virtual("LHelperApp;", "launder", &[m.this(), v], true);
            m.move_result(v);
            m.invoke_virtual(class::LOG, "d", &[v], false);
            m.ret_void();
            m.finish();
        }
        {
            // launder(x) { return wrap(x) } ; wrap(x) { return x }
            let mut m = cb.method("launder", 2, false, true);
            let r = m.reg();
            m.invoke_virtual("LHelperApp;", "wrap", &[m.this(), m.param(1)], true);
            m.move_result(r);
            m.ret(r);
            m.finish();
            let mut m = cb.method("wrap", 2, false, true);
            m.ret(m.param(1));
            m.finish();
        }
        cb.finish();
        let apk = apk.finish();
        let facts = analyze_component(&apk, "LHelperApp;");
        assert!(facts
            .flows
            .contains(&FlowPath::new(Resource::Location, Resource::Log)));
    }

    #[test]
    fn explicit_target_extraction() {
        let mut apk = ApkBuilder::new("t");
        apk.add_component(ComponentDecl::new("LSender;", ComponentKind::Activity));
        let mut cb = apk.class_extends("LSender;", class::ACTIVITY);
        let mut m = cb.method("onCreate", 1, false, false);
        let i = m.reg();
        let t = m.reg();
        m.new_instance(i, class::INTENT);
        m.const_string(t, "Lcom/other/Target;");
        m.invoke_virtual(class::INTENT, "setClassName", &[i, t], false);
        m.invoke_virtual(
            class::ACTIVITY,
            "startActivityForResult",
            &[m.this(), i],
            false,
        );
        m.ret_void();
        m.finish();
        cb.finish();
        let apk = apk.finish();
        let facts = analyze_component(&apk, "LSender;");
        let sent: Vec<_> = facts
            .intents
            .iter()
            .filter(|x| !x.sent_via.is_empty())
            .collect();
        assert_eq!(sent.len(), 1);
        assert!(sent[0].targets.contains("Lcom/other/Target;"));
        assert!(sent[0]
            .sent_via
            .contains(&IccMethod::StartActivityForResult));
    }
}
