//! The abstract interpreter at the core of AME.
//!
//! One engine performs, simultaneously and per component:
//!
//! * **constant string/int propagation** (for Intent actions, extra keys,
//!   permission-check arguments) — flow-sensitive, with definite-constant
//!   branch pruning, so leaks guarded by dead branches are correctly
//!   ignored;
//! * **Intent tracking** — allocation-site-based abstract Intent objects
//!   whose actions/categories/data/targets/extras accumulate
//!   configuration-API effects, with one model entity emitted per
//!   disambiguated value as the paper prescribes;
//! * **taint analysis** — flow-, field- and context-sensitive propagation
//!   from source APIs (and Intent reads, the ICC source) to sink APIs (and
//!   Intent sends, the ICC sink). Context sensitivity comes from analyzing
//!   callees under their actual abstract arguments (memoized), which
//!   subsumes k-limited call strings for the app sizes involved. The
//!   analysis is deliberately **path-insensitive** (both arms of
//!   non-constant branches are joined), like the paper's.
//!
//! Dynamically registered broadcast receivers are observed but their
//! filters are *not* modelled — reproducing the paper's two ICC-Bench
//! false negatives.
//!
//! # Method summaries
//!
//! The interpreter runs each component's entry points repeatedly (once per
//! bounded field-fixpoint round). The reference behavior —
//! [`AnalysisStrategy::PerContext`] — clears its `(method, abstract args)`
//! memo table before every entry point, re-analyzing every reachable
//! method per run. The default [`AnalysisStrategy::Summaries`] keeps those
//! entries as *validated summaries* instead: each records the field/intent
//! state it read (with versions), the methods its computation entered, and
//! the recursive calls its computation saw blocked. A later run may reuse
//! the entry — skipping the whole subtree — exactly when replaying it
//! would reproduce the reference result: same inlining depth, all read
//! dependencies unchanged, every previously-entered callee currently
//! enterable and every externally-blocked callee currently blocked. All
//! interpreter side effects (flows, intent configuration, permission uses)
//! are monotone inserts derived from the arguments and recorded
//! dependencies, so a validated skip leaves the engine state exactly as a
//! re-execution would. The differential suite in
//! `tests/extraction_equivalence.rs` checks the two strategies against
//! each other on randomized apps.

use std::collections::{BTreeSet, HashMap};

use separ_android::api::{self, ApiKind, IccMethod, IntentConfigKind};
use separ_android::types::{FlowPath, Resource};
use separ_dex::instr::{BinOp, Instr};
use separ_dex::program::{Apk, Dex};
use separ_dex::refs::{MethodId, StrId};

use crate::callgraph::MethodNode;
use crate::domain::{ResourceSet, SmallSet, Val};
use crate::index::ApkIndex;

/// Maximum inlining depth.
const MAX_DEPTH: usize = 12;

/// An abstract Intent object (allocation-site based).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct AbstractIntent {
    /// Possible action strings.
    pub actions: BTreeSet<String>,
    /// Whether an action was set to a statically unknown value.
    pub actions_unknown: bool,
    /// Categories added.
    pub categories: BTreeSet<String>,
    /// MIME types set.
    pub data_types: BTreeSet<String>,
    /// Data schemes set.
    pub data_schemes: BTreeSet<String>,
    /// Explicit target classes set.
    pub targets: BTreeSet<String>,
    /// Extra keys attached.
    pub extra_keys: BTreeSet<String>,
    /// Taints flowing into extras.
    pub extra_taints: BTreeSet<Resource>,
    /// ICC methods through which this intent was observed being sent.
    pub sent_via: BTreeSet<IccMethod>,
    /// Whether this is the component's *received* intent.
    pub is_received: bool,
}

/// How the interpreter reuses work across entry points and fixpoint
/// rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnalysisStrategy {
    /// Memoized per-method summaries, revalidated across runs against
    /// recorded field/intent dependencies and the recursion context.
    /// Produces the same facts as [`AnalysisStrategy::PerContext`] (the
    /// differential equivalence suite enforces this).
    #[default]
    Summaries,
    /// Re-analyze every method per entry-point run (the memo table is
    /// cleared between runs). Retained as the reference implementation
    /// for the differential harness.
    PerContext,
}

/// Tool-profile knobs, used to reproduce comparator tools' documented
/// blind spots (the Table I baselines) as genuine analyzer restrictions.
#[derive(Debug, Clone, Copy)]
pub struct AnalysisOptions {
    /// Prune branches whose condition is a definite constant (SEPAR does;
    /// DidFail-like tools do not, producing false positives on
    /// unreachable-leak decoys).
    pub prune_dead_branches: bool,
    /// Model `registerReceiver` filters statically (AmanDroid-like tools
    /// do; SEPAR's extractor does not — its two ICC-Bench false
    /// negatives).
    pub model_dynamic_receivers: bool,
    /// Work-reuse strategy; changes performance, never extracted facts
    /// (apart from the visit/hit counters).
    pub strategy: AnalysisStrategy,
}

impl Default for AnalysisOptions {
    fn default() -> AnalysisOptions {
        AnalysisOptions {
            prune_dead_branches: true,
            model_dynamic_receivers: false,
            strategy: AnalysisStrategy::Summaries,
        }
    }
}

/// The result of analyzing one component.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ComponentFacts {
    /// Sensitive source→sink paths.
    pub flows: BTreeSet<FlowPath>,
    /// The abstract intent table (index 0 is the received intent).
    pub intents: Vec<AbstractIntent>,
    /// Permissions checked via `checkCallingPermission` on reachable paths.
    pub dynamic_checks: BTreeSet<String>,
    /// Permissions exercised by reachable API calls.
    pub used_permissions: BTreeSet<String>,
    /// Whether `registerReceiver` is reachable.
    pub registers_dynamically: bool,
    /// Dynamically registered `(receiver class, action)` pairs — only
    /// populated when [`AnalysisOptions::model_dynamic_receivers`] is set.
    pub dynamic_filters: Vec<(String, String)>,
    /// Instructions abstractly visited.
    pub instructions_visited: u64,
    /// Method analyses answered from a (validated) summary.
    pub summary_hits: u64,
    /// Method analyses that ran the interpreter.
    pub summary_misses: u64,
}

/// Index of the received intent in every intent table.
pub const RECEIVED_INTENT: usize = 0;

/// Analyzes one component of an app: all its lifecycle entry points.
pub fn analyze_component(apk: &Apk, component_class: &str) -> ComponentFacts {
    analyze_component_with(apk, component_class, AnalysisOptions::default())
}

/// Analyzes one component under an explicit tool profile.
pub fn analyze_component_with(
    apk: &Apk,
    component_class: &str,
    options: AnalysisOptions,
) -> ComponentFacts {
    let index = ApkIndex::new(apk);
    analyze_component_indexed(apk, &index, component_class, options)
}

/// Analyzes one component against a prebuilt per-app index (the extractor
/// builds the index once and shares it across components).
pub(crate) fn analyze_component_indexed(
    apk: &Apk,
    index: &ApkIndex,
    component_class: &str,
    options: AnalysisOptions,
) -> ComponentFacts {
    let mut engine = Engine::new(apk, index, options);
    let dex = &apk.dex;
    let Some(decl) = apk.manifest.component(component_class) else {
        return engine.into_facts();
    };
    let Some(ty) = dex.pools.find_type(component_class) else {
        return engine.into_facts();
    };
    let Some(&ci) = index.class_of_type.get(&ty) else {
        return engine.into_facts();
    };
    // Iterate to a (bounded) fixpoint over the field state so that values
    // stored by one entry point are visible to loads in another.
    for _round in 0..3 {
        let before = engine.fields_fingerprint();
        for &ep in api::entry_points(decl.kind) {
            let Some(mi) = dex.classes[ci]
                .methods
                .iter()
                .position(|m| dex.pools.str_at(m.name) == ep)
            else {
                continue;
            };
            let method = &dex.classes[ci].methods[mi];
            let mut args: Vec<Val> = Vec::new();
            if !method.is_static {
                args.push(Val::top()); // `this`
            }
            while args.len() < method.num_params as usize {
                // Entry-point parameters beyond the receiver may carry the
                // received intent.
                let mut v = Val::default();
                v.intents.insert(RECEIVED_INTENT as u32);
                v.unknown = true;
                args.push(v);
            }
            engine.begin_run();
            let _ = engine.analyze_method((ci, mi), &args, 0);
        }
        if engine.fields_fingerprint() == before {
            break;
        }
    }
    engine.into_facts()
}

/// Dependency key bit marking an abstract-intent (vs field) dependency.
const INTENT_DEP_BIT: u32 = 0x8000_0000;
/// Blocker position marking a requirement imported from a summary whose
/// blocker is no longer on the stack: external to every enclosing frame.
const ALWAYS_EXTERNAL: u32 = u32::MAX;

fn node_key(node: MethodNode) -> u64 {
    ((node.0 as u64) << 32) | node.1 as u64
}

/// FNV-1a fingerprint of an abstract argument vector (memo-bucket key;
/// collisions are resolved by full slice comparison in the bucket).
fn args_fingerprint(args: &[Val]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ args.len() as u64;
    for v in args {
        v.fingerprint(&mut h);
    }
    h
}

fn icc_bit(m: IccMethod) -> u16 {
    1u16 << (m as u16)
}

/// Internal abstract Intent state: interned ids and bitmasks; converted
/// to the public [`AbstractIntent`] once per component.
#[derive(Clone, Default)]
struct IntentState {
    actions: SmallSet<u32>,
    actions_unknown: bool,
    categories: SmallSet<u32>,
    data_types: SmallSet<u32>,
    data_schemes: BTreeSet<String>,
    targets: SmallSet<u32>,
    extra_keys: SmallSet<u32>,
    extra_taints: ResourceSet,
    sent_via: u16,
    is_received: bool,
}

/// A memoized method analysis with everything needed to decide, in a
/// later run, whether replaying it would reproduce the reference result.
struct MemoEntry {
    ret: Val,
    /// Inlining depth the entry was computed at (the `MAX_DEPTH` cutoff
    /// makes results depth-dependent).
    depth: u32,
    /// Last run in which this entry was computed or validated; entries
    /// from the current run are reused unconditionally, matching the
    /// reference memo.
    validated_run: u64,
    /// Field/intent versions read by the computation (transitively).
    deps: Vec<(u32, u64)>,
    /// Methods the computation entered or reused (transitively); each
    /// must not be in progress for a replay to take the same path.
    entered: SmallSet<u64>,
    /// Methods whose calls were blocked by an activation *outside* this
    /// computation; each must still be in progress for a replay to block
    /// them again.
    ext_blocked: SmallSet<u64>,
}

/// One memo bucket: the (argument-vector, entry) variants sharing a
/// (method node, argument fingerprint) key.
type MemoBucket = Vec<(Vec<Val>, MemoEntry)>;

/// Per-activation dependency/footprint accumulator (mirrors the
/// interpreter's call stack).
struct DepFrame {
    node: u64,
    deps: Vec<(u32, u64)>,
    entered: SmallSet<u64>,
    /// Blocked calls as (callee, blocker stack position); positions at or
    /// above the frame's own are internal and vanish when it pops.
    blocked: Vec<(u64, u32)>,
}

struct Engine<'a> {
    dex: &'a Dex,
    index: &'a ApkIndex,
    options: AnalysisOptions,
    flows: BTreeSet<FlowPath>,
    intents: Vec<IntentState>,
    intent_versions: Vec<u64>,
    intent_sites: HashMap<(u64, u32), u32>,
    dynamic_checks: SmallSet<u32>,
    used_permissions: BTreeSet<&'static str>,
    registers_dynamically: bool,
    dynamic_filters: Vec<(String, String)>,
    fields: Vec<Option<Val>>,
    field_versions: Vec<u64>,
    /// Memoized analyses keyed by (method node, argument fingerprint),
    /// each bucket a short list of (argument-vector, entry) variants: a
    /// lookup walks the arguments once to fingerprint them and compares
    /// slices only within the (almost always singleton) bucket, so the
    /// hot path never allocates.
    memo: HashMap<(u64, u64), MemoBucket>,
    dep_stack: Vec<DepFrame>,
    run: u64,
    visited: u64,
    summary_hits: u64,
    summary_misses: u64,
}

#[derive(Clone, PartialEq, Debug)]
struct Frame {
    regs: Vec<Val>,
    pending: Val,
}

impl Frame {
    fn join(&mut self, other: &Frame) -> bool {
        let mut changed = false;
        for (a, b) in self.regs.iter_mut().zip(&other.regs) {
            changed |= a.join(b);
        }
        changed |= self.pending.join(&other.pending);
        changed
    }
}

impl<'a> Engine<'a> {
    fn new(apk: &'a Apk, index: &'a ApkIndex, options: AnalysisOptions) -> Engine<'a> {
        let received = IntentState {
            is_received: true,
            ..Default::default()
        };
        let num_fields = apk.dex.pools.num_fields();
        Engine {
            dex: &apk.dex,
            index,
            options,
            flows: BTreeSet::new(),
            intents: vec![received],
            intent_versions: vec![0],
            intent_sites: HashMap::new(),
            dynamic_checks: SmallSet::default(),
            used_permissions: BTreeSet::new(),
            registers_dynamically: false,
            dynamic_filters: Vec::new(),
            fields: vec![None; num_fields],
            field_versions: vec![0; num_fields],
            memo: HashMap::new(),
            dep_stack: Vec::new(),
            run: 0,
            visited: 0,
            summary_hits: 0,
            summary_misses: 0,
        }
    }

    /// Starts one entry-point run: the reference strategy forgets all
    /// memoized analyses; the summary strategy keeps them for validation.
    fn begin_run(&mut self) {
        self.run += 1;
        if self.options.strategy == AnalysisStrategy::PerContext {
            self.memo.clear();
        }
    }

    fn into_facts(self) -> ComponentFacts {
        let pools = &self.dex.pools;
        let resolve = |set: &SmallSet<u32>| -> BTreeSet<String> {
            set.iter()
                .map(|id| pools.str_at(StrId::from_index(id as usize)).to_string())
                .collect()
        };
        let intents = self
            .intents
            .iter()
            .map(|st| AbstractIntent {
                actions: resolve(&st.actions),
                actions_unknown: st.actions_unknown,
                categories: resolve(&st.categories),
                data_types: resolve(&st.data_types),
                data_schemes: st.data_schemes.clone(),
                targets: resolve(&st.targets),
                extra_keys: resolve(&st.extra_keys),
                extra_taints: st.extra_taints.to_btree(),
                sent_via: IccMethod::ALL
                    .iter()
                    .copied()
                    .filter(|&m| st.sent_via & icc_bit(m) != 0)
                    .collect(),
                is_received: st.is_received,
            })
            .collect();
        ComponentFacts {
            flows: self.flows,
            intents,
            dynamic_checks: resolve(&self.dynamic_checks),
            used_permissions: self
                .used_permissions
                .iter()
                .map(|s| (*s).to_string())
                .collect(),
            registers_dynamically: self.registers_dynamically,
            dynamic_filters: self.dynamic_filters,
            instructions_visited: self.visited,
            summary_hits: self.summary_hits,
            summary_misses: self.summary_misses,
        }
    }

    fn fields_fingerprint(&self) -> usize {
        self.fields
            .iter()
            .flatten()
            .map(|v| {
                v.strings.len()
                    + v.ints.len()
                    + v.taints.len()
                    + v.intents.len()
                    + usize::from(v.unknown)
            })
            .sum::<usize>()
            + self.fields.iter().filter(|f| f.is_some()).count() * 1000
            + self.flows.len() * 7
            + self
                .intents
                .iter()
                .map(|i| {
                    i.actions.len()
                        + i.categories.len()
                        + i.extra_keys.len()
                        + i.extra_taints.len()
                        + i.targets.len()
                        + i.sent_via.count_ones() as usize
                })
                .sum::<usize>()
                * 13
    }

    fn stack_pos(&self, node: u64) -> Option<u32> {
        self.dep_stack
            .iter()
            .position(|f| f.node == node)
            .map(|p| p as u32)
    }

    fn dep_version(&self, key: u32) -> u64 {
        if key & INTENT_DEP_BIT != 0 {
            self.intent_versions[(key & !INTENT_DEP_BIT) as usize]
        } else {
            self.field_versions[key as usize]
        }
    }

    /// Reads a field's abstract value, recording the dependency in the
    /// current activation (absent fields read as top; their version still
    /// guards against later first writes).
    fn read_field(&mut self, idx: usize) -> Val {
        let version = self.field_versions[idx];
        if let Some(f) = self.dep_stack.last_mut() {
            f.deps.push((idx as u32, version));
        }
        self.fields[idx].clone().unwrap_or_else(Val::top)
    }

    /// Joins a value into a field, bumping its version when the readable
    /// state changes (including the first write of the bottom value,
    /// which turns reads from top into the joined state).
    fn write_field(&mut self, idx: usize, v: &Val) {
        let slot = &mut self.fields[idx];
        let newly = slot.is_none();
        let changed = slot.get_or_insert_with(Val::default).join(v);
        if newly || changed {
            self.field_versions[idx] += 1;
        }
    }

    fn record_intent_dep(&mut self, idx: usize) {
        let version = self.intent_versions[idx];
        if let Some(f) = self.dep_stack.last_mut() {
            f.deps.push((INTENT_DEP_BIT | idx as u32, version));
        }
    }

    /// Analyzes one method under abstract arguments; returns the abstract
    /// return value.
    fn analyze_method(&mut self, node: MethodNode, args: &[Val], depth: usize) -> Val {
        if depth > MAX_DEPTH {
            return Val::top();
        }
        let nkey = node_key(node);
        let mkey = (nkey, args_fingerprint(args));
        if let Some(variants) = self.memo.get(&mkey) {
            if let Some(entry) = variants
                .iter()
                .find(|(a, _)| a.as_slice() == args)
                .map(|(_, e)| e)
            {
                // Entries touched this run are reused unconditionally (the
                // reference memo does the same within a run). Older entries
                // must prove a replay would reproduce the reference result.
                let valid = entry.validated_run == self.run
                    || (entry.depth == depth as u32
                        && self.stack_pos(nkey).is_none()
                        && entry.deps.iter().all(|&(d, v)| self.dep_version(d) == v)
                        && entry.entered.iter().all(|x| self.stack_pos(x).is_none())
                        && entry
                            .ext_blocked
                            .iter()
                            .all(|x| self.stack_pos(x).is_some()));
                if valid {
                    self.summary_hits += 1;
                    let run = self.run;
                    // Disjoint field borrows: the entry stays borrowed from
                    // `memo` while the parent frame (a different field) is
                    // updated, so nothing is cloned on the hit path.
                    let entry = self
                        .memo
                        .get_mut(&mkey)
                        .and_then(|vs| vs.iter_mut().find(|(a, _)| a.as_slice() == args))
                        .map(|(_, e)| e)
                        .expect("entry present");
                    entry.validated_run = run;
                    let ret = entry.ret.clone();
                    if !self.dep_stack.is_empty() {
                        let blocked: Vec<(u64, u32)> = entry
                            .ext_blocked
                            .iter()
                            .map(|x| {
                                let pos = self
                                    .dep_stack
                                    .iter()
                                    .position(|f| f.node == x)
                                    .map(|p| p as u32);
                                (x, pos.unwrap_or(ALWAYS_EXTERNAL))
                            })
                            .collect();
                        let parent = self.dep_stack.last_mut().expect("non-empty stack");
                        parent.deps.extend_from_slice(&entry.deps);
                        parent.entered.merge(&entry.entered);
                        parent.entered.insert(nkey);
                        parent.blocked.extend_from_slice(&blocked);
                    }
                    return ret;
                }
            }
        }
        if let Some(q) = self.stack_pos(nkey) {
            // Recursion breaker. Record the blocked call (and its
            // blocker's position) in the enclosing activation.
            if let Some(f) = self.dep_stack.last_mut() {
                f.blocked.push((nkey, q));
            }
            return Val::top();
        }
        self.summary_misses += 1;
        self.dep_stack.push(DepFrame {
            node: nkey,
            deps: Vec::new(),
            entered: SmallSet::default(),
            blocked: Vec::new(),
        });
        let ret = self.interpret(node, args, depth);
        let frame = self.dep_stack.pop().expect("frame pushed");
        let p = self.dep_stack.len() as u32;
        // Blocked calls whose blocker sat within this activation replay
        // identically; only externally-blocked ones become requirements.
        let mut ext_blocked = SmallSet::default();
        let mut keep_blocked: Vec<(u64, u32)> = Vec::new();
        for (x, q) in frame.blocked {
            if q != ALWAYS_EXTERNAL && q >= p {
                continue;
            }
            ext_blocked.insert(x);
            keep_blocked.push((x, q));
        }
        let mut deps = frame.deps;
        deps.sort_unstable();
        deps.dedup();
        if let Some(parent) = self.dep_stack.last_mut() {
            parent.deps.extend_from_slice(&deps);
            parent.entered.merge(&frame.entered);
            parent.entered.insert(nkey);
            parent.blocked.extend_from_slice(&keep_blocked);
        }
        let entry = MemoEntry {
            ret: ret.clone(),
            depth: depth as u32,
            validated_run: self.run,
            deps,
            entered: frame.entered,
            ext_blocked,
        };
        let variants = self.memo.entry(mkey).or_default();
        if let Some(slot) = variants.iter_mut().find(|(a, _)| a.as_slice() == args) {
            slot.1 = entry;
        } else {
            variants.push((args.to_vec(), entry));
        }
        ret
    }

    /// Runs the flow-sensitive worklist interpretation of one method body.
    fn interpret(&mut self, node: MethodNode, args: &[Val], depth: usize) -> Val {
        let dex = self.dex;
        let nk = node_key(node);
        let method = &dex.classes[node.0].methods[node.1];
        let code = &method.code;
        let num_regs = method.num_registers as usize;
        let first_param = num_regs - method.num_params as usize;

        let mut init = Frame {
            regs: vec![Val::default(); num_regs],
            pending: Val::default(),
        };
        for (i, v) in args.iter().enumerate().take(method.num_params as usize) {
            init.regs[first_param + i] = v.clone();
        }
        let mut ret = Val::default();
        if code.is_empty() {
            return ret;
        }
        let mut states: Vec<Option<Frame>> = vec![None; code.len()];
        states[0] = Some(init);
        let mut worklist = vec![0usize];
        // Joins a state into a successor, re-queuing it on change. Takes
        // the state by value so the last successor of a visit moves the
        // working frame instead of cloning it.
        fn flow_into(
            states: &mut [Option<Frame>],
            worklist: &mut Vec<usize>,
            s: usize,
            state: Frame,
        ) {
            if s >= states.len() {
                return;
            }
            let changed = match &mut states[s] {
                Some(existing) => existing.join(&state),
                slot @ None => {
                    *slot = Some(state);
                    true
                }
            };
            if changed {
                worklist.push(s);
            }
        }
        while let Some(pc) = worklist.pop() {
            // One clone per visit: every instruction reads its operands
            // before writing its destination, so the working frame can
            // serve as both pre- and post-state.
            let Some(mut next) = states[pc].clone() else {
                continue;
            };
            self.visited += 1;
            let instr = &code[pc];
            // Fall-through / branch successors (at most two).
            let mut succ1: Option<usize> = None;
            let mut succ2: Option<usize> = None;
            match instr {
                Instr::Nop => succ1 = Some(pc + 1),
                Instr::ConstString { dst, value } => {
                    next.regs[dst.index()] = Val::of_string(value.index() as u32);
                    succ1 = Some(pc + 1);
                }
                Instr::ConstInt { dst, value } => {
                    next.regs[dst.index()] = Val::of_int(*value);
                    succ1 = Some(pc + 1);
                }
                Instr::ConstNull { dst } => {
                    next.regs[dst.index()] = Val::default();
                    succ1 = Some(pc + 1);
                }
                Instr::Move { dst, src } => {
                    next.regs[dst.index()] = next.regs[src.index()].clone();
                    succ1 = Some(pc + 1);
                }
                Instr::NewInstance { dst, class } => {
                    if Some(*class) == self.index.intent_type {
                        let site = (nk, pc as u32);
                        let idx = match self.intent_sites.get(&site) {
                            Some(&i) => i,
                            None => {
                                self.intents.push(IntentState::default());
                                self.intent_versions.push(0);
                                let i = (self.intents.len() - 1) as u32;
                                self.intent_sites.insert(site, i);
                                i
                            }
                        };
                        let mut v = Val::default();
                        v.intents.insert(idx);
                        next.regs[dst.index()] = v;
                    } else {
                        next.regs[dst.index()] = Val::top();
                    }
                    succ1 = Some(pc + 1);
                }
                Instr::Invoke {
                    method: m, args, ..
                } => {
                    let arg_values: Vec<Val> =
                        args.iter().map(|r| next.regs[r.index()].clone()).collect();
                    next.pending = self.abstract_invoke(*m, &arg_values, depth);
                    succ1 = Some(pc + 1);
                }
                Instr::MoveResult { dst } => {
                    next.regs[dst.index()] = std::mem::take(&mut next.pending);
                    succ1 = Some(pc + 1);
                }
                Instr::IGet { dst, object, field } => {
                    let _ = object;
                    next.regs[dst.index()] = self.read_field(field.index());
                    succ1 = Some(pc + 1);
                }
                Instr::IPut { src, object, field } => {
                    let _ = object;
                    self.write_field(field.index(), &next.regs[src.index()]);
                    succ1 = Some(pc + 1);
                }
                Instr::SGet { dst, field } => {
                    next.regs[dst.index()] = self.read_field(field.index());
                    succ1 = Some(pc + 1);
                }
                Instr::SPut { src, field } => {
                    self.write_field(field.index(), &next.regs[src.index()]);
                    succ1 = Some(pc + 1);
                }
                Instr::IfEqz { reg, target } => {
                    match next.regs[reg.index()]
                        .definite_nonzero()
                        .filter(|_| self.options.prune_dead_branches)
                    {
                        Some(true) => succ1 = Some(pc + 1),
                        Some(false) => succ1 = Some(*target as usize),
                        None => {
                            succ1 = Some(pc + 1);
                            succ2 = Some(*target as usize);
                        }
                    }
                }
                Instr::IfNez { reg, target } => {
                    match next.regs[reg.index()]
                        .definite_nonzero()
                        .filter(|_| self.options.prune_dead_branches)
                    {
                        Some(true) => succ1 = Some(*target as usize),
                        Some(false) => succ1 = Some(pc + 1),
                        None => {
                            succ1 = Some(pc + 1);
                            succ2 = Some(*target as usize);
                        }
                    }
                }
                Instr::Goto { target } => succ1 = Some(*target as usize),
                Instr::BinOp { op, dst, lhs, rhs } => {
                    let l = &next.regs[lhs.index()];
                    let r = &next.regs[rhs.index()];
                    let mut v = Val::default();
                    if l.unknown || r.unknown || l.ints.is_empty() || r.ints.is_empty() {
                        v.unknown = true;
                    } else {
                        for a in l.ints.iter() {
                            for b in r.ints.iter() {
                                v.ints.insert(match op {
                                    BinOp::Add => a.wrapping_add(b),
                                    BinOp::Sub => a.wrapping_sub(b),
                                    BinOp::Mul => a.wrapping_mul(b),
                                    BinOp::CmpEq => i64::from(a == b),
                                });
                            }
                        }
                        v.widen();
                    }
                    // Taints union *after* widening, without re-widening
                    // (reference behavior).
                    v.taints.union(l.taints);
                    v.taints.union(r.taints);
                    next.regs[dst.index()] = v;
                    succ1 = Some(pc + 1);
                }
                Instr::ReturnVoid => {}
                Instr::Return { reg } => {
                    ret.join(&next.regs[reg.index()]);
                }
                Instr::Throw { .. } => {}
            }
            match (succ1, succ2) {
                (Some(a), Some(b)) => {
                    flow_into(&mut states, &mut worklist, a, next.clone());
                    flow_into(&mut states, &mut worklist, b, next);
                }
                (Some(a), None) => flow_into(&mut states, &mut worklist, a, next),
                (None, _) => {}
            }
        }
        ret
    }

    /// Handles one (abstract) invocation: framework semantics or callee
    /// inlining.
    fn abstract_invoke(&mut self, method: MethodId, args: &[Val], depth: usize) -> Val {
        let info = self.index.invoke[method.index()];
        if let Some(p) = info.permission {
            self.used_permissions.insert(p);
        }

        match info.kind {
            ApiKind::Source(resource) => {
                let mut v = Val::top();
                v.taints.insert(resource);
                v
            }
            ApiKind::Sink(resource) => {
                for a in args {
                    for t in a.taints.iter() {
                        self.flows.insert(FlowPath::new(t, resource));
                    }
                    // Anything read from an Intent counts as ICC-sourced
                    // even without an explicit read call on record.
                    for i in a.intents.iter() {
                        if self.intents[i as usize].is_received {
                            self.flows.insert(FlowPath::new(Resource::Icc, resource));
                        }
                    }
                }
                Val::top()
            }
            ApiKind::Icc(icc) => {
                let bit = icc_bit(icc);
                for a in args {
                    for idx in a.intents.iter() {
                        let idx = idx as usize;
                        self.record_intent_dep(idx);
                        let entry = &mut self.intents[idx];
                        entry.sent_via |= bit;
                        // Data leaving in an Intent is an ICC-sink flow.
                        let taints = entry.extra_taints;
                        for t in taints.iter() {
                            self.flows.insert(FlowPath::new(t, Resource::Icc));
                        }
                    }
                }
                Val::top()
            }
            ApiKind::IntentRead => {
                if info.is_get_intent {
                    // Returns the component's received intent itself.
                    let mut v = Val::top();
                    v.intents.insert(RECEIVED_INTENT as u32);
                    return v;
                }
                let mut v = Val::top();
                let from_received = args
                    .iter()
                    .flat_map(|a| a.intents.iter())
                    .any(|i| self.intents[i as usize].is_received);
                if from_received {
                    v.taints.insert(Resource::Icc);
                }
                v
            }
            ApiKind::IntentConfig(kind) => {
                self.apply_intent_config(kind, args);
                Val::default()
            }
            ApiKind::PermissionCheck => {
                for a in &args[1.min(args.len())..] {
                    for s in a.strings.iter() {
                        self.dynamic_checks.insert(s);
                    }
                }
                Val::top()
            }
            ApiKind::DynamicRegister => {
                // SEPAR's extractor observes the call but does NOT model
                // the attached filter (the paper's documented limitation);
                // AmanDroid-profile runs do.
                self.registers_dynamically = true;
                if self.options.model_dynamic_receivers {
                    let dex = self.dex;
                    let resolve_sorted = |a: Option<&Val>| -> Vec<&str> {
                        let mut out: Vec<&str> = a
                            .map(|a| {
                                a.strings
                                    .iter()
                                    .map(|id| dex.pools.str_at(StrId::from_index(id as usize)))
                                    .collect()
                            })
                            .unwrap_or_default();
                        out.sort_unstable();
                        out
                    };
                    let classes = resolve_sorted(args.get(1));
                    let actions = resolve_sorted(args.get(2));
                    for c in &classes {
                        for a in &actions {
                            let pair = (c.to_string(), a.to_string());
                            if !self.dynamic_filters.contains(&pair) {
                                self.dynamic_filters.push(pair);
                            }
                        }
                    }
                }
                Val::top()
            }
            ApiKind::Neutral => {
                // Program-defined method? Inline it. Otherwise an unknown
                // API: propagate taint conservatively.
                if let Some(target) = info.target {
                    return self.analyze_method(target, args, depth + 1);
                }
                let mut v = Val::top();
                for a in args {
                    v.taints.union(a.taints);
                }
                v
            }
        }
    }

    fn apply_intent_config(&mut self, kind: IntentConfigKind, args: &[Val]) {
        let Some(receiver) = args.first() else {
            return;
        };
        let intent_indices: Vec<u32> = receiver.intents.iter().collect();
        let rest = &args[1..];
        let rest_strings: Vec<u32> = rest.iter().flat_map(|a| a.strings.iter()).collect();
        let rest_unknown = rest.iter().any(|a| a.unknown && a.strings.is_empty());
        let dex = self.dex;
        for idx in intent_indices {
            let idx = idx as usize;
            match kind {
                IntentConfigKind::Init => {}
                IntentConfigKind::SetAction => {
                    let entry = &mut self.intents[idx];
                    for &s in &rest_strings {
                        entry.actions.insert(s);
                    }
                    if rest_unknown {
                        entry.actions_unknown = true;
                    }
                }
                IntentConfigKind::AddCategory => {
                    let entry = &mut self.intents[idx];
                    for &s in &rest_strings {
                        entry.categories.insert(s);
                    }
                }
                IntentConfigKind::SetType => {
                    let entry = &mut self.intents[idx];
                    for &s in &rest_strings {
                        entry.data_types.insert(s);
                    }
                }
                IntentConfigKind::SetData => {
                    let entry = &mut self.intents[idx];
                    for &s in &rest_strings {
                        // The scheme is everything before the first ':'.
                        let text = dex.pools.str_at(StrId::from_index(s as usize));
                        let scheme = text.split(':').next().unwrap_or(text).to_string();
                        entry.data_schemes.insert(scheme);
                    }
                }
                IntentConfigKind::PutExtra => {
                    let entry = &mut self.intents[idx];
                    if let Some(key) = rest.first() {
                        for s in key.strings.iter() {
                            entry.extra_keys.insert(s);
                        }
                    }
                    let mut changed = false;
                    for value in rest.iter().skip(1) {
                        changed |= entry.extra_taints.union(value.taints);
                    }
                    if changed {
                        // Later ICC sends read these taints: invalidate
                        // summaries that read the previous state.
                        self.intent_versions[idx] += 1;
                    }
                }
                IntentConfigKind::SetTarget => {
                    let entry = &mut self.intents[idx];
                    for &s in &rest_strings {
                        let text = dex.pools.str_at(StrId::from_index(s as usize));
                        if text.starts_with('L') && text.ends_with(';') {
                            entry.targets.insert(s);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use separ_android::api::class;
    use separ_android::types::perm;
    use separ_dex::build::ApkBuilder;
    use separ_dex::manifest::{ComponentDecl, ComponentKind};

    /// Strips the counters that legitimately differ between strategies.
    fn normalized(mut f: ComponentFacts) -> ComponentFacts {
        f.instructions_visited = 0;
        f.summary_hits = 0;
        f.summary_misses = 0;
        f
    }

    /// Asserts the summary strategy extracts exactly the reference facts.
    fn assert_strategies_agree(apk: &Apk, component: &str) {
        let summaries = analyze_component_with(apk, component, AnalysisOptions::default());
        let reference = analyze_component_with(
            apk,
            component,
            AnalysisOptions {
                strategy: AnalysisStrategy::PerContext,
                ..AnalysisOptions::default()
            },
        );
        assert_eq!(
            normalized(summaries),
            normalized(reference),
            "strategies diverged on {component}"
        );
    }

    /// Builds Listing 1's LocationFinder: reads GPS, puts it into an
    /// implicit intent, startService.
    fn location_finder() -> Apk {
        let mut apk = ApkBuilder::new("com.example.navigator");
        apk.uses_permission(perm::ACCESS_FINE_LOCATION);
        apk.add_component(ComponentDecl::new(
            "Lcom/example/LocationFinder;",
            ComponentKind::Service,
        ));
        let mut cb = apk.class_extends("Lcom/example/LocationFinder;", class::SERVICE);
        let mut m = cb.method("onStartCommand", 3, false, false);
        let loc = m.reg();
        let intent = m.reg();
        let s = m.reg();
        m.invoke_virtual(
            class::LOCATION_MANAGER,
            "getLastKnownLocation",
            &[loc],
            true,
        );
        m.move_result(loc);
        m.new_instance(intent, class::INTENT);
        m.const_string(s, "showLoc");
        m.invoke_virtual(class::INTENT, "setAction", &[intent, s], false);
        m.const_string(s, "locationInfo");
        m.invoke_virtual(class::INTENT, "putExtra", &[intent, s, loc], false);
        m.invoke_virtual(class::CONTEXT, "startService", &[m.this(), intent], false);
        m.ret_void();
        m.finish();
        cb.finish();
        apk.finish()
    }

    #[test]
    fn listing1_extraction() {
        let apk = location_finder();
        let facts = analyze_component(&apk, "Lcom/example/LocationFinder;");
        // The Location -> ICC path is found.
        assert!(
            facts
                .flows
                .contains(&FlowPath::new(Resource::Location, Resource::Icc)),
            "flows: {:?}",
            facts.flows
        );
        // The sent intent has the right action and tainted extra.
        let sent: Vec<&AbstractIntent> = facts
            .intents
            .iter()
            .filter(|i| !i.sent_via.is_empty())
            .collect();
        assert_eq!(sent.len(), 1);
        assert!(sent[0].actions.contains("showLoc"));
        assert!(sent[0].extra_keys.contains("locationInfo"));
        assert!(sent[0].extra_taints.contains(&Resource::Location));
        assert!(sent[0].sent_via.contains(&IccMethod::StartService));
        // Location permission usage recorded.
        assert!(facts.used_permissions.contains(perm::ACCESS_FINE_LOCATION));
        assert_strategies_agree(&apk, "Lcom/example/LocationFinder;");
    }

    /// Builds Listing 2's MessageSender: reads intent extras, sends SMS,
    /// with an (uncalled) hasPermission check.
    fn message_sender(call_check: bool) -> Apk {
        let mut apk = ApkBuilder::new("com.example.messenger");
        apk.uses_permission(perm::SEND_SMS);
        let mut decl = ComponentDecl::new("Lcom/example/MessageSender;", ComponentKind::Service);
        decl.exported = Some(true);
        apk.add_component(decl);
        let mut cb = apk.class_extends("Lcom/example/MessageSender;", class::SERVICE);
        {
            let mut m = cb.method("onStartCommand", 3, false, false);
            let num = m.reg();
            let msg = m.reg();
            let k = m.reg();
            let intent = m.param(1);
            m.const_string(k, "PHONE_NUM");
            m.invoke_virtual(class::INTENT, "getStringExtra", &[intent, k], true);
            m.move_result(num);
            m.const_string(k, "TEXT_MSG");
            m.invoke_virtual(class::INTENT, "getStringExtra", &[intent, k], true);
            m.move_result(msg);
            if call_check {
                let ok = m.reg();
                let done = m.new_label();
                m.invoke_virtual(
                    "Lcom/example/MessageSender;",
                    "hasPermission",
                    &[m.this()],
                    true,
                );
                m.move_result(ok);
                m.if_eqz(ok, done);
                m.invoke_virtual(
                    "Lcom/example/MessageSender;",
                    "sendText",
                    &[m.this(), num, msg],
                    false,
                );
                m.bind(done);
            } else {
                m.invoke_virtual(
                    "Lcom/example/MessageSender;",
                    "sendText",
                    &[m.this(), num, msg],
                    false,
                );
            }
            m.ret_void();
            m.finish();
        }
        {
            let mut m = cb.method("sendText", 3, false, false);
            let mgr = m.reg();
            m.invoke_static(class::SMS_MANAGER, "getDefault", &[], true);
            m.move_result(mgr);
            m.invoke_virtual(
                class::SMS_MANAGER,
                "sendTextMessage",
                &[mgr, m.param(1), m.param(2)],
                false,
            );
            m.ret_void();
            m.finish();
        }
        {
            let mut m = cb.method("hasPermission", 1, false, true);
            let p = m.reg();
            let r = m.reg();
            m.const_string(p, perm::SEND_SMS);
            m.invoke_virtual(
                class::CONTEXT,
                "checkCallingPermission",
                &[m.this(), p],
                true,
            );
            m.move_result(r);
            m.ret(r);
            m.finish();
        }
        cb.finish();
        apk.finish()
    }

    #[test]
    fn listing2_finds_icc_to_sms_flow() {
        let apk = message_sender(false);
        let facts = analyze_component(&apk, "Lcom/example/MessageSender;");
        assert!(
            facts
                .flows
                .contains(&FlowPath::new(Resource::Icc, Resource::Sms)),
            "flows: {:?}",
            facts.flows
        );
        // hasPermission is never called: the check is NOT recorded.
        assert!(facts.dynamic_checks.is_empty());
        assert!(facts.used_permissions.contains(perm::SEND_SMS));
        assert_strategies_agree(&apk, "Lcom/example/MessageSender;");
    }

    #[test]
    fn reachable_permission_check_is_recorded() {
        let apk = message_sender(true);
        let facts = analyze_component(&apk, "Lcom/example/MessageSender;");
        assert!(facts.dynamic_checks.contains(perm::SEND_SMS));
        // The flow still exists on the permission-granted path.
        assert!(facts
            .flows
            .contains(&FlowPath::new(Resource::Icc, Resource::Sms)));
        assert_strategies_agree(&apk, "Lcom/example/MessageSender;");
    }

    #[test]
    fn dead_branch_leak_is_pruned() {
        // const v0, 0; if-eqz v0 -> skip; <leak>; skip: return
        let mut apk = ApkBuilder::new("t");
        apk.add_component(ComponentDecl::new("LDead;", ComponentKind::Service));
        let mut cb = apk.class_extends("LDead;", class::SERVICE);
        let mut m = cb.method("onStartCommand", 3, false, false);
        let flag = m.reg();
        let loc = m.reg();
        let skip = m.new_label();
        m.const_int(flag, 0);
        m.if_eqz(flag, skip);
        // Unreachable leak:
        m.invoke_virtual(
            class::LOCATION_MANAGER,
            "getLastKnownLocation",
            &[loc],
            true,
        );
        m.move_result(loc);
        m.invoke_virtual(class::SMS_MANAGER, "sendTextMessage", &[loc], false);
        m.bind(skip);
        m.ret_void();
        m.finish();
        cb.finish();
        let apk = apk.finish();
        let facts = analyze_component(&apk, "LDead;");
        assert!(
            facts.flows.is_empty(),
            "dead leak must be ignored: {:?}",
            facts.flows
        );
        assert_strategies_agree(&apk, "LDead;");
    }

    #[test]
    fn taint_survives_field_round_trip() {
        let mut apk = ApkBuilder::new("t");
        apk.add_component(ComponentDecl::new("LFieldy;", ComponentKind::Service));
        let mut cb = apk.class_extends("LFieldy;", class::SERVICE);
        cb.field("stash", false);
        let mut m = cb.method("onStartCommand", 3, false, false);
        let v = m.reg();
        m.invoke_virtual(class::TELEPHONY_MANAGER, "getDeviceId", &[v], true);
        m.move_result(v);
        m.iput(v, m.this(), "LFieldy;", "stash");
        m.iget(v, m.this(), "LFieldy;", "stash");
        m.invoke_virtual(class::LOG, "d", &[v], false);
        m.ret_void();
        m.finish();
        cb.finish();
        let apk = apk.finish();
        let facts = analyze_component(&apk, "LFieldy;");
        assert!(facts
            .flows
            .contains(&FlowPath::new(Resource::DeviceId, Resource::Log)));
        assert_strategies_agree(&apk, "LFieldy;");
    }

    #[test]
    fn dynamic_register_is_flagged_but_not_modelled() {
        let mut apk = ApkBuilder::new("t");
        apk.add_component(ComponentDecl::new("LDyn;", ComponentKind::Activity));
        let mut cb = apk.class_extends("LDyn;", class::ACTIVITY);
        let mut m = cb.method("onCreate", 1, false, false);
        let r = m.reg();
        m.invoke_virtual(class::CONTEXT, "registerReceiver", &[m.this(), r], true);
        m.ret_void();
        m.finish();
        cb.finish();
        let apk = apk.finish();
        let facts = analyze_component(&apk, "LDyn;");
        assert!(facts.registers_dynamically);
        assert_strategies_agree(&apk, "LDyn;");
    }

    #[test]
    fn taint_propagates_through_helper_methods() {
        let mut apk = ApkBuilder::new("t");
        apk.add_component(ComponentDecl::new("LHelperApp;", ComponentKind::Service));
        let mut cb = apk.class_extends("LHelperApp;", class::SERVICE);
        {
            let mut m = cb.method("onStartCommand", 3, false, false);
            let v = m.reg();
            m.invoke_virtual(class::LOCATION_MANAGER, "getLastKnownLocation", &[v], true);
            m.move_result(v);
            m.invoke_virtual("LHelperApp;", "launder", &[m.this(), v], true);
            m.move_result(v);
            m.invoke_virtual(class::LOG, "d", &[v], false);
            m.ret_void();
            m.finish();
        }
        {
            // launder(x) { return wrap(x) } ; wrap(x) { return x }
            let mut m = cb.method("launder", 2, false, true);
            let r = m.reg();
            m.invoke_virtual("LHelperApp;", "wrap", &[m.this(), m.param(1)], true);
            m.move_result(r);
            m.ret(r);
            m.finish();
            let mut m = cb.method("wrap", 2, false, true);
            m.ret(m.param(1));
            m.finish();
        }
        cb.finish();
        let apk = apk.finish();
        let facts = analyze_component(&apk, "LHelperApp;");
        assert!(facts
            .flows
            .contains(&FlowPath::new(Resource::Location, Resource::Log)));
        assert_strategies_agree(&apk, "LHelperApp;");
    }

    #[test]
    fn explicit_target_extraction() {
        let mut apk = ApkBuilder::new("t");
        apk.add_component(ComponentDecl::new("LSender;", ComponentKind::Activity));
        let mut cb = apk.class_extends("LSender;", class::ACTIVITY);
        let mut m = cb.method("onCreate", 1, false, false);
        let i = m.reg();
        let t = m.reg();
        m.new_instance(i, class::INTENT);
        m.const_string(t, "Lcom/other/Target;");
        m.invoke_virtual(class::INTENT, "setClassName", &[i, t], false);
        m.invoke_virtual(
            class::ACTIVITY,
            "startActivityForResult",
            &[m.this(), i],
            false,
        );
        m.ret_void();
        m.finish();
        cb.finish();
        let apk = apk.finish();
        let facts = analyze_component(&apk, "LSender;");
        let sent: Vec<_> = facts
            .intents
            .iter()
            .filter(|x| !x.sent_via.is_empty())
            .collect();
        assert_eq!(sent.len(), 1);
        assert!(sent[0].targets.contains("Lcom/other/Target;"));
        assert!(sent[0]
            .sent_via
            .contains(&IccMethod::StartActivityForResult));
        assert_strategies_agree(&apk, "LSender;");
    }

    /// Self- and mutually-recursive helpers: the recursion breaker and
    /// the summary footprint validation must agree with the reference.
    #[test]
    fn recursion_is_handled_identically_by_both_strategies() {
        let mut apk = ApkBuilder::new("t");
        apk.add_component(ComponentDecl::new("LRec;", ComponentKind::Service));
        let mut cb = apk.class_extends("LRec;", class::SERVICE);
        {
            let mut m = cb.method("onStartCommand", 3, false, false);
            let v = m.reg();
            m.invoke_virtual(class::TELEPHONY_MANAGER, "getDeviceId", &[v], true);
            m.move_result(v);
            m.invoke_virtual("LRec;", "ping", &[m.this(), v], true);
            m.move_result(v);
            m.invoke_virtual(class::LOG, "d", &[v], false);
            m.invoke_virtual("LRec;", "selfish", &[m.this(), v], true);
            m.move_result(v);
            m.invoke_virtual(class::LOG, "d", &[v], false);
            m.ret_void();
            m.finish();
        }
        {
            // ping(x) -> pong(x) -> ping(x): mutual recursion.
            let mut m = cb.method("ping", 2, false, true);
            let r = m.reg();
            m.invoke_virtual("LRec;", "pong", &[m.this(), m.param(1)], true);
            m.move_result(r);
            m.ret(r);
            m.finish();
            let mut m = cb.method("pong", 2, false, true);
            let r = m.reg();
            m.invoke_virtual("LRec;", "ping", &[m.this(), m.param(1)], true);
            m.move_result(r);
            m.ret(r);
            m.finish();
            // selfish(x) -> selfish(x): direct recursion.
            let mut m = cb.method("selfish", 2, false, true);
            let r = m.reg();
            m.invoke_virtual("LRec;", "selfish", &[m.this(), m.param(1)], true);
            m.move_result(r);
            m.ret(r);
            m.finish();
        }
        cb.finish();
        let apk = apk.finish();
        assert_strategies_agree(&apk, "LRec;");
    }

    /// Cross-entry-point field propagation forces extra fixpoint rounds;
    /// the summary strategy must answer the repeats from its memo while
    /// extracting the same facts.
    #[test]
    fn summaries_are_reused_across_fixpoint_rounds() {
        let mut apk = ApkBuilder::new("t");
        apk.add_component(ComponentDecl::new("LRounds;", ComponentKind::Service));
        let mut cb = apk.class_extends("LRounds;", class::SERVICE);
        cb.field("stash", false);
        {
            // onCreate stores tainted data into the field...
            let mut m = cb.method("onCreate", 1, false, false);
            let v = m.reg();
            m.invoke_virtual(class::LOCATION_MANAGER, "getLastKnownLocation", &[v], true);
            m.move_result(v);
            m.iput(v, m.this(), "LRounds;", "stash");
            m.ret_void();
            m.finish();
        }
        {
            // ...and onStartCommand leaks it.
            let mut m = cb.method("onStartCommand", 3, false, false);
            let v = m.reg();
            m.iget(v, m.this(), "LRounds;", "stash");
            m.invoke_virtual(class::LOG, "d", &[v], false);
            m.ret_void();
            m.finish();
        }
        cb.finish();
        let apk = apk.finish();
        let facts = analyze_component(&apk, "LRounds;");
        assert!(facts
            .flows
            .contains(&FlowPath::new(Resource::Location, Resource::Log)));
        assert!(
            facts.summary_hits > 0,
            "fixpoint repeats should reuse summaries: {facts:?}"
        );
        assert_strategies_agree(&apk, "LRounds;");
    }

    /// The default options must equal explicitly-spelled defaults, so
    /// `extract_apk` (which uses the former) and `extract_apk_with`
    /// cannot drift.
    #[test]
    fn default_options_match_explicit_defaults() {
        let d = AnalysisOptions::default();
        assert!(d.prune_dead_branches);
        assert!(!d.model_dynamic_receivers);
        assert_eq!(d.strategy, AnalysisStrategy::Summaries);
        assert_eq!(d.strategy, AnalysisStrategy::default());
    }
}
