//! **separ-analysis** — the Android Model Extractor (AME).
//!
//! The paper's AME sits on Soot/FlowDroid; this crate rebuilds the needed
//! analyses from scratch over the sdex substrate:
//!
//! * [`cfg`] — per-method control-flow graphs with reachability;
//! * [`callgraph`] — class-hierarchy call graphs with manifest-derived
//!   lifecycle entry points;
//! * [`absint`] — the combined abstract interpreter: constant string/int
//!   propagation, abstract Intent objects, and flow-, field- and
//!   context-sensitive taint analysis (path-insensitive, like the paper);
//! * [`model`] — the extracted app specifications (the analog of the
//!   generated Alloy modules) and Algorithm 1 for passive Intents;
//! * [`extractor`] — the top-level APK-bytes → [`model::AppModel`]
//!   pipeline;
//! * [`slicing`] — per-app capability summaries and signature-footprint
//!   slice selection, the sound pre-analysis that shrinks the relational
//!   universe before synthesis.
//!
//! # Examples
//!
//! ```
//! use separ_analysis::extractor::extract_apk;
//! use separ_dex::build::ApkBuilder;
//! use separ_dex::manifest::{ComponentDecl, ComponentKind};
//!
//! let mut builder = ApkBuilder::new("com.example");
//! builder.add_component(ComponentDecl::new("LMain;", ComponentKind::Activity));
//! let mut class = builder.class_extends("LMain;", "Landroid/app/Activity;");
//! let mut m = class.method("onCreate", 1, false, false);
//! m.ret_void();
//! m.finish();
//! class.finish();
//! let model = extract_apk(&builder.finish());
//! assert_eq!(model.components.len(), 1);
//! ```
#![warn(missing_docs)]

pub mod absint;
pub mod alias;
pub mod cache;
pub mod callgraph;
pub mod cfg;
pub mod diagnostics;
mod domain;
pub mod extractor;
mod index;
pub mod model;
pub mod slicing;

pub use diagnostics::{Diagnostic, DiagnosticKind, Severity};
pub use extractor::{extract, extract_apk};
pub use model::{AppModel, ComponentModel, SentIntentModel};
pub use slicing::{AppSummary, SliceDemand};
