//! RQ3: Figure 5 — model-extraction time vs app size.
//!
//! Extracts every app of the generated market, recording `(repository,
//! app size, extraction time)` points — the paper's scatter plot — plus
//! the summary claims: the share of apps analyzed under the paper's
//! two-minute bar (here scaled to a millisecond budget) and the linear
//! relationship between size and time.

use separ_analysis::extractor::extract_apk;
use separ_corpus::market::{generate, MarketSpec, Repository};

/// One scatter point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Repository profile.
    pub repository: Repository,
    /// App size metric (instructions + declarations).
    pub size: usize,
    /// Extraction time in microseconds.
    pub micros: u128,
}

/// The Figure 5 dataset.
#[derive(Debug)]
pub struct Fig5 {
    /// All scatter points.
    pub points: Vec<Point>,
}

impl Fig5 {
    /// The p-th percentile of extraction times (0-100).
    pub fn percentile_micros(&self, p: f64) -> u128 {
        if self.points.is_empty() {
            return 0;
        }
        let mut times: Vec<u128> = self.points.iter().map(|p| p.micros).collect();
        times.sort_unstable();
        let idx = ((p / 100.0) * (times.len() - 1) as f64).round() as usize;
        times[idx]
    }

    /// Least-squares slope of time (µs) against size — extraction scales
    /// linearly with app size, so this should be positive and the fit
    /// reasonable.
    pub fn linear_fit(&self) -> (f64, f64) {
        let n = self.points.len() as f64;
        if n < 2.0 {
            return (0.0, 0.0);
        }
        let mean_x = self.points.iter().map(|p| p.size as f64).sum::<f64>() / n;
        let mean_y = self.points.iter().map(|p| p.micros as f64).sum::<f64>() / n;
        let mut sxy = 0.0;
        let mut sxx = 0.0;
        for p in &self.points {
            let dx = p.size as f64 - mean_x;
            sxy += dx * (p.micros as f64 - mean_y);
            sxx += dx * dx;
        }
        let slope = if sxx == 0.0 { 0.0 } else { sxy / sxx };
        (slope, mean_y - slope * mean_x)
    }

    /// Pearson correlation between size and time.
    pub fn correlation(&self) -> f64 {
        let n = self.points.len() as f64;
        if n < 2.0 {
            return 0.0;
        }
        let mean_x = self.points.iter().map(|p| p.size as f64).sum::<f64>() / n;
        let mean_y = self.points.iter().map(|p| p.micros as f64).sum::<f64>() / n;
        let (mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0);
        for p in &self.points {
            let dx = p.size as f64 - mean_x;
            let dy = p.micros as f64 - mean_y;
            sxy += dx * dy;
            sxx += dx * dx;
            syy += dy * dy;
        }
        if sxx == 0.0 || syy == 0.0 {
            0.0
        } else {
            sxy / (sxx * syy).sqrt()
        }
    }

    /// CSV rendering (`repository,size,micros`), the plot's raw data.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("repository,size,micros\n");
        for p in &self.points {
            out.push_str(&format!(
                "{},{},{}\n",
                p.repository.name(),
                p.size,
                p.micros
            ));
        }
        out
    }
}

/// Runs the experiment over a market of `total` apps.
pub fn run(total: usize, seed: u64) -> Fig5 {
    let market = generate(&MarketSpec::scaled(total, seed));
    let points = market
        .iter()
        .map(|app| {
            let model = extract_apk(&app.apk);
            Point {
                repository: app.repository,
                size: model.stats.app_size,
                micros: model.stats.duration.as_micros(),
            }
        })
        .collect();
    Fig5 { points }
}

/// Renders the summary the paper states in prose.
pub fn render(f: &Fig5) -> String {
    let (slope, intercept) = f.linear_fit();
    format!(
        "apps: {}\n\
         p50 extraction: {} us\np95 extraction: {} us\np100 extraction: {} us\n\
         linear fit: time_us = {:.3} * size + {:.1}  (r = {:.3})\n",
        f.points.len(),
        f.percentile_micros(50.0),
        f.percentile_micros(95.0),
        f.percentile_micros(100.0),
        slope,
        intercept,
        f.correlation(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extraction_time_scales_linearly_with_size() {
        let f = run(120, 9);
        assert_eq!(f.points.len(), 120);
        assert!(
            f.correlation() > 0.5,
            "size and time should correlate, r = {}",
            f.correlation()
        );
        let (slope, _) = f.linear_fit();
        assert!(slope > 0.0);
    }

    #[test]
    fn csv_has_one_row_per_app() {
        let f = run(20, 3);
        let csv = f.to_csv();
        assert_eq!(csv.lines().count(), 21); // header + 20
        assert!(csv.starts_with("repository,size,micros"));
    }

    #[test]
    fn percentiles_are_ordered() {
        let f = run(50, 4);
        assert!(f.percentile_micros(50.0) <= f.percentile_micros(95.0));
        assert!(f.percentile_micros(95.0) <= f.percentile_micros(100.0));
    }
}
