//! Runs the design-choice ablations. Usage: `ablation [apps] [seed]`.
fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let apps = args.first().copied().unwrap_or(50);
    let seed = args.get(1).copied().unwrap_or(7) as u64;
    let e = separ_bench::ablation::private_component_elimination(apps, seed);
    let m = separ_bench::ablation::minimality(40);
    print!("{}", separ_bench::ablation::render(&e, &m));
}
