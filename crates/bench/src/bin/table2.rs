//! Regenerates Table II. Usage: `table2 [bundles] [bundle_size] [seed]`.
fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let bundles = args.first().copied().unwrap_or(80);
    let size = args.get(1).copied().unwrap_or(50);
    let seed = args.get(2).copied().unwrap_or(0x5E9A12) as u64;
    let t = separ_bench::table2::run(bundles, size, seed);
    print!("{}", separ_bench::table2::render(&t));
}
