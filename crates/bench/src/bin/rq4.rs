//! Regenerates the RQ4 overhead numbers.
//! Usage: `rq4 [repetitions] [icc_calls] [policies]`.
fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let reps = args.first().copied().unwrap_or(33);
    let calls = args.get(1).copied().unwrap_or(200);
    let policies = args.get(2).copied().unwrap_or(20);
    let o = separ_bench::rq4::run(reps, calls, policies);
    print!("{}", separ_bench::rq4::render(&o));
}
