//! Regenerates Table I.
fn main() {
    let cases = separ_corpus::table1_cases();
    let t = separ_bench::table1::run(&cases);
    print!("{}", separ_bench::table1::render(&t));
}
