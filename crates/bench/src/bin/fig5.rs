//! Regenerates Figure 5. Usage: `fig5 [total_apps] [seed] [--csv]`.
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let total = args.first().and_then(|a| a.parse().ok()).unwrap_or(4000);
    let seed = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(0x5E9A12);
    let f = separ_bench::fig5::run(total, seed);
    if args.iter().any(|a| a == "--csv") {
        print!("{}", f.to_csv());
    } else {
        print!("{}", separ_bench::fig5::render(&f));
    }
}
