//! Regenerates the RQ2 census. Usage: `rq2 [bundles] [bundle_size] [seed]`.
fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let bundles = args.first().copied().unwrap_or(80);
    let size = args.get(1).copied().unwrap_or(50);
    let seed = args.get(2).copied().unwrap_or(0x5E9A12) as u64;
    let c = separ_bench::rq2::run(bundles, size, seed);
    print!("{}", separ_bench::rq2::render(&c));
}
