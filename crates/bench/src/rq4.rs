//! RQ4: policy-enforcement overhead.
//!
//! Runs an ICC-heavy benchmark app on the simulated device twice per
//! repetition — hooks disabled vs. policies installed — and reports the
//! relative execution-time overhead with a 95% confidence interval over
//! 33 repetitions (the paper's repetition count). Non-ICC work is
//! measured separately to confirm the hooks cost nothing off the ICC
//! path.

use std::time::Instant;

use separ_android::api::class;
use separ_core::policy::{Condition, Policy, PolicyAction, PolicyEvent};
use separ_dex::build::ApkBuilder;
use separ_dex::manifest::{ComponentDecl, ComponentKind, IntentFilterDecl};
use separ_dex::program::Apk;
use separ_enforce::{Device, PromptHandler};

/// The overhead measurement.
#[derive(Debug, Clone, Copy)]
pub struct Overhead {
    /// Mean relative overhead of enforcement on the ICC workload.
    pub icc_mean: f64,
    /// Half-width of the 95% confidence interval.
    pub icc_ci95: f64,
    /// Mean relative overhead on the CPU-only workload.
    pub compute_mean: f64,
    /// Repetitions used.
    pub repetitions: usize,
    /// ICC deliveries per repetition.
    pub deliveries: usize,
}

/// An app whose main activity fires `n` startService calls at a local
/// service that immediately returns (pure ICC churn).
fn icc_benchmark_app(n: usize) -> Apk {
    let mut apk = ApkBuilder::new("com.bench.icc");
    apk.add_component(ComponentDecl::new("LPinger;", ComponentKind::Activity));
    let mut svc = ComponentDecl::new("LPong;", ComponentKind::Service);
    svc.intent_filters
        .push(IntentFilterDecl::for_actions(["com.bench.PING"]));
    apk.add_component(svc);
    {
        let mut cb = apk.class_extends("LPinger;", class::ACTIVITY);
        let mut m = cb.method("onCreate", 1, false, false);
        let i = m.reg();
        let s = m.reg();
        for _ in 0..n {
            m.new_instance(i, class::INTENT);
            m.const_string(s, "com.bench.PING");
            m.invoke_virtual(class::INTENT, "setAction", &[i, s], false);
            m.const_string(s, "k");
            m.invoke_virtual(class::INTENT, "putExtra", &[i, s, s], false);
            m.invoke_virtual(class::CONTEXT, "startService", &[m.this(), i], false);
        }
        m.ret_void();
        m.finish();
        cb.finish();
    }
    {
        let mut cb = apk.class_extends("LPong;", class::SERVICE);
        let mut m = cb.method("onStartCommand", 2, false, false);
        let v = m.reg();
        let k = m.reg();
        m.const_string(k, "k");
        m.invoke_virtual(class::INTENT, "getStringExtra", &[m.param(1), k], true);
        m.move_result(v);
        m.ret_void();
        m.finish();
        cb.finish();
    }
    apk.finish()
}

/// A pure-compute app (no ICC at all).
fn compute_benchmark_app(n: usize) -> Apk {
    let mut apk = ApkBuilder::new("com.bench.cpu");
    apk.add_component(ComponentDecl::new("LCruncher;", ComponentKind::Activity));
    let mut cb = apk.class_extends("LCruncher;", class::ACTIVITY);
    let mut m = cb.method("onCreate", 1, false, false);
    let a = m.reg();
    let b = m.reg();
    m.const_int(a, 1);
    m.const_int(b, 3);
    for _ in 0..n {
        m.binop(separ_dex::instr::BinOp::Add, a, a, b);
        m.binop(separ_dex::instr::BinOp::Mul, b, b, a);
    }
    m.ret_void();
    m.finish();
    cb.finish();
    apk.finish()
}

/// A policy set that matches nothing in the benchmark (realistic: the
/// synthesized policies guard other apps) but must still be evaluated on
/// every hook.
fn decoy_policies(n: usize) -> Vec<Policy> {
    (0..n as u32)
        .map(|i| Policy {
            id: i,
            vulnerability: "information-leakage".into(),
            event: if i % 2 == 0 {
                PolicyEvent::IccReceive
            } else {
                PolicyEvent::IccSend
            },
            conditions: vec![
                Condition::ReceiverIs(format!("LOtherComponent{i};")),
                Condition::ExtraTagged("LOCATION".into()),
            ],
            action: PolicyAction::Prompt,
            rationale: String::new(),
        })
        .collect()
}

fn time_run(apk: &Apk, main: (&str, &str), enforce: bool, policies: usize) -> f64 {
    let mut device = Device::new(vec![apk.clone()]);
    if enforce {
        device.install_policies(
            decoy_policies(policies),
            vec!["com.other".into()],
            PromptHandler::AlwaysDeny,
        );
    }
    let t0 = Instant::now();
    device.launch(main.0, main.1);
    device.run_until_idle();
    t0.elapsed().as_secs_f64()
}

/// Runs the overhead experiment.
pub fn run(repetitions: usize, icc_calls: usize, policies: usize) -> Overhead {
    let icc_app = icc_benchmark_app(icc_calls);
    let cpu_app = compute_benchmark_app(2000);
    // Warm up.
    let _ = time_run(&icc_app, ("com.bench.icc", "LPinger;"), false, policies);
    let _ = time_run(&icc_app, ("com.bench.icc", "LPinger;"), true, policies);
    let mut icc_overheads = Vec::with_capacity(repetitions);
    let mut cpu_overheads = Vec::with_capacity(repetitions);
    for _ in 0..repetitions {
        let base = time_run(&icc_app, ("com.bench.icc", "LPinger;"), false, policies);
        let hooked = time_run(&icc_app, ("com.bench.icc", "LPinger;"), true, policies);
        icc_overheads.push((hooked - base) / base);
        let cbase = time_run(&cpu_app, ("com.bench.cpu", "LCruncher;"), false, policies);
        let chooked = time_run(&cpu_app, ("com.bench.cpu", "LCruncher;"), true, policies);
        cpu_overheads.push((chooked - cbase) / cbase);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let icc_mean = mean(&icc_overheads);
    let var = icc_overheads
        .iter()
        .map(|x| (x - icc_mean).powi(2))
        .sum::<f64>()
        / (icc_overheads.len().max(2) - 1) as f64;
    // 95% CI half-width with the normal approximation (n = 33 in the
    // paper's setup is large enough).
    let ci95 = 1.96 * (var / icc_overheads.len() as f64).sqrt();
    Overhead {
        icc_mean,
        icc_ci95: ci95,
        compute_mean: mean(&cpu_overheads),
        repetitions,
        deliveries: icc_calls,
    }
}

/// Renders the result in the paper's phrasing.
pub fn render(o: &Overhead) -> String {
    format!(
        "ICC enforcement overhead: {:.2}% ± {:.2}% (95% CI, {} repetitions, {} ICC calls/run)\n\
         non-ICC workload overhead: {:.2}%\n",
        o.icc_mean * 100.0,
        o.icc_ci95 * 100.0,
        o.repetitions,
        o.deliveries,
        o.compute_mean * 100.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_finite_and_compute_path_is_cheap() {
        let o = run(5, 50, 10);
        assert!(o.icc_mean.is_finite());
        assert!(o.icc_ci95.is_finite() && o.icc_ci95 >= 0.0);
        // Hooks only intercept ICC: the pure-compute overhead must be far
        // below the ICC overhead band (allow noise).
        assert!(
            o.compute_mean.abs() < 0.5,
            "compute overhead should be small, got {}",
            o.compute_mean
        );
    }

    #[test]
    fn enforcement_actually_intercepts_the_workload() {
        let apk = icc_benchmark_app(10);
        let mut device = Device::new(vec![apk]);
        device.install_policies(decoy_policies(4), vec![], PromptHandler::AlwaysDeny);
        device.launch("com.bench.icc", "LPinger;");
        device.run_until_idle();
        let stats = device.hook_stats();
        assert_eq!(stats.icc_hooks, 10);
        assert_eq!(stats.delivery_hooks, 10);
        // Decoy policies never fire.
        assert_eq!(device.audit.blocked_count(), 0);
    }
}
