//! **separ-bench** — harnesses regenerating the paper's tables & figures.
//!
//! Each experiment of Section VII has a module and a matching binary:
//!
//! | Experiment | Module | Binary |
//! |---|---|---|
//! | Table I (RQ1 accuracy) | [`table1`] | `cargo run -p separ-bench --bin table1` |
//! | Table II (RQ3 solver stats) | [`table2`] | `... --bin table2` |
//! | Figure 5 (RQ3 extraction time) | [`fig5`] | `... --bin fig5` |
//! | RQ2 vulnerability census | [`rq2`] | `... --bin rq2` |
//! | RQ4 enforcement overhead | [`rq4`] | `... --bin rq4` |
//! | Design ablations | [`ablation`] | `... --bin ablation` |
#![warn(missing_docs)]

pub mod ablation;
pub mod fig5;
pub mod rq2;
pub mod rq4;
pub mod table1;
pub mod table2;
