//! RQ2: the market vulnerability census.
//!
//! Partitions the market into bundles simulating end-user devices (the
//! paper: 80 non-overlapping bundles of 50 apps), runs SEPAR on each, and
//! counts the distinct apps found vulnerable per category — the paper's
//! "97 Intent hijack / 124 Activity-Service launch / 128 information
//! leakage / 36 privilege escalation out of 4,000".

use std::collections::BTreeSet;

use separ_core::exec::Executor;
use separ_core::{Separ, SeparConfig, VulnKind};
use separ_corpus::market::{generate, MarketSpec};

/// The census result.
#[derive(Debug, Default)]
pub struct Census {
    /// Distinct vulnerable app packages per category.
    pub hijack: BTreeSet<String>,
    /// Launchable components' apps.
    pub launch: BTreeSet<String>,
    /// Leaking app pairs' sink-side apps.
    pub leakage: BTreeSet<String>,
    /// Permission re-delegating apps.
    pub escalation: BTreeSet<String>,
    /// Total apps analyzed.
    pub total_apps: usize,
    /// Total synthesized policies across bundles.
    pub total_policies: usize,
}

/// Runs the census over `bundle_count` bundles of `bundle_size` apps.
pub fn run(bundle_count: usize, bundle_size: usize, seed: u64) -> Census {
    let spec = MarketSpec::scaled(bundle_count * bundle_size, seed);
    let market = generate(&spec);
    let apks: Vec<_> = market.into_iter().map(|m| m.apk).collect();
    let total_apps = apks.len();
    let chunks: Vec<Vec<_>> = apks
        .chunks(bundle_size)
        .take(bundle_count)
        .map(<[separ_dex::Apk]>::to_vec)
        .collect();
    // Bundles simulate independent devices: fan them out on the shared
    // executor, keeping each device's own pipeline serial.
    let per_bundle: Vec<(Vec<(VulnKind, String)>, usize)> =
        Executor::default().ordered_map(&chunks, |bundle| {
            let report = Separ::new()
                .with_config(SeparConfig::serial())
                .analyze_apks(bundle)
                .expect("signatures well-typed");
            let mut found = Vec::new();
            for kind in VulnKind::ALL {
                for app in report.vulnerable_apps(kind) {
                    found.push((kind, app.to_string()));
                }
            }
            (found, report.policies.len())
        });
    let mut census = Census {
        total_apps,
        ..Census::default()
    };
    for (found, policies) in per_bundle {
        census.total_policies += policies;
        for (kind, app) in found {
            match kind {
                VulnKind::IntentHijack => census.hijack.insert(app),
                VulnKind::ComponentLaunch => census.launch.insert(app),
                VulnKind::InformationLeakage => census.leakage.insert(app),
                VulnKind::PrivilegeEscalation => census.escalation.insert(app),
                // Extension / custom plugins are not in the standard registry.
                VulnKind::BroadcastInjection | VulnKind::Custom => false,
            };
        }
    }
    census
}

/// Renders the census in the paper's prose shape.
pub fn render(c: &Census) -> String {
    format!(
        "apps analyzed: {}\n\
         vulnerable to intent hijack:        {}\n\
         vulnerable to activity/svc launch:  {}\n\
         vulnerable to information leakage:  {}\n\
         vulnerable to privilege escalation: {}\n\
         policies synthesized:               {}\n",
        c.total_apps,
        c.hijack.len(),
        c.launch.len(),
        c.leakage.len(),
        c.escalation.len(),
        c.total_policies,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_finds_injected_vulnerabilities() {
        // 4 bundles x 25 apps = 100 apps: expect a handful of findings.
        let c = run(4, 25, 0x5E9A12);
        assert_eq!(c.total_apps, 100);
        let total_found = c.hijack.len() + c.launch.len() + c.leakage.len() + c.escalation.len();
        assert!(total_found > 0, "injected weaknesses must surface");
        assert!(c.total_policies > 0);
    }
}
