//! RQ3: Table II — compositional analysis & synthesis statistics.
//!
//! Partitions a generated market into bundles (the paper: 80 bundles of
//! 50 apps), runs the full ASE pipeline on each, and reports the average
//! number of components / intents / intent filters per bundle plus the
//! average constraint-construction (relational→CNF) and SAT-solving times.

use std::time::Duration;

use separ_core::exec::Executor;
use separ_core::{Separ, SeparConfig};
use separ_corpus::market::{generate, MarketSpec};

/// One bundle's measurements.
#[derive(Debug, Clone, Copy)]
pub struct BundleRow {
    /// Components in the bundle.
    pub components: usize,
    /// Intent entities in the bundle.
    pub intents: usize,
    /// Intent filters in the bundle.
    pub filters: usize,
    /// Relational-to-CNF construction time (all signatures).
    pub construction: Duration,
    /// SAT-solving time (all signatures).
    pub solving: Duration,
    /// Primary (free) variables.
    pub primary_vars: usize,
}

/// The Table II aggregate.
#[derive(Debug)]
pub struct Table2 {
    /// Per-bundle rows.
    pub bundles: Vec<BundleRow>,
}

impl Table2 {
    /// Average of a per-bundle metric.
    pub fn avg<F: Fn(&BundleRow) -> f64>(&self, f: F) -> f64 {
        if self.bundles.is_empty() {
            return 0.0;
        }
        self.bundles.iter().map(&f).sum::<f64>() / self.bundles.len() as f64
    }

    /// Average components per bundle.
    pub fn avg_components(&self) -> f64 {
        self.avg(|b| b.components as f64)
    }

    /// Average intents per bundle.
    pub fn avg_intents(&self) -> f64 {
        self.avg(|b| b.intents as f64)
    }

    /// Average filters per bundle.
    pub fn avg_filters(&self) -> f64 {
        self.avg(|b| b.filters as f64)
    }

    /// Average construction seconds per bundle.
    pub fn avg_construction(&self) -> f64 {
        self.avg(|b| b.construction.as_secs_f64())
    }

    /// Average SAT seconds per bundle.
    pub fn avg_solving(&self) -> f64 {
        self.avg(|b| b.solving.as_secs_f64())
    }
}

/// Runs the experiment: `bundle_count` bundles of `bundle_size` apps.
pub fn run(bundle_count: usize, bundle_size: usize, seed: u64) -> Table2 {
    // Construction/solving columns are span-derived timings, which are
    // only recorded while the collector is on.
    separ_obs::global().enable();
    let spec = MarketSpec::scaled(bundle_count * bundle_size, seed);
    let market = generate(&spec);
    // Interleave repositories across bundles (a device mixes sources).
    let apks: Vec<_> = market.into_iter().map(|m| m.apk).collect();
    let chunks: Vec<Vec<_>> = (0..bundle_count)
        .map(|b| {
            apks.iter()
                .skip(b)
                .step_by(bundle_count.max(1))
                .take(bundle_size)
                .cloned()
                .collect()
        })
        .collect();
    // Bundles are independent: fan them out on the shared executor.
    // Each bundle's own pipeline stays serial — the outer fan-out already
    // saturates the hardware threads.
    let bundles: Vec<BundleRow> = Executor::default().ordered_map(&chunks, |bundle| {
        let report = Separ::new()
            .with_config(SeparConfig::serial())
            .analyze_apks(bundle)
            .expect("signatures well-typed");
        BundleRow {
            components: report.stats.components,
            intents: report.stats.intents,
            filters: report.stats.filters,
            construction: report.stats.construction,
            solving: report.stats.solving,
            primary_vars: report.stats.primary_vars,
        }
    });
    Table2 { bundles }
}

/// Renders the table in the paper's format.
pub fn render(t: &Table2) -> String {
    format!(
        "Components  Intents  IntentFilters | Construction(s)  Analysis(s)\n\
         {:>10.0}  {:>7.0}  {:>13.0} | {:>15.3}  {:>11.3}\n\
         (averages over {} bundles; avg primary vars {:.0})\n",
        t.avg_components(),
        t.avg_intents(),
        t.avg_filters(),
        t.avg_construction(),
        t.avg_solving(),
        t.bundles.len(),
        t.avg(|b| b.primary_vars as f64),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_produces_consistent_stats() {
        let t = run(2, 8, 42);
        assert_eq!(t.bundles.len(), 2);
        for b in &t.bundles {
            assert!(b.components > 0);
            // primary_vars may legitimately be 0 for a bundle whose facts
            // constant-fold (no ICC-source paths at all), so only the
            // aggregate is asserted below.
        }
        assert!(t.avg(|b| b.primary_vars as f64) >= 0.0);
        assert!(t.avg_components() > 0.0);
        let rendered = render(&t);
        assert!(rendered.contains("Components"));
    }
}
