//! RQ1: the Table I accuracy comparison.

use std::collections::BTreeSet;

use separ_baselines::{AmandroidAnalyzer, DidFailAnalyzer, IccAnalyzer, SeparAnalyzer};
use separ_corpus::suite::{Case, Score};

/// Per-case outcome for one tool.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Case name.
    pub case: &'static str,
    /// Suite name.
    pub suite: String,
    /// Ground-truth leak count.
    pub truth: usize,
    /// Per-tool `(tp, fp, fn)` in table order (DidFail, AmanDroid, SEPAR).
    pub tools: Vec<(String, Score)>,
}

/// The full Table I result.
#[derive(Debug)]
pub struct Table1 {
    /// One row per case.
    pub rows: Vec<CaseResult>,
    /// Aggregate per tool, in table order.
    pub totals: Vec<(String, Score)>,
}

/// Runs every tool over every Table I case.
pub fn run(cases: &[Case]) -> Table1 {
    let tools: Vec<Box<dyn IccAnalyzer>> = vec![
        Box::new(DidFailAnalyzer),
        Box::new(AmandroidAnalyzer),
        Box::new(SeparAnalyzer),
    ];
    let mut totals: Vec<(String, Score)> = tools
        .iter()
        .map(|t| (t.name().to_string(), Score::default()))
        .collect();
    let mut rows = Vec::with_capacity(cases.len());
    for case in cases {
        let mut row = CaseResult {
            case: case.name,
            suite: case.suite.to_string(),
            truth: case.truth.len(),
            tools: Vec::new(),
        };
        for (i, tool) in tools.iter().enumerate() {
            let found: BTreeSet<(String, String)> = tool.find_leaks(&case.apks);
            let score = Score::of(&case.truth, &found);
            totals[i].1.add(score);
            row.tools.push((tool.name().to_string(), score));
        }
        rows.push(row);
    }
    Table1 { rows, totals }
}

/// Renders the table in the paper's style.
pub fn render(t: &Table1) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<32} {:>5} | {:>12} | {:>12} | {:>12}",
        "Test Case", "truth", "DidFail", "AmanDroid", "SEPAR"
    );
    let _ = writeln!(out, "{}", "-".repeat(84));
    let mut last_suite = String::new();
    for row in &t.rows {
        if row.suite != last_suite {
            let _ = writeln!(out, "[{}]", row.suite);
            last_suite = row.suite.clone();
        }
        let cells: Vec<String> = row
            .tools
            .iter()
            .map(|(_, s)| format!("{}TP {}FP {}FN", s.tp, s.fp, s.fn_))
            .collect();
        let _ = writeln!(
            out,
            "{:<32} {:>5} | {:>12} | {:>12} | {:>12}",
            row.case, row.truth, cells[0], cells[1], cells[2]
        );
    }
    let _ = writeln!(out, "{}", "-".repeat(84));
    for metric in ["Precision", "Recall", "F-measure"] {
        let cells: Vec<String> = t
            .totals
            .iter()
            .map(|(_, s)| {
                let v = match metric {
                    "Precision" => s.precision(),
                    "Recall" => s.recall(),
                    _ => s.f_measure(),
                };
                format!("{:.0}%", v * 100.0)
            })
            .collect();
        let _ = writeln!(
            out,
            "{:<32} {:>5} | {:>12} | {:>12} | {:>12}",
            metric, "", cells[0], cells[1], cells[2]
        );
    }
    out
}
