//! Ablations of the design choices DESIGN.md calls out.
//!
//! 1. **Private-component elimination** (paper §V): encode the malicious
//!    intent's reach over all components vs exported ones only, and
//!    measure the SAT-problem size and synthesis time.
//! 2. **Minimal vs plain model enumeration** (Aluminum vs Alloy): compare
//!    the first returned scenario's size and the work to produce it.

use std::time::{Duration, Instant};

use separ_analysis::extractor::extract_apk;
use separ_analysis::model::{update_passive_intent_targets, AppModel};
use separ_core::encode::{encode_bundle_with, EncodeOptions};
use separ_core::signature::VulnerabilitySignature;
use separ_core::vulns::ComponentLaunchSignature;
use separ_corpus::market::{generate, MarketSpec};
use separ_logic::{Expr, RelationDecl, TupleSet};

/// Results of the private-component-elimination ablation.
#[derive(Debug, Clone, Copy)]
pub struct EliminationAblation {
    /// Free variables with the optimization on.
    pub vars_restricted: usize,
    /// Free variables with the optimization off.
    pub vars_unrestricted: usize,
    /// End-to-end launch-signature time with the optimization on.
    pub time_restricted: Duration,
    /// ... and off.
    pub time_unrestricted: Duration,
    /// Exploit counts must agree (the optimization is sound).
    pub exploits_agree: bool,
}

/// Runs the elimination ablation on a generated bundle of `apps` apps.
pub fn private_component_elimination(apps_count: usize, seed: u64) -> EliminationAblation {
    let market = generate(&MarketSpec::scaled(apps_count, seed));
    let mut apps: Vec<AppModel> = market.iter().map(|m| extract_apk(&m.apk)).collect();
    update_passive_intent_targets(&mut apps);
    let measure = |restrict: bool| -> (usize, Duration, usize) {
        let t0 = Instant::now();
        // Size measurement: encode and translate a representative
        // witness problem under both bounds.
        let mut enc = encode_bundle_with(
            &apps,
            EncodeOptions {
                restrict_mal_to_exported: restrict,
            },
        );
        let w = enc.problem.relation(RelationDecl::free(
            "W",
            TupleSet::unary_from(enc.atoms.components.iter().map(|&(_, a)| a)),
        ));
        let w_e = Expr::relation(w);
        enc.problem.fact(w_e.one());
        enc.problem.fact(
            w_e.in_(&Expr::atom(enc.atoms.mal_intent).join(&Expr::relation(enc.rels.can_receive))),
        );
        let finder = enc.problem.model_finder().expect("well-typed");
        let vars = finder.num_primary_vars();
        // Behaviour measurement: the launch signature end to end. (The
        // signature itself always uses the default encoding, so run it
        // once per setting for timing comparability only.)
        let syn = ComponentLaunchSignature
            .synthesize(&apps, 64)
            .expect("well-typed");
        (vars, t0.elapsed(), syn.exploits.len())
    };
    let (vars_restricted, time_restricted, n1) = measure(true);
    let (vars_unrestricted, time_unrestricted, n2) = measure(false);
    EliminationAblation {
        vars_restricted,
        vars_unrestricted,
        time_restricted,
        time_unrestricted,
        exploits_agree: n1 == n2,
    }
}

/// Results of the minimality ablation.
#[derive(Debug, Clone, Copy)]
pub struct MinimalityAblation {
    /// Tuples in the first *plain* model.
    pub plain_model_tuples: usize,
    /// Tuples in the first *minimal* model.
    pub minimal_model_tuples: usize,
    /// Time to the first plain model.
    pub plain_time: Duration,
    /// Time to the first minimal model.
    pub minimal_time: Duration,
}

/// Compares Aluminum-style minimal scenarios against Alloy-style first
/// models on a free relation of `n` atoms with a `some` constraint.
pub fn minimality(n: usize) -> MinimalityAblation {
    use separ_logic::{Problem, Universe};
    let build = || {
        let mut u = Universe::new();
        let atoms: Vec<_> = (0..n).map(|i| u.add(format!("x{i}"))).collect();
        let mut p = Problem::new(u);
        let r = p.relation(RelationDecl::free("r", TupleSet::unary_from(atoms)));
        p.fact(Expr::relation(r).some());
        p
    };
    let t0 = Instant::now();
    let plain = build().solve().expect("well-typed").expect("satisfiable");
    let plain_time = t0.elapsed();
    let t1 = Instant::now();
    let minimal = build()
        .solve_minimal()
        .expect("well-typed")
        .expect("satisfiable");
    let minimal_time = t1.elapsed();
    MinimalityAblation {
        plain_model_tuples: plain.total_tuples(),
        minimal_model_tuples: minimal.total_tuples(),
        plain_time,
        minimal_time,
    }
}

/// Renders both ablations.
pub fn render(e: &EliminationAblation, m: &MinimalityAblation) -> String {
    format!(
        "== private-component elimination (paper Sec. V) ==\n\
         primary vars: {} (restricted) vs {} (unrestricted)\n\
         launch-signature time: {:?} vs {:?}\n\
         exploits agree: {}\n\
         \n== minimal vs plain models (Aluminum vs Alloy) ==\n\
         first-model tuples: {} (plain) vs {} (minimal)\n\
         time to first model: {:?} (plain) vs {:?} (minimal)\n",
        e.vars_restricted,
        e.vars_unrestricted,
        e.time_restricted,
        e.time_unrestricted,
        e.exploits_agree,
        m.plain_model_tuples,
        m.minimal_model_tuples,
        m.plain_time,
        m.minimal_time,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elimination_shrinks_the_problem_without_changing_results() {
        let a = private_component_elimination(30, 11);
        assert!(
            a.vars_restricted <= a.vars_unrestricted,
            "{} vs {}",
            a.vars_restricted,
            a.vars_unrestricted
        );
        assert!(a.exploits_agree);
    }

    #[test]
    fn minimal_models_are_smaller() {
        let m = minimality(30);
        assert_eq!(m.minimal_model_tuples, 1);
        assert!(m.plain_model_tuples >= m.minimal_model_tuples);
    }
}
