//! Microbenchmarks of the SAT core and the relational translator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use separ_logic::ast::Expr;
use separ_logic::relation::{RelationDecl, TupleSet};
use separ_logic::sat::{SolveResult, Solver};
use separ_logic::universe::Universe;
use separ_logic::Problem;

/// Satisfiable pigeonhole (n pigeons, n holes).
fn pigeonhole_sat(n: usize) -> SolveResult {
    let mut s = Solver::new();
    let p: Vec<Vec<_>> = (0..n)
        .map(|_| (0..n).map(|_| s.new_var().positive()).collect())
        .collect();
    for row in &p {
        s.add_clause(row);
    }
    #[allow(clippy::needless_range_loop)] // triple-index form is the textbook encoding
    for j in 0..n {
        for i in 0..n {
            for k in (i + 1)..n {
                s.add_clause(&[!p[i][j], !p[k][j]]);
            }
        }
    }
    s.solve(&[])
}

/// Unsatisfiable pigeonhole (n+1 pigeons, n holes) — the classic hard
/// family for resolution-based solvers.
fn pigeonhole_unsat(n: usize) -> SolveResult {
    let mut s = Solver::new();
    let p: Vec<Vec<_>> = (0..=n)
        .map(|_| (0..n).map(|_| s.new_var().positive()).collect())
        .collect();
    for row in &p {
        s.add_clause(row);
    }
    #[allow(clippy::needless_range_loop)] // triple-index form is the textbook encoding
    for j in 0..n {
        for i in 0..=n {
            for k in (i + 1)..=n {
                s.add_clause(&[!p[i][j], !p[k][j]]);
            }
        }
    }
    s.solve(&[])
}

fn bench_sat(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat");
    for n in [6, 10, 14] {
        group.bench_with_input(BenchmarkId::new("pigeonhole_sat", n), &n, |b, &n| {
            b.iter(|| assert_eq!(pigeonhole_sat(n), SolveResult::Sat));
        });
    }
    for n in [5, 7] {
        group.bench_with_input(BenchmarkId::new("pigeonhole_unsat", n), &n, |b, &n| {
            b.iter(|| assert_eq!(pigeonhole_unsat(n), SolveResult::Unsat));
        });
    }
    group.finish();
}

/// Translation + solving of a typical witness-style relational problem.
fn relational_problem(n_atoms: usize) -> bool {
    let mut u = Universe::new();
    let atoms: Vec<_> = (0..n_atoms).map(|i| u.add(format!("c{i}"))).collect();
    let mut p = Problem::new(u);
    let comp = p.relation(RelationDecl::exact(
        "Component",
        TupleSet::unary_from(atoms.iter().copied()),
    ));
    let exported = p.relation(RelationDecl::exact(
        "exported",
        TupleSet::unary_from(atoms.iter().step_by(3).copied()),
    ));
    let w = p.relation(RelationDecl::free(
        "W",
        TupleSet::unary_from(atoms.iter().copied()),
    ));
    p.fact(Expr::relation(w).one());
    p.fact(Expr::relation(w).in_(&Expr::relation(exported)));
    p.fact(Expr::relation(w).in_(&Expr::relation(comp)));
    p.solve().expect("well-typed").is_some()
}

fn bench_translate(c: &mut Criterion) {
    let mut group = c.benchmark_group("relational");
    for n in [50, 150, 300] {
        group.bench_with_input(BenchmarkId::new("witness_problem", n), &n, |b, &n| {
            b.iter(|| assert!(relational_problem(n)));
        });
    }
    group.finish();
}

/// Ablation: minimal-model vs plain enumeration of exploit-style spaces.
fn bench_minimality_ablation(c: &mut Criterion) {
    let build = || {
        let mut u = Universe::new();
        let atoms: Vec<_> = (0..40).map(|i| u.add(format!("x{i}"))).collect();
        let mut p = Problem::new(u);
        let r = p.relation(RelationDecl::free("r", TupleSet::unary_from(atoms)));
        p.fact(Expr::relation(r).some());
        p
    };
    let mut group = c.benchmark_group("ablation_minimality");
    group.bench_function("first_model_plain", |b| {
        b.iter(|| {
            let p = build();
            let mut f = p.model_finder().expect("ok");
            f.next_model().expect("sat")
        });
    });
    group.bench_function("first_model_minimal", |b| {
        b.iter(|| {
            let p = build();
            let mut f = p.model_finder().expect("ok");
            let inst = f.next_minimal_model().expect("sat");
            assert_eq!(inst.total_tuples(), 1);
            inst
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sat,
    bench_translate,
    bench_minimality_ablation
);
criterion_main!(benches);
