//! End-to-end pipeline benchmarks: extraction, synthesis, enforcement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use separ_analysis::extractor::extract_apk;
use separ_core::{Separ, SeparConfig};
use separ_corpus::market::{generate, MarketSpec};
use separ_corpus::motivating;
use separ_enforce::{Device, PromptHandler};

fn bench_extraction(c: &mut Criterion) {
    let market = generate(&MarketSpec::scaled(30, 17));
    let navigator = motivating::navigator_app();
    let mut group = c.benchmark_group("ame");
    group.bench_function("extract_navigator", |b| {
        b.iter(|| extract_apk(&navigator));
    });
    group.bench_function("extract_market_app", |b| {
        let apk = &market[0].apk;
        b.iter(|| extract_apk(apk));
    });
    group.bench_function("decode_and_extract", |b| {
        let bytes = separ_dex::codec::encode(&navigator);
        b.iter(|| separ_analysis::extractor::extract(&bytes).expect("decodes"));
    });
    group.finish();
}

fn bench_synthesis(c: &mut Criterion) {
    let motivating_bundle = vec![
        motivating::navigator_app(),
        motivating::messenger_app(false),
    ];
    let market: Vec<_> = generate(&MarketSpec::scaled(10, 23))
        .into_iter()
        .map(|m| m.apk)
        .collect();
    let mut group = c.benchmark_group("ase");
    group.sample_size(20);
    group.bench_function("motivating_bundle", |b| {
        let separ = Separ::new();
        b.iter(|| separ.analyze_apks(&motivating_bundle).expect("succeeds"));
    });
    group.bench_with_input(
        BenchmarkId::new("market_bundle", market.len()),
        &market,
        |b, apks| {
            let separ = Separ::new();
            b.iter(|| separ.analyze_apks(apks).expect("succeeds"));
        },
    );
    group.finish();
}

/// Serial vs parallel executor on the same bundle. On multi-core hosts
/// the `threads/0` (all cores) rows should beat `threads/1`; on a
/// single-core host they document that the fan-out overhead is noise.
/// Either way the reports are identical (see `tests/determinism.rs`).
fn bench_parallelism(c: &mut Criterion) {
    let market: Vec<_> = generate(&MarketSpec::scaled(24, 0xD5_7E_2A))
        .into_iter()
        .map(|m| m.apk)
        .collect();
    let mut group = c.benchmark_group("exec");
    group.sample_size(10);
    for threads in [1usize, 0] {
        group.bench_with_input(
            BenchmarkId::new("analyze_apks_threads", threads),
            &threads,
            |b, &threads| {
                let separ = Separ::new().with_config(SeparConfig {
                    threads,
                    ..SeparConfig::default()
                });
                b.iter(|| separ.analyze_apks(&market).expect("succeeds"));
            },
        );
    }
    group.finish();
}

fn bench_enforcement(c: &mut Criterion) {
    let apps = vec![
        motivating::navigator_app(),
        motivating::messenger_app(false),
        motivating::malicious_app("+15550000"),
    ];
    let report = Separ::new().analyze_apks(&apps[..2]).expect("succeeds");
    let mut group = c.benchmark_group("ape");
    group.bench_function("attack_no_enforcement", |b| {
        b.iter(|| {
            let mut device = Device::new(apps.clone());
            device.launch("com.navigator", motivating::LOCATION_FINDER);
            device.run_until_idle()
        });
    });
    group.bench_function("attack_with_policies", |b| {
        b.iter(|| {
            let mut device = Device::new(apps.clone());
            device.install_policies(
                report.policies.clone(),
                vec!["com.navigator".into(), "com.messenger".into()],
                PromptHandler::AlwaysDeny,
            );
            device.launch("com.navigator", motivating::LOCATION_FINDER);
            device.run_until_idle()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_extraction,
    bench_synthesis,
    bench_parallelism,
    bench_enforcement
);
criterion_main!(benches);
