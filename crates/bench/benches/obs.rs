//! Microbenchmarks of the separ-obs probes.
//!
//! The headline number is the **disabled** path: probes stay compiled
//! into release binaries, so a disabled span/event/counter call must be
//! a single atomic load and nothing else. The enabled numbers bound
//! what `--trace` costs when it is on.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use separ_obs::Collector;

fn bench_disabled(c: &mut Criterion) {
    let collector = Collector::new_disabled();
    let mut group = c.benchmark_group("obs_disabled");
    group.bench_function("span_open_close", |b| {
        b.iter(|| black_box(collector.span("bench.noop")));
    });
    group.bench_function("event", |b| {
        b.iter(|| collector.event("bench.noop", black_box(Vec::new())));
    });
    group.bench_function("counter_add", |b| {
        b.iter(|| collector.counter_add("bench.noop", black_box(1)));
    });
    group.bench_function("timer_observe", |b| {
        b.iter(|| collector.observe("bench.noop", black_box(collector.timer())));
    });
    group.finish();
}

fn bench_enabled(c: &mut Criterion) {
    let collector = Collector::new();
    let mut group = c.benchmark_group("obs_enabled");
    group.bench_function("span_open_close", |b| {
        b.iter(|| black_box(collector.span("bench.span")));
        collector.reset();
    });
    group.bench_function("counter_add", |b| {
        b.iter(|| collector.counter_add("bench.counter", black_box(1)));
        collector.reset();
    });
    group.bench_function("timer_observe", |b| {
        b.iter(|| collector.observe("bench.hist", black_box(collector.timer())));
        collector.reset();
    });
    group.finish();
}

criterion_group!(benches, bench_disabled, bench_enabled);
criterion_main!(benches);
