//! `separ serve` load generator: concurrent clients replay a scripted
//! churn trace against a real daemon over a real unix socket.
//!
//! Each leg boots a fresh store-backed daemon, serves it on a socket,
//! and lets 1, 4 or 16 client threads drive it simultaneously. Every
//! client owns two market apps and loops a deterministic trace over
//! them — install, permission toggles, in-place update reinstalls —
//! interleaved with `decide` and `query` reads, measuring wall-clock
//! latency per request. After the clients finish, a control connection
//! reads the daemon's own counters and shuts it down.
//!
//! Asserted invariants (the CI smoke contract):
//!
//! * every request is answered `ok` — zero dropped, zero failed;
//! * the daemon reports exactly the churn ops the clients sent
//!   (accepted ⇒ applied);
//! * shutdown drains cleanly and the server loop exits;
//! * a mid-load `metrics` scrape answers with non-empty rolling
//!   p50/p99 decide latencies, in JSON and Prometheus form alike;
//! * a socket subscriber receives every applied batch's `policy_delta`
//!   event exactly once, in sequence order;
//! * the live-metrics recording cost is under 2% of the socket-level
//!   p50 decide latency (measured, asserted, and reported).
//!
//! Results (requests/s, p50/p99 latency, coalescing factor, metrics
//! scrape latency per leg, plus the live-metrics overhead block) land
//! in `BENCH_serve.json`. `--quick` runs the CI configuration.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write as _};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use separ_corpus::market::{generate, MarketSpec};
use separ_obs::json::Value;
use separ_serve::protocol::encode_hex;
use separ_serve::{serve, Daemon, Endpoint, PolicyDeltaEvent, ServeConfig, ServeMetrics};

/// One client's scripted requests: (line, is_churn).
fn client_trace(
    packages: &[(String, String)],
    client: usize,
    rounds: usize,
) -> Vec<(String, bool)> {
    let own = &packages[client * 2..client * 2 + 2];
    let pkg = |i: usize| own[i].1.as_str();
    let mut out = Vec::new();
    for (bytes_hex, _) in own {
        out.push((
            format!(r#"{{"cmd":"install","bytes_hex":"{bytes_hex}"}}"#),
            true,
        ));
    }
    for r in 0..rounds {
        out.push((
            format!(
                concat!(
                    r#"{{"cmd":"set_permission","package":"{}","#,
                    r#""permission":"android.permission.SEND_SMS","granted":{}}}"#
                ),
                pkg(r % 2),
                r % 2 == 0
            ),
            true,
        ));
        out.push((
            format!(r#"{{"cmd":"install","bytes_hex":"{}"}}"#, own[r % 2].0),
            true,
        ));
        out.push((
            format!(
                concat!(
                    r#"{{"cmd":"decide","event":"icc_send","sender_app":"{}","#,
                    r#""sender_component":"LMain;","action":"android.intent.action.VIEW","#,
                    r#""prompt":"deny"}}"#
                ),
                pkg(0)
            ),
            false,
        ));
        out.push((r#"{"cmd":"query","what":"summary"}"#.to_string(), false));
    }
    out
}

struct Rpc {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Rpc {
    fn connect(sock: &PathBuf) -> Rpc {
        // The server thread races us to bind; retry briefly.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match UnixStream::connect(sock) {
                Ok(stream) => {
                    let reader = BufReader::new(stream.try_clone().expect("clone socket"));
                    return Rpc {
                        reader,
                        writer: stream,
                    };
                }
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => panic!("connect {}: {e}", sock.display()),
            }
        }
    }

    fn call(&mut self, line: &str) -> Value {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send");
        self.writer.flush().expect("flush");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("recv");
        let v = Value::parse(response.trim()).expect("response is valid JSON");
        assert_eq!(
            v.get("ok").and_then(Value::as_bool),
            Some(true),
            "request failed: {line} -> {response}"
        );
        v
    }
}

struct Leg {
    clients: usize,
    requests: u64,
    churn_ops: u64,
    wall: Duration,
    latencies_ns: Vec<u64>,
    batches: u64,
    ops_coalesced: u64,
    deadline_misses: u64,
    uptime_ms: u64,
    queue_depth: u64,
    /// Daemon-reported 10s-window decide latency (µs) from the final
    /// mid-load scrape.
    decide_p50_us: f64,
    decide_p99_us: f64,
    /// Mid-load `metrics` scrape latencies (ns, sorted) — the cost of
    /// observing the daemon while it is under load.
    scrape_ns: Vec<u64>,
    subscriber_events: u64,
}

/// Subscribes over its own socket and collects `policy_delta` events
/// until the server closes the stream at shutdown. Returns the seqs in
/// arrival order.
fn subscriber(sock: &PathBuf) -> Vec<u64> {
    let mut rpc = Rpc::connect(sock);
    let ack = rpc.call(r#"{"cmd":"subscribe"}"#);
    assert_eq!(ack.get("subscribed").and_then(Value::as_bool), Some(true));
    let mut seqs = Vec::new();
    let mut line = String::new();
    loop {
        line.clear();
        match rpc.reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {
                let ev = PolicyDeltaEvent::parse(line.trim()).expect("policy_delta event");
                seqs.push(ev.seq);
            }
        }
    }
    seqs
}

fn run_leg(clients: usize, rounds: usize, quick: bool) -> Leg {
    let dir =
        std::env::temp_dir().join(format!("separ-serve-load-{}-{clients}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    let sock = dir.join("sock");
    let daemon = Daemon::start(ServeConfig {
        store_dir: Some(dir.join("store")),
        queue_capacity: 256,
        batch_max: 64,
        ..ServeConfig::default()
    })
    .expect("daemon boots");
    let endpoint = Endpoint::Unix(sock.clone());
    let server = {
        let endpoint = endpoint.clone();
        std::thread::spawn(move || serve(daemon, &endpoint).expect("server runs"))
    };

    // Each client owns two apps; package bytes are prepared up front so
    // hex encoding never lands inside a latency measurement.
    let market = generate(&MarketSpec::scaled(clients * 2, 7));
    let packages: Vec<(String, String)> = market
        .iter()
        .map(|m| {
            (
                encode_hex(&separ_dex::codec::encode(&m.apk)),
                m.apk.package().to_string(),
            )
        })
        .collect();

    // The subscriber rides along for the whole leg: it must see every
    // applied batch exactly once, in order, without slowing anything.
    let sub_thread = {
        let sock = sock.clone();
        std::thread::spawn(move || subscriber(&sock))
    };

    type ClientResults = Vec<(u64, u64, Vec<u64>)>;
    let started = Instant::now();
    let stop_sampler = AtomicBool::new(false);
    let (results, sampler): (ClientResults, (Vec<u64>, Value)) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                let packages = &packages;
                let sock = &sock;
                s.spawn(move || {
                    let mut rpc = Rpc::connect(sock);
                    let mut latencies = Vec::new();
                    let mut churn = 0u64;
                    for (line, is_churn) in client_trace(packages, client, rounds) {
                        let t = Instant::now();
                        rpc.call(&line);
                        latencies.push(t.elapsed().as_nanos() as u64);
                        churn += u64::from(is_churn);
                    }
                    (latencies.len() as u64, churn, latencies)
                })
            })
            .collect();
        // The sampler scrapes `metrics` (both formats) while the
        // clients hammer the daemon — observing the service must
        // work *under* load, not only after it.
        let sampler = {
            let sock = &sock;
            let stop = &stop_sampler;
            s.spawn(move || {
                let mut rpc = Rpc::connect(sock);
                let mut scrape_ns = Vec::new();
                let mut prom = false;
                loop {
                    let line = if prom {
                        r#"{"cmd":"metrics","format":"prometheus"}"#
                    } else {
                        r#"{"cmd":"metrics"}"#
                    };
                    let t = Instant::now();
                    let v = rpc.call(line);
                    scrape_ns.push(t.elapsed().as_nanos() as u64);
                    if prom {
                        let body = v.get("body").and_then(Value::as_str).expect("body");
                        assert!(body.contains("# TYPE separ_uptime_seconds gauge"));
                    }
                    prom = !prom;
                    if stop.load(Ordering::Relaxed) {
                        // One final JSON scrape after the clients
                        // finished: the decide windows must still
                        // be warm (10s rolling horizon).
                        let last = rpc.call(r#"{"cmd":"metrics"}"#);
                        return (scrape_ns, last);
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            })
        };
        let results = handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect();
        stop_sampler.store(true, Ordering::Relaxed);
        (results, sampler.join().expect("sampler thread"))
    });
    let wall = started.elapsed();
    let (mut scrape_ns, metrics) = sampler;
    scrape_ns.sort_unstable();

    // The acceptance gate: a daemon under load answers `metrics` with
    // non-empty rolling decide latencies.
    let decide = metrics
        .get("rolling")
        .and_then(|r| r.get("decide"))
        .and_then(|d| d.get("10s"))
        .expect("rolling decide 10s window is non-empty");
    let decide_p50_us = decide.get("p50_us").and_then(Value::as_f64).expect("p50");
    let decide_p99_us = decide.get("p99_us").and_then(Value::as_f64).expect("p99");
    assert!(decide.get("count").and_then(Value::as_u64).unwrap() > 0);
    assert!(decide_p50_us > 0.0 && decide_p99_us >= decide_p50_us);
    let uptime_ms = metrics
        .get("uptime_ms")
        .and_then(Value::as_u64)
        .expect("uptime");

    // Control connection: daemon-side truth, then shutdown.
    let mut control = Rpc::connect(&sock);
    let stats = control.call(r#"{"cmd":"stats"}"#);
    let stopped = control.call(r#"{"cmd":"shutdown"}"#);
    assert_eq!(stopped.get("stopped").and_then(Value::as_bool), Some(true));
    server.join().expect("server joins cleanly");

    let stat = |k: &str| stats.get(k).and_then(Value::as_u64).unwrap_or(0);
    let requests: u64 = results.iter().map(|(n, _, _)| n).sum();
    let churn_ops: u64 = results.iter().map(|(_, c, _)| c).sum();
    assert_eq!(stat("failed"), 0, "daemon reported failed requests");
    assert_eq!(stat("queue_depth"), 0, "queue not drained");
    assert_eq!(
        stat("ops_coalesced"),
        churn_ops,
        "accepted churn ops must all be applied"
    );
    assert!(stats.get("uptime_ms").and_then(Value::as_u64).is_some());

    // The subscription contract, over a real socket: every batch,
    // exactly once, in order.
    let seqs = sub_thread.join().expect("subscriber thread");
    assert_eq!(
        seqs,
        (1..=stat("batches")).collect::<Vec<_>>(),
        "subscriber must see every policy delta exactly once, in order"
    );

    let mut latencies_ns: Vec<u64> = results.into_iter().flat_map(|(_, _, l)| l).collect();
    latencies_ns.sort_unstable();
    if !quick {
        let _ = std::fs::remove_dir_all(&dir);
    }
    Leg {
        clients,
        requests,
        churn_ops,
        wall,
        latencies_ns,
        batches: stat("batches"),
        ops_coalesced: stat("ops_coalesced"),
        deadline_misses: stat("deadline_misses"),
        uptime_ms,
        queue_depth: stat("queue_depth"),
        decide_p50_us,
        decide_p99_us,
        scrape_ns,
        subscriber_events: seqs.len() as u64,
    }
}

fn percentile_ms(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx] as f64 / 1e6
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let rounds = if quick { 3 } else { 10 };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "serve_load: scripted churn, {rounds} round(s)/client, {cores} core(s){}",
        if quick { " [quick]" } else { "" }
    );
    let mut legs = Vec::new();
    for clients in [1usize, 4, 16] {
        let leg = run_leg(clients, rounds, quick);
        let coalescing = leg.ops_coalesced as f64 / leg.batches.max(1) as f64;
        println!(
            "  {:>2} client(s): {} requests ({} churn) in {:.1}ms — {:.0} req/s, p50 {:.2}ms, p99 {:.2}ms, {:.2} ops/batch",
            leg.clients,
            leg.requests,
            leg.churn_ops,
            leg.wall.as_secs_f64() * 1e3,
            leg.requests as f64 / leg.wall.as_secs_f64(),
            percentile_ms(&leg.latencies_ns, 0.50),
            percentile_ms(&leg.latencies_ns, 0.99),
            coalescing,
        );
        println!(
            "              metrics: {} mid-load scrape(s) p50 {:.2}ms; daemon decide p50 {:.0}µs p99 {:.0}µs; {} delta event(s) subscribed",
            leg.scrape_ns.len(),
            percentile_ms(&leg.scrape_ns, 0.50),
            leg.decide_p50_us,
            leg.decide_p99_us,
            leg.subscriber_events,
        );
        // Concurrency is what makes batches coalesce; with one client
        // the factor is exactly 1.
        if leg.clients == 1 {
            assert!((coalescing - 1.0).abs() < f64::EPSILON);
        }
        legs.push(leg);
    }
    // Concurrent clients must actually coalesce somewhere across the
    // multi-client legs (the scripted trace overlaps churn by design).
    let coalesced = legs
        .iter()
        .any(|l| l.clients > 1 && l.ops_coalesced > l.batches);
    assert!(
        coalesced,
        "no multi-client leg ever folded two ops into one batch"
    );

    // The live-metrics overhead gate: the per-request recording cost
    // (one rolling-histogram record) must be negligible against the
    // socket-level decide latency the daemon actually serves. Measured
    // per-record, asserted against the single-client leg's daemon-side
    // p50 — an on/off A-B over sockets would drown the signal in
    // scheduler noise.
    let record_ns = {
        let metrics = ServeMetrics::new();
        let iters = 200_000u64;
        let t = Instant::now();
        for i in 0..iters {
            metrics.record("decide", 1_000 + (i % 1_000));
        }
        t.elapsed().as_nanos() as f64 / iters as f64
    };
    let decide_p50_ns = legs[0].decide_p50_us * 1_000.0;
    let overhead_pct = record_ns / decide_p50_ns * 100.0;
    println!(
        "live metrics overhead: {record_ns:.0}ns/record vs decide p50 {decide_p50_ns:.0}ns = {overhead_pct:.3}%"
    );
    assert!(
        overhead_pct < 2.0,
        "live-metrics recording must stay under 2% of the decide path"
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"workload\": \"scripted churn trace over market apps, unix socket\",\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(json, "  \"rounds_per_client\": {rounds},");
    json.push_str("  \"legs\": [\n");
    for (i, leg) in legs.iter().enumerate() {
        let _ = write!(
            json,
            concat!(
                "    {{ \"clients\": {}, \"requests\": {}, \"churn_ops\": {}, ",
                "\"wall_ms\": {:.1}, \"requests_per_sec\": {:.0}, ",
                "\"p50_ms\": {:.3}, \"p99_ms\": {:.3}, ",
                "\"batches\": {}, \"ops_coalesced\": {}, \"coalescing_factor\": {:.2}, ",
                "\"deadline_misses\": {}, \"failed\": 0, ",
                "\"uptime_ms\": {}, \"queue_depth\": {}, ",
                "\"decide_p50_us\": {:.1}, \"decide_p99_us\": {:.1}, ",
                "\"metrics_scrapes\": {}, \"metrics_scrape_p50_ms\": {:.3}, ",
                "\"subscriber_events\": {} }}{}\n"
            ),
            leg.clients,
            leg.requests,
            leg.churn_ops,
            leg.wall.as_secs_f64() * 1e3,
            leg.requests as f64 / leg.wall.as_secs_f64(),
            percentile_ms(&leg.latencies_ns, 0.50),
            percentile_ms(&leg.latencies_ns, 0.99),
            leg.batches,
            leg.ops_coalesced,
            leg.ops_coalesced as f64 / leg.batches.max(1) as f64,
            leg.deadline_misses,
            leg.uptime_ms,
            leg.queue_depth,
            leg.decide_p50_us,
            leg.decide_p99_us,
            leg.scrape_ns.len(),
            percentile_ms(&leg.scrape_ns, 0.50),
            leg.subscriber_events,
            if i + 1 < legs.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = write!(
        json,
        concat!(
            "  \"live_metrics\": {{ \"record_ns\": {:.0}, \"decide_p50_ns\": {:.0}, ",
            "\"overhead_pct\": {:.3}, \"asserted_below_pct\": 2.0 }}\n"
        ),
        record_ns, decide_p50_ns, overhead_pct
    );
    json.push_str("}\n");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}
