//! Per-signature synthesis profiling on a 50-app market bundle.

fn main() {
    use separ_core::signature::VulnerabilitySignature;
    use std::time::Instant;
    let spec = separ_corpus::market::MarketSpec::scaled(50, 7);
    let market = separ_corpus::market::generate(&spec);
    let apks: Vec<_> = market.into_iter().map(|m| m.apk).collect();
    let mut apps: Vec<_> = apks
        .iter()
        .map(separ_analysis::extractor::extract_apk)
        .collect();
    separ_analysis::model::update_passive_intent_targets(&mut apps);
    for (name, sig) in [
        (
            "hijack",
            &separ_core::vulns::IntentHijackSignature as &dyn VulnerabilitySignature,
        ),
        ("launch", &separ_core::vulns::ComponentLaunchSignature),
        (
            "escalation",
            &separ_core::vulns::PrivilegeEscalationSignature,
        ),
        ("leakage", &separ_core::vulns::InformationLeakageSignature),
    ] {
        let t = Instant::now();
        let syn = sig.synthesize(&apps, 64).unwrap();
        println!(
            "{name}: total={:?} constr={:?} solve={:?} exploits={}",
            t.elapsed(),
            syn.construction,
            syn.solving,
            syn.exploits.len()
        );
    }
}
