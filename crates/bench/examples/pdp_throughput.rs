//! Sustained PDP decision throughput: linear scan vs compiled index.
//!
//! Builds a market-scale synthetic policy set (thousands of policies over
//! more than a thousand components, the regime the paper's 4,000-app
//! Google Play experiment implies for a device-wide PDP), then measures:
//!
//! 1. **Differential correctness** — every workload context decides
//!    identically on [`LinearPdp`] and the compiled [`Pdp`] (the
//!    throughput comparison is meaningless if the engines disagree);
//! 2. **Single-thread throughput** — decisions/sec for linear vs
//!    compiled on the same workload; the compiled engine must be at
//!    least 5x faster at full scale (in practice: orders of magnitude);
//! 3. **Concurrency scaling** — aggregate decisions/sec with 1, 4 and 16
//!    reader threads sharing one [`SharedPdp`], with a policy delta
//!    published mid-run on the multi-threaded legs to exercise the
//!    atomic swap under load. The lock-free read path must not collapse
//!    under contention (the host may have a single core, so the honest
//!    assertion is "no collapse", not "linear speedup"; the JSON records
//!    the core count alongside the numbers).
//!
//! Results land in `BENCH_pdp.json`. Run with `--quick` for the CI smoke
//! configuration (smaller set, same assertions except the 5x bar, which
//! only makes sense at scale).

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

use separ_core::policy::{Condition, Policy, PolicyAction, PolicyEvent};
use separ_enforce::pdp::{IccContext, LinearPdp, Pdp, PromptHandler};
use separ_enforce::SharedPdp;

/// Deterministic xorshift64* — the workload must be identical across
/// runs and machines so BENCH_pdp.json diffs are meaningful.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

struct Scale {
    policies: usize,
    components: usize,
    apps: usize,
}

const FULL: Scale = Scale {
    policies: 6_000,
    components: 1_500,
    apps: 400,
};
const QUICK: Scale = Scale {
    policies: 400,
    components: 150,
    apps: 40,
};

const VULNS: &[&str] = &[
    "intent-hijack",
    "intent-spoof",
    "information-leakage",
    "broadcast-injection",
    "component-launch",
];

fn component(i: usize) -> String {
    format!("LComp{i};")
}

fn app(i: usize) -> String {
    format!("com.market.app{i}")
}

fn action_name(i: usize) -> String {
    format!("com.market.ACTION_{i}")
}

/// A synthetic device-wide policy set with the paper's shape: the vast
/// majority of rules guard one receiving component (bucketable), a
/// minority constrain send events or carry no receiver (fallback scan).
fn market_policies(rng: &mut Rng, scale: &Scale) -> Vec<Policy> {
    let mut out = Vec::with_capacity(scale.policies);
    for i in 0..scale.policies {
        let mut conditions = Vec::new();
        // ~2% of rules have no receiver guard (send-side or device-wide
        // rules); they land in the fallback list every decision scans, so
        // they are selective the way real synthesized rules are — a
        // specific sender, usually with a specific action.
        let bucketed = rng.below(50) < 49;
        if bucketed {
            conditions.push(Condition::ReceiverIs(component(
                rng.below(scale.components),
            )));
            match rng.below(4) {
                0 => conditions.push(Condition::SenderNotIn(vec![
                    component(rng.below(scale.components)),
                    component(rng.below(scale.components)),
                ])),
                1 => conditions.push(Condition::ActionIs(action_name(rng.below(64)))),
                2 => conditions.push(Condition::ExtraTagged(
                    ["LOCATION", "IMEI", "SMS", "CONTACTS"][rng.below(4)].to_string(),
                )),
                _ => conditions.push(Condition::SenderAppNotIn(vec![
                    app(rng.below(scale.apps)),
                    app(rng.below(scale.apps)),
                ])),
            }
        } else {
            conditions.push(Condition::SenderIs(component(rng.below(scale.components))));
            if rng.below(2) == 0 {
                conditions.push(Condition::ActionIs(action_name(rng.below(64))));
            }
        }
        out.push(Policy {
            id: i as u32,
            vulnerability: VULNS[rng.below(VULNS.len())].to_string(),
            event: if bucketed || rng.below(2) == 0 {
                PolicyEvent::IccReceive
            } else {
                PolicyEvent::IccSend
            },
            conditions,
            action: match rng.below(10) {
                0 => PolicyAction::Allow,
                1 => PolicyAction::Prompt,
                _ => PolicyAction::Deny,
            },
            rationale: String::new(),
        });
    }
    out
}

/// The per-decision workload an enforcing device sees: mostly benign
/// traffic to components nobody guards or contexts that fail the guard
/// conditions, a steady fraction of genuine policy hits, some traffic to
/// entirely unknown components (pool misses) and send-side events that
/// only the fallback lists can answer.
fn workload(rng: &mut Rng, scale: &Scale, n: usize) -> Vec<(PolicyEvent, IccContext)> {
    (0..n)
        .map(|_| {
            let kind = rng.below(10);
            let event = if kind < 8 {
                PolicyEvent::IccReceive
            } else {
                PolicyEvent::IccSend
            };
            let ctx = IccContext {
                sender_app: app(rng.below(scale.apps)),
                sender_component: component(rng.below(scale.components)),
                receiver_app: Some(app(rng.below(scale.apps))),
                receiver_component: if kind < 7 {
                    Some(component(rng.below(scale.components)))
                } else if kind == 7 {
                    // A component no policy mentions: string-pool miss,
                    // index answers straight from the fallback list.
                    Some(format!("LStranger{};", rng.below(64)))
                } else {
                    None
                },
                action: if rng.below(3) == 0 {
                    Some(action_name(rng.below(64)))
                } else {
                    None
                },
                tags: if rng.below(4) == 0 {
                    [separ_android::types::Resource::Location]
                        .into_iter()
                        .collect()
                } else {
                    Default::default()
                },
            };
            (event, ctx)
        })
        .collect()
}

fn bundle(_scale: &Scale) -> Vec<String> {
    (0..8).map(app).collect()
}

/// Runs `eval` over the workload repeatedly until `min_wall` elapses,
/// returning (decisions, wall). Each decision feeds `black_box` so the
/// loop cannot be optimized away.
fn measure(
    work: &[(PolicyEvent, IccContext)],
    min_wall: Duration,
    mut eval: impl FnMut(PolicyEvent, &IccContext) -> bool,
) -> (u64, Duration) {
    let start = Instant::now();
    let mut decisions = 0u64;
    loop {
        for (event, ctx) in work {
            black_box(eval(*event, ctx));
        }
        decisions += work.len() as u64;
        if start.elapsed() >= min_wall {
            return (decisions, start.elapsed());
        }
    }
}

struct Leg {
    threads: usize,
    decisions: u64,
    wall: Duration,
    swaps: u64,
}

/// One scaling leg: `threads` readers hammer the shared handle for
/// `min_wall`; on multi-threaded legs a writer publishes a policy delta
/// mid-run (retiring one policy, adding one) so the swap happens under
/// full read load.
fn scaling_leg(
    shared: &SharedPdp,
    work: &[(PolicyEvent, IccContext)],
    threads: usize,
    min_wall: Duration,
    delta: Option<(Vec<Policy>, Vec<Policy>)>,
) -> Leg {
    let evals_before = shared.evaluations();
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                let mut reader = shared.reader();
                let mut prompt = PromptHandler::AlwaysDeny;
                loop {
                    for (event, ctx) in work {
                        black_box(reader.evaluate(*event, ctx, &mut prompt));
                    }
                    if start.elapsed() >= min_wall {
                        break;
                    }
                }
            });
        }
        if let Some((added, removed)) = delta {
            std::thread::sleep(min_wall / 2);
            shared.apply_delta(added, &removed);
        }
    });
    Leg {
        threads,
        decisions: shared.evaluations() - evals_before,
        wall: start.elapsed(),
        swaps: if threads > 1 { 1 } else { 0 },
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { QUICK } else { FULL };
    let mut rng = Rng(0x5ebb_a5e5_eed5_0001);
    let policies = market_policies(&mut rng, &scale);
    let work = workload(&mut rng, &scale, 2_000);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "pdp_throughput: {} policies, {} components, {} workload contexts, {} core(s){}",
        policies.len(),
        scale.components,
        work.len(),
        cores,
        if quick { " [quick]" } else { "" }
    );

    // 1. Differential correctness on the exact benchmark workload.
    let mut linear = LinearPdp::new(policies.clone(), bundle(&scale));
    let mut compiled = Pdp::new(policies.clone(), bundle(&scale));
    let mut hits = 0u64;
    for (event, ctx) in &work {
        let want = linear.evaluate(*event, ctx);
        let got = compiled.evaluate(*event, ctx);
        assert_eq!(got, want, "engines disagree on {event:?} {ctx:?}");
        if !matches!(got, separ_enforce::Decision::Allow) {
            hits += 1;
        }
    }
    println!(
        "  differential: {} contexts decide identically ({} non-allow)",
        work.len(),
        hits
    );
    assert!(
        hits > 0,
        "workload never hits a policy; benchmark is vacuous"
    );

    // 2. Single-thread throughput, linear vs compiled.
    let min_wall = Duration::from_millis(if quick { 300 } else { 1_000 });
    let (lin_n, lin_wall) = measure(&work, min_wall, |e, c| linear.evaluate(e, c).allows());
    let (cmp_n, cmp_wall) = measure(&work, min_wall, |e, c| compiled.evaluate(e, c).allows());
    let lin_rate = lin_n as f64 / lin_wall.as_secs_f64();
    let cmp_rate = cmp_n as f64 / cmp_wall.as_secs_f64();
    let speedup = cmp_rate / lin_rate;
    println!(
        "  single-thread: linear {:.0}/s, compiled {:.0}/s, speedup {:.1}x",
        lin_rate, cmp_rate, speedup
    );
    if quick {
        assert!(
            speedup >= 1.0,
            "compiled PDP slower than linear scan even at quick scale ({speedup:.2}x)"
        );
    } else {
        assert!(
            speedup >= 5.0,
            "compiled PDP must be at least 5x the linear scan at market scale, got {speedup:.2}x"
        );
    }

    // 3. Concurrency scaling on the shared handle, swap under load.
    let shared = compiled.shared();
    let mut legs = Vec::new();
    for threads in [1usize, 4, 16] {
        let delta = if threads > 1 {
            let retired = policies[threads % policies.len()].clone();
            let mut fresh = retired.clone();
            fresh.id = 0;
            fresh.vulnerability = "information-leakage".into();
            fresh
                .conditions
                .push(Condition::SenderIs(component(threads)));
            Some((vec![fresh], vec![retired]))
        } else {
            None
        };
        let leg = scaling_leg(&shared, &work, threads, min_wall, delta);
        println!(
            "  {} reader(s): {:.0} decisions/s aggregate ({} decisions, {:.0} ms, {} swap(s))",
            leg.threads,
            leg.decisions as f64 / leg.wall.as_secs_f64(),
            leg.decisions,
            leg.wall.as_secs_f64() * 1e3,
            leg.swaps
        );
        legs.push(leg);
    }
    let single = legs[0].decisions as f64 / legs[0].wall.as_secs_f64();
    for leg in &legs[1..] {
        let rate = leg.decisions as f64 / leg.wall.as_secs_f64();
        // With one core the honest expectation is "flat"; with more
        // cores, "higher". Either way contention must not collapse the
        // read path.
        assert!(
            rate >= 0.5 * single,
            "throughput collapsed under {} readers: {:.0}/s vs {:.0}/s single",
            leg.threads,
            rate,
            single
        );
    }

    let mut out = String::from("{\n");
    let _ = write!(
        out,
        concat!(
            "  \"workload\": \"synthetic market policy set\",\n",
            "  \"quick\": {},\n",
            "  \"cores\": {},\n",
            "  \"policies\": {},\n",
            "  \"components\": {},\n",
            "  \"contexts\": {},\n",
            "  \"non_allow_decisions_in_workload\": {},\n",
            "  \"single_thread\": {{\n",
            "    \"linear_decisions_per_sec\": {:.0},\n",
            "    \"compiled_decisions_per_sec\": {:.0},\n",
            "    \"speedup\": {:.2}\n",
            "  }},\n",
            "  \"scaling\": [\n"
        ),
        quick,
        cores,
        policies.len(),
        scale.components,
        work.len(),
        hits,
        lin_rate,
        cmp_rate,
        speedup,
    );
    for (i, leg) in legs.iter().enumerate() {
        let _ = write!(
            out,
            concat!(
                "    {{ \"threads\": {}, \"decisions\": {}, \"wall_ms\": {:.1}, ",
                "\"decisions_per_sec\": {:.0}, \"swaps_mid_run\": {} }}{}\n"
            ),
            leg.threads,
            leg.decisions,
            leg.wall.as_secs_f64() * 1e3,
            leg.decisions as f64 / leg.wall.as_secs_f64(),
            leg.swaps,
            if i + 1 == legs.len() { "" } else { "," }
        );
    }
    out.push_str("  ]\n}\n");
    std::fs::write("BENCH_pdp.json", &out).expect("write BENCH_pdp.json");
    println!("wrote BENCH_pdp.json");
}
