//! Model-cache CI smoke at corpus scale: analyze a 500-app scaled
//! market twice through one content-hash [`ModelCache`]. The first run
//! extracts every app (all misses); the second must be answered
//! entirely from the cache, its span-derived extraction time at least
//! 10x lower, and its report identical to the cold run's.

use std::sync::Arc;

use separ_core::{ModelCache, Separ};

fn main() {
    separ_obs::global().enable();
    let spec = separ_corpus::market::MarketSpec::scaled(500, 7);
    let market = separ_corpus::market::generate(&spec);
    let packages: Vec<Vec<u8>> = market
        .iter()
        .map(|m| separ_dex::codec::encode(&m.apk).to_vec())
        .collect();

    let cache = Arc::new(ModelCache::new());
    let mut runs = Vec::new();
    for round in 0..2u32 {
        separ_obs::global().reset();
        let report = Separ::new()
            .with_model_cache(cache.clone())
            .analyze_packages(&packages)
            .expect("well-formed packages");
        println!(
            "round {round}: extraction={:?} cache_hits={} cache_misses={} exploits={} policies={}",
            report.stats.extraction_wall,
            report.stats.cache_hits,
            report.stats.cache_misses,
            report.exploits.len(),
            report.policies.len(),
        );
        runs.push(report);
    }

    let n = packages.len();
    assert_eq!(
        (runs[0].stats.cache_hits, runs[0].stats.cache_misses),
        (0, n),
        "cold run must extract every app"
    );
    assert_eq!(
        (runs[1].stats.cache_hits, runs[1].stats.cache_misses),
        (n, 0),
        "warm run must be answered entirely from the cache"
    );
    let cold = runs[0].stats.extraction_wall;
    let warm = runs[1].stats.extraction_wall;
    assert!(
        warm * 10 <= cold,
        "warm extraction must be at least 10x faster (cold={cold:?} warm={warm:?})"
    );
    let sig = |r: &separ_core::Report| {
        (
            r.exploits
                .iter()
                .map(|e| format!("{e:?}"))
                .collect::<Vec<_>>(),
            r.policies
                .iter()
                .map(|p| format!("{p:?}"))
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(
        sig(&runs[0]),
        sig(&runs[1]),
        "cached run must change nothing"
    );
    println!(
        "cache smoke ok: {} apps, cold={cold:?} warm={warm:?} ({:.1}x)",
        n,
        cold.as_secs_f64() / warm.as_secs_f64().max(1e-9),
    );
}
