//! Phase-level profiling of one bundle analysis (extract / encode /
//! full ASE), emitting both a human-readable summary and a
//! machine-readable `BENCH_pipeline.json` for before/after comparisons.
//!
//! Two full pipeline runs are profiled over the same generated market:
//! the full-Tseitin encoding (the "before" configuration) and the
//! polarity-aware default with the shared per-bundle translation base.
//! Per-stage wall/CPU timings, CNF sizes and SAT-solver counters come
//! straight from [`separ_core::BundleStats`].

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use separ_core::{BundleStats, Separ, SeparConfig};
use separ_logic::CnfEncoding;

/// Named pipeline configurations profiled against the same bundle.
type RunResult = (String, Duration, BundleStats, usize);

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn run_json(out: &mut String, (name, wall, stats, exploits): &RunResult) {
    let _ = write!(
        out,
        concat!(
            "    {{\n",
            "      \"config\": \"{}\",\n",
            "      \"wall_ms\": {:.3},\n",
            "      \"extraction_wall_ms\": {:.3},\n",
            "      \"extraction_cpu_ms\": {:.3},\n",
            "      \"resolution_ms\": {:.3},\n",
            "      \"synthesis_wall_ms\": {:.3},\n",
            "      \"construction_cpu_ms\": {:.3},\n",
            "      \"solving_cpu_ms\": {:.3},\n",
            "      \"primary_vars\": {},\n",
            "      \"cnf_clauses\": {},\n",
            "      \"shared_base_reuse\": {},\n",
            "      \"conflicts\": {},\n",
            "      \"propagations\": {},\n",
            "      \"exploits\": {},\n",
            "      \"per_signature\": [\n"
        ),
        name,
        ms(*wall),
        ms(stats.extraction_wall),
        ms(stats.extraction_cpu),
        ms(stats.resolution),
        ms(stats.synthesis_wall),
        ms(stats.construction),
        ms(stats.solving),
        stats.primary_vars,
        stats.cnf_clauses,
        stats.shared_base_reuse,
        stats.conflicts,
        stats.propagations,
        exploits,
    );
    for (i, s) in stats.per_signature.iter().enumerate() {
        let _ = write!(
            out,
            concat!(
                "        {{\"name\": \"{}\", \"vars\": {}, \"clauses\": {}, ",
                "\"conflicts\": {}, \"propagations\": {}, \"restarts\": {}, ",
                "\"learnts\": {}, \"minimized_lits\": {}, ",
                "\"construction_ms\": {:.3}, \"solving_ms\": {:.3}}}{}\n"
            ),
            s.name,
            s.primary_vars,
            s.cnf_clauses,
            s.solver.conflicts,
            s.solver.propagations,
            s.solver.restarts,
            s.solver.learnts,
            s.solver.minimized_lits,
            ms(s.construction),
            ms(s.solving),
            if i + 1 == stats.per_signature.len() {
                ""
            } else {
                ","
            },
        );
    }
    let _ = write!(out, "      ]\n    }}");
}

fn main() {
    let spec = separ_corpus::market::MarketSpec::scaled(50, 7);
    let market = separ_corpus::market::generate(&spec);
    let apks: Vec<_> = market.into_iter().map(|m| m.apk).collect();

    let configs = [
        (
            "tseitin",
            SeparConfig {
                cnf_encoding: CnfEncoding::Tseitin,
                ..SeparConfig::default()
            },
        ),
        ("polarity-shared-base", SeparConfig::default()),
    ];
    let mut runs: Vec<RunResult> = Vec::new();
    for (name, config) in configs {
        let t0 = Instant::now();
        let report = Separ::new()
            .with_config(config)
            .analyze_apks(&apks)
            .expect("well-typed signatures");
        let wall = t0.elapsed();
        println!(
            "{name}: wall={wall:?} synthesis={:?} construction={:?} solving={:?} \
             vars={} clauses={} conflicts={} propagations={} exploits={}",
            report.stats.synthesis_wall,
            report.stats.construction,
            report.stats.solving,
            report.stats.primary_vars,
            report.stats.cnf_clauses,
            report.stats.conflicts,
            report.stats.propagations,
            report.exploits.len(),
        );
        runs.push((name.to_string(), wall, report.stats, report.exploits.len()));
    }

    let before = runs[0].2.cnf_clauses as f64;
    let after = runs[1].2.cnf_clauses as f64;
    let reduction = 100.0 * (before - after) / before;
    println!("clause reduction: {reduction:.1}% ({before} -> {after})");

    let mut out = String::from("{\n");
    let _ = write!(
        out,
        concat!(
            "  \"workload\": \"market scaled(50, 7)\",\n",
            "  \"apps\": {},\n",
            "  \"components\": {},\n",
            "  \"intents\": {},\n",
            "  \"clause_reduction_pct\": {:.2},\n",
            "  \"runs\": [\n"
        ),
        apks.len(),
        runs[0].2.components,
        runs[0].2.intents,
        reduction,
    );
    for (i, run) in runs.iter().enumerate() {
        run_json(&mut out, run);
        out.push_str(if i + 1 == runs.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ]\n}\n");
    std::fs::write("BENCH_pipeline.json", &out).expect("write BENCH_pipeline.json");
    println!("wrote BENCH_pipeline.json");
}
