//! Phase-level profiling of one bundle analysis (extract / encode /
//! full ASE). Used to locate pipeline hotspots.

fn main() {
    use std::time::Instant;
    let spec = separ_corpus::market::MarketSpec::scaled(50, 7);
    let market = separ_corpus::market::generate(&spec);
    let apks: Vec<_> = market.into_iter().map(|m| m.apk).collect();
    let t0 = Instant::now();
    let mut apps: Vec<_> = apks
        .iter()
        .map(separ_analysis::extractor::extract_apk)
        .collect();
    println!("extract: {:?}", t0.elapsed());
    separ_analysis::model::update_passive_intent_targets(&mut apps);
    let t1 = Instant::now();
    let enc = separ_core::encode::encode_bundle(&apps);
    println!(
        "encode: {:?} (universe {})",
        t1.elapsed(),
        enc.problem.universe().len()
    );
    let t2 = Instant::now();
    let report = separ_core::Separ::new().analyze_models(apps).unwrap();
    println!(
        "full ASE: {:?} construction={:?} solving={:?} vars={}",
        t2.elapsed(),
        report.stats.construction,
        report.stats.solving,
        report.stats.primary_vars
    );
    println!("exploits: {}", report.exploits.len());
}
