//! Phase-level profiling of one bundle analysis, emitting both a
//! human-readable summary and a machine-readable `BENCH_pipeline.json`
//! for before/after comparisons.
//!
//! Three full pipeline runs are profiled over the same generated market:
//! the full-Tseitin encoding (the "before" configuration), the
//! polarity-aware encoding with the shared per-bundle translation base,
//! and the default configuration with signature-guided relevance slicing
//! on top. The first two legs pin `slicing: false` so their numbers stay
//! comparable with earlier revisions of this file. A paper-scale section
//! re-runs synthesis at 4,000 apps with slicing on and off and asserts
//! the sliced universe is strictly smaller for every signature while
//! enumerating the same number of exploits.
//! All timing comes from the separ-obs span tree — the per-stage fields
//! of [`separ_core::BundleStats`] are span-derived projections, and the
//! per-phase breakdown is the trace's own span rollup; this example adds
//! no `Instant` re-timing of its own. The run also measures what the
//! *disabled* probes cost (the default configuration ships with the
//! collector off) and records that overhead, which must stay under 2%
//! of the workload wall time.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

use separ_core::{BundleStats, Separ, SeparConfig};
use separ_logic::CnfEncoding;
use separ_obs::Trace;

/// One profiled pipeline configuration: name, span-derived wall time,
/// the stats projection, exploit count, and the run's trace snapshot.
struct RunResult {
    name: String,
    wall: Duration,
    stats: BundleStats,
    exploits: usize,
    trace: Trace,
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn ns_ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn run_json(out: &mut String, run: &RunResult) {
    let stats = &run.stats;
    let _ = write!(
        out,
        concat!(
            "    {{\n",
            "      \"config\": \"{}\",\n",
            "      \"wall_ms\": {:.3},\n",
            "      \"extraction_wall_ms\": {:.3},\n",
            "      \"extraction_cpu_ms\": {:.3},\n",
            "      \"resolution_ms\": {:.3},\n",
            "      \"synthesis_wall_ms\": {:.3},\n",
            "      \"construction_cpu_ms\": {:.3},\n",
            "      \"solving_cpu_ms\": {:.3},\n",
            "      \"primary_vars\": {},\n",
            "      \"cnf_clauses\": {},\n",
            "      \"shared_base_reuse\": {},\n",
            "      \"slice_kept\": {},\n",
            "      \"slice_dropped\": {},\n",
            "      \"conflicts\": {},\n",
            "      \"propagations\": {},\n",
            "      \"exploits\": {},\n",
            "      \"phases\": [\n"
        ),
        run.name,
        ms(run.wall),
        ms(stats.extraction_wall),
        ms(stats.extraction_cpu),
        ms(stats.resolution),
        ms(stats.synthesis_wall),
        ms(stats.construction),
        ms(stats.solving),
        stats.primary_vars,
        stats.cnf_clauses,
        stats.shared_base_reuse,
        stats.slice_kept,
        stats.slice_dropped,
        stats.conflicts,
        stats.propagations,
        run.exploits,
    );
    // Per-phase breakdown straight from the span tree.
    let rollup = run.trace.span_rollup();
    for (i, r) in rollup.iter().enumerate() {
        let _ = write!(
            out,
            concat!(
                "        {{\"span\": \"{}\", \"count\": {}, ",
                "\"total_ms\": {:.3}, \"self_ms\": {:.3}}}{}\n"
            ),
            r.name,
            r.count,
            ns_ms(r.total_ns),
            ns_ms(r.self_ns),
            if i + 1 == rollup.len() { "" } else { "," },
        );
    }
    let _ = write!(out, "      ],\n      \"per_signature\": [\n");
    for (i, s) in stats.per_signature.iter().enumerate() {
        let _ = write!(
            out,
            concat!(
                "        {{\"name\": \"{}\", \"vars\": {}, \"clauses\": {}, ",
                "\"slice_kept\": {}, \"slice_dropped\": {}, ",
                "\"conflicts\": {}, \"propagations\": {}, \"restarts\": {}, ",
                "\"learnts\": {}, \"minimized_lits\": {}, ",
                "\"construction_ms\": {:.3}, \"solving_ms\": {:.3}}}{}\n"
            ),
            s.name,
            s.primary_vars,
            s.cnf_clauses,
            s.slice_kept,
            s.slice_dropped,
            s.solver.conflicts,
            s.solver.propagations,
            s.solver.restarts,
            s.solver.learnts,
            s.solver.minimized_lits,
            ms(s.construction),
            ms(s.solving),
            if i + 1 == stats.per_signature.len() {
                ""
            } else {
                ","
            },
        );
    }
    let _ = write!(out, "      ]\n    }}");
}

fn main() {
    let spec = separ_corpus::market::MarketSpec::scaled(50, 7);
    let market = separ_corpus::market::generate(&spec);
    let apks: Vec<_> = market.into_iter().map(|m| m.apk).collect();

    // --- Disabled-collector overhead -----------------------------------
    // The global collector starts disabled, so this run pays only the
    // no-op probes — exactly what a default (non-traced) deployment pays.
    let t0 = Instant::now();
    let report = Separ::new()
        .analyze_apks(&apks)
        .expect("well-typed signatures");
    let disabled_wall = t0.elapsed();
    assert_eq!(
        report.stats.extraction_wall,
        Duration::ZERO,
        "span-derived timings must be zero while the collector is off"
    );
    drop(report);
    // Cost of one disabled span open/close, measured hot.
    let iters = 4_000_000u32;
    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(separ_obs::span("bench.noop"));
    }
    let disabled_span_ns = t0.elapsed().as_nanos() as f64 / f64::from(iters);

    // --- Traced runs ---------------------------------------------------
    separ_obs::global().enable();
    // The first two legs pin `slicing: false` to keep their numbers
    // comparable with the pre-slicing revisions of this benchmark; the
    // third is the shipping default (polarity encoding, shared base,
    // relevance slicing).
    let configs = [
        (
            "tseitin",
            SeparConfig {
                cnf_encoding: CnfEncoding::Tseitin,
                slicing: false,
                ..SeparConfig::default()
            },
        ),
        (
            "polarity-shared-base",
            SeparConfig {
                slicing: false,
                ..SeparConfig::default()
            },
        ),
        ("polarity-sliced", SeparConfig::default()),
    ];
    let mut runs: Vec<RunResult> = Vec::new();
    for (name, config) in configs {
        separ_obs::global().reset();
        let root = separ_obs::span("bench.run");
        let root_id = root.id();
        let report = Separ::new()
            .with_config(config)
            .analyze_apks(&apks)
            .expect("well-typed signatures");
        drop(root);
        let wall = separ_obs::global().duration(root_id);
        let trace = separ_obs::global().snapshot_subtree(root_id);
        println!(
            "{name}: wall={wall:?} synthesis={:?} construction={:?} solving={:?} \
             vars={} clauses={} conflicts={} propagations={} exploits={} spans={}",
            report.stats.synthesis_wall,
            report.stats.construction,
            report.stats.solving,
            report.stats.primary_vars,
            report.stats.cnf_clauses,
            report.stats.conflicts,
            report.stats.propagations,
            report.exploits.len(),
            trace.spans().len(),
        );
        runs.push(RunResult {
            name: name.to_string(),
            wall,
            stats: report.stats,
            exploits: report.exploits.len(),
            trace,
        });
    }

    let before = runs[0].stats.cnf_clauses as f64;
    let after = runs[1].stats.cnf_clauses as f64;
    let reduction = 100.0 * (before - after) / before;
    println!("clause reduction: {reduction:.1}% ({before} -> {after})");

    // Slicing smoke: the sliced default must enumerate exactly as many
    // exploits as the unsliced polarity leg over the same bundle, while
    // never translating a larger formula.
    assert_eq!(
        runs[1].exploits, runs[2].exploits,
        "slicing changed the exploit count at 50 apps"
    );
    assert!(
        runs[2].stats.cnf_clauses <= runs[1].stats.cnf_clauses
            && runs[2].stats.primary_vars <= runs[1].stats.primary_vars,
        "slicing must not grow the formula"
    );
    println!(
        "slicing (50 apps): kept {} / dropped {} app slots, vars {} -> {}, clauses {} -> {}",
        runs[2].stats.slice_kept,
        runs[2].stats.slice_dropped,
        runs[1].stats.primary_vars,
        runs[2].stats.primary_vars,
        runs[1].stats.cnf_clauses,
        runs[2].stats.cnf_clauses,
    );

    // --- Paper-scale extraction trajectory ------------------------------
    // The paper's market experiment runs ~4,000 apps; extraction is the
    // per-app stage, so it is what must scale. Collector off: these are
    // clean wall times for the summary-based extractor, then for the
    // content-hash model cache cold (miss path: hash + decode + extract)
    // and warm (hit path: hash + lookup).
    separ_obs::global().disable();
    let scale_spec = separ_corpus::market::MarketSpec::scaled(4000, 7);
    let scale_market = separ_corpus::market::generate(&scale_spec);
    let scale_apks: Vec<_> = scale_market.into_iter().map(|m| m.apk).collect();
    let scale_n = scale_apks.len() as f64;
    let packages: Vec<Vec<u8>> = scale_apks
        .iter()
        .map(|a| separ_dex::codec::encode(a).to_vec())
        .collect();

    let t0 = Instant::now();
    let mut scale_components = 0usize;
    for apk in &scale_apks {
        scale_components += separ_analysis::extractor::extract_apk(apk).components.len();
    }
    let extract_wall = t0.elapsed();
    let extract_per_app = ms(extract_wall) / scale_n;

    // Seed-bench reference: 89.366 ms extraction over 50 apps before the
    // summary engine (committed BENCH_pipeline.json at the seed revision).
    let baseline_per_app = 89.366 / 50.0;
    let speedup = baseline_per_app / extract_per_app;

    let cache = separ_analysis::cache::ModelCache::new();
    let t0 = Instant::now();
    for bytes in &packages {
        let _ = cache.get_or_extract(bytes).expect("well-formed package");
    }
    let cold_wall = t0.elapsed();
    let t0 = Instant::now();
    for bytes in &packages {
        let _ = cache.get_or_extract(bytes).expect("well-formed package");
    }
    let warm_wall = t0.elapsed();
    let warm_per_app = ms(warm_wall) / scale_n;
    let cache_stats = cache.stats();

    println!(
        "market scale({}): extract={extract_wall:?} ({extract_per_app:.3} ms/app, \
         {speedup:.1}x vs seed {baseline_per_app:.3}) cold={cold_wall:?} warm={warm_wall:?} \
         ({warm_per_app:.4} ms/app) hits={} misses={}",
        scale_apks.len(),
        cache_stats.memory_hits,
        cache_stats.misses,
    );
    assert!(
        speedup >= 2.0,
        "summary-based extraction must stay well ahead of the seed baseline \
         ({extract_per_app:.3} ms/app vs {baseline_per_app:.3})"
    );
    assert!(
        warm_per_app < extract_per_app / 4.0,
        "a warm model cache must make re-extraction near-free \
         ({warm_per_app:.4} ms/app vs {extract_per_app:.3} cold)"
    );
    assert_eq!(
        (cache_stats.memory_hits, cache_stats.misses),
        (scale_apks.len() as u64, scale_apks.len() as u64),
        "second pass must be answered entirely from the cache"
    );

    // --- Paper-scale synthesis: slicing off vs on ------------------------
    // The whole point of relevance slicing is that the relational universe
    // a signature is translated against stops growing with market size.
    // Run the full pipeline at 4,000 apps both ways (collector on, so
    // synthesis wall is span-derived like the 50-app legs) and demand a
    // strict per-signature reduction with identical exploit counts.
    let mut scale_runs: Vec<(&str, BundleStats, usize, Duration)> = Vec::new();
    for (name, slicing) in [("unsliced", false), ("sliced", true)] {
        separ_obs::global().reset();
        separ_obs::global().enable();
        let root = separ_obs::span("bench.scale");
        let root_id = root.id();
        let report = Separ::new()
            .with_config(SeparConfig {
                slicing,
                ..SeparConfig::default()
            })
            .analyze_apks(&scale_apks)
            .expect("well-typed signatures");
        drop(root);
        let wall = separ_obs::global().duration(root_id);
        separ_obs::global().disable();
        println!(
            "market scale({}) {name}: wall={wall:?} synthesis={:?} vars={} clauses={} \
             kept={} dropped={} exploits={}",
            scale_apks.len(),
            report.stats.synthesis_wall,
            report.stats.primary_vars,
            report.stats.cnf_clauses,
            report.stats.slice_kept,
            report.stats.slice_dropped,
            report.exploits.len(),
        );
        scale_runs.push((name, report.stats, report.exploits.len(), wall));
    }
    assert_eq!(
        scale_runs[0].2, scale_runs[1].2,
        "slicing changed the exploit count at market scale"
    );
    for (u, s) in scale_runs[0]
        .1
        .per_signature
        .iter()
        .zip(&scale_runs[1].1.per_signature)
    {
        assert_eq!(u.exploits, s.exploits, "{}: exploit counts diverge", s.name);
        assert!(
            s.primary_vars < u.primary_vars,
            "{}: slicing must strictly shrink primary vars ({} vs {})",
            s.name,
            s.primary_vars,
            u.primary_vars
        );
        assert!(
            s.cnf_clauses < u.cnf_clauses,
            "{}: slicing must strictly shrink the CNF ({} vs {})",
            s.name,
            s.cnf_clauses,
            u.cnf_clauses
        );
    }

    // Disabled overhead: the workload executes one probe per recorded
    // span; extrapolate their no-op cost against the untraced wall time.
    // (An upper bound — it charges every probe at the measured hot-loop
    // cost.)
    let spans_per_run = runs[1].trace.spans().len() as f64;
    let disabled_overhead_pct =
        100.0 * (spans_per_run * disabled_span_ns) / disabled_wall.as_nanos() as f64;
    println!(
        "obs overhead (disabled): {disabled_span_ns:.2} ns/probe x {spans_per_run} spans \
         = {disabled_overhead_pct:.4}% of the {disabled_wall:?} untraced run"
    );
    assert!(
        disabled_overhead_pct < 2.0,
        "disabled-collector overhead must stay under 2%"
    );

    // Paper-scale synthesis legs as JSON (nested under "market_scale").
    let mut scale_json = String::new();
    for (i, (name, stats, exploits, wall)) in scale_runs.iter().enumerate() {
        let _ = write!(
            scale_json,
            concat!(
                "      {{\"config\": \"{}\", \"wall_ms\": {:.3}, ",
                "\"synthesis_wall_ms\": {:.3}, \"primary_vars\": {}, ",
                "\"cnf_clauses\": {}, \"slice_kept\": {}, ",
                "\"slice_dropped\": {}, \"exploits\": {}, \"per_signature\": [\n"
            ),
            name,
            ms(*wall),
            ms(stats.synthesis_wall),
            stats.primary_vars,
            stats.cnf_clauses,
            stats.slice_kept,
            stats.slice_dropped,
            exploits,
        );
        for (j, s) in stats.per_signature.iter().enumerate() {
            let _ = write!(
                scale_json,
                concat!(
                    "        {{\"name\": \"{}\", \"vars\": {}, \"clauses\": {}, ",
                    "\"slice_kept\": {}, \"slice_dropped\": {}, \"exploits\": {}, ",
                    "\"construction_ms\": {:.3}, \"solving_ms\": {:.3}}}{}\n"
                ),
                s.name,
                s.primary_vars,
                s.cnf_clauses,
                s.slice_kept,
                s.slice_dropped,
                s.exploits,
                ms(s.construction),
                ms(s.solving),
                if j + 1 == stats.per_signature.len() {
                    ""
                } else {
                    ","
                },
            );
        }
        let _ = writeln!(
            scale_json,
            "      ]}}{}",
            if i + 1 == scale_runs.len() { "" } else { "," }
        );
    }

    let mut out = String::from("{\n");
    let _ = write!(
        out,
        concat!(
            "  \"workload\": \"market scaled(50, 7)\",\n",
            "  \"apps\": {},\n",
            "  \"components\": {},\n",
            "  \"intents\": {},\n",
            "  \"clause_reduction_pct\": {:.2},\n",
            "  \"obs\": {{\n",
            "    \"disabled_wall_ms\": {:.3},\n",
            "    \"disabled_span_ns_per_op\": {:.2},\n",
            "    \"spans_per_run\": {},\n",
            "    \"disabled_overhead_pct\": {:.4}\n",
            "  }},\n",
            "  \"market_scale\": {{\n",
            "    \"workload\": \"market scaled(4000, 7)\",\n",
            "    \"apps\": {},\n",
            "    \"components\": {},\n",
            "    \"seed_baseline_per_app_ms\": {:.3},\n",
            "    \"extraction_wall_ms\": {:.3},\n",
            "    \"extraction_per_app_ms\": {:.3},\n",
            "    \"speedup_vs_seed\": {:.2},\n",
            "    \"cache_cold_wall_ms\": {:.3},\n",
            "    \"cache_warm_wall_ms\": {:.3},\n",
            "    \"cache_warm_per_app_ms\": {:.4},\n",
            "    \"cache_memory_hits\": {},\n",
            "    \"cache_misses\": {},\n",
            "    \"synthesis\": [\n{}    ]\n",
            "  }},\n",
            "  \"runs\": [\n"
        ),
        apks.len(),
        runs[0].stats.components,
        runs[0].stats.intents,
        reduction,
        ms(disabled_wall),
        disabled_span_ns,
        spans_per_run as u64,
        disabled_overhead_pct,
        scale_apks.len(),
        scale_components,
        baseline_per_app,
        ms(extract_wall),
        extract_per_app,
        speedup,
        ms(cold_wall),
        ms(warm_wall),
        warm_per_app,
        cache_stats.memory_hits,
        cache_stats.misses,
        scale_json,
    );
    for (i, run) in runs.iter().enumerate() {
        run_json(&mut out, run);
        out.push_str(if i + 1 == runs.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ]\n}\n");
    std::fs::write("BENCH_pipeline.json", &out).expect("write BENCH_pipeline.json");
    println!("wrote BENCH_pipeline.json");
}
