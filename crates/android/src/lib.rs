//! **separ-android** — the modelled Android framework.
//!
//! The SEPAR paper formalizes the parts of Android relevant to
//! inter-component communication: applications, components, Intents,
//! IntentFilters, permissions, and the resolution rules that decide where
//! an implicit Intent is delivered. This crate is that formal foundation:
//!
//! * [`types`] — permissions, the Holavanalli-style permission-required
//!   resources (thirteen sources, five destinations, plus `ICC`), and
//!   sensitive [`types::FlowPath`]s;
//! * [`api`] — the modelled API surface: a PScout-style permission map and
//!   SuSi-style source/sink tables consulted by both the static analyzer
//!   and the enforcement runtime;
//! * [`resolution`] — Android's action/category/data tests, shared by the
//!   meta-model, the analyzer and the runtime ICC router.
//!
//! # Examples
//!
//! ```
//! use separ_android::resolution::{filter_matches, IntentData};
//! use separ_dex::manifest::IntentFilterDecl;
//!
//! let filter = IntentFilterDecl::for_actions(["showLoc"]);
//! let intent = IntentData::for_action("showLoc");
//! assert!(filter_matches(&intent, &filter));
//! ```
#![warn(missing_docs)]

pub mod api;
pub mod resolution;
pub mod types;

pub use resolution::IntentData;
pub use types::{FlowPath, Resource};
