//! Core Android domain types: permissions, resources, actions, categories.

use std::fmt;

/// Well-known Android permission strings used throughout the reproduction.
pub mod perm {
    /// Fine-grained location access.
    pub const ACCESS_FINE_LOCATION: &str = "android.permission.ACCESS_FINE_LOCATION";
    /// Send SMS messages.
    pub const SEND_SMS: &str = "android.permission.SEND_SMS";
    /// Write SMS (the paper's Ermete SMS example).
    pub const WRITE_SMS: &str = "android.permission.WRITE_SMS";
    /// Read SMS inbox.
    pub const READ_SMS: &str = "android.permission.READ_SMS";
    /// Internet access.
    pub const INTERNET: &str = "android.permission.INTERNET";
    /// Read contacts.
    pub const READ_CONTACTS: &str = "android.permission.READ_CONTACTS";
    /// Read phone state (IMEI, numbers).
    pub const READ_PHONE_STATE: &str = "android.permission.READ_PHONE_STATE";
    /// Camera access.
    pub const CAMERA: &str = "android.permission.CAMERA";
    /// Record audio.
    pub const RECORD_AUDIO: &str = "android.permission.RECORD_AUDIO";
    /// External storage write.
    pub const WRITE_EXTERNAL_STORAGE: &str = "android.permission.WRITE_EXTERNAL_STORAGE";
    /// External storage read.
    pub const READ_EXTERNAL_STORAGE: &str = "android.permission.READ_EXTERNAL_STORAGE";
    /// Read calendar.
    pub const READ_CALENDAR: &str = "android.permission.READ_CALENDAR";
    /// Read call log.
    pub const READ_CALL_LOG: &str = "android.permission.READ_CALL_LOG";
    /// Read browser history/bookmarks.
    pub const READ_HISTORY_BOOKMARKS: &str =
        "com.android.browser.permission.READ_HISTORY_BOOKMARKS";
    /// Access accounts.
    pub const GET_ACCOUNTS: &str = "android.permission.GET_ACCOUNTS";
    /// Place phone calls.
    pub const CALL_PHONE: &str = "android.permission.CALL_PHONE";

    /// Returns `true` for *dangerous*-protection-level permissions — the
    /// ones whose re-delegation constitutes privilege escalation.
    /// `INTERNET` is a normal-level permission in Android and is excluded,
    /// as are unknown custom permissions.
    pub fn is_dangerous(permission: &str) -> bool {
        matches!(
            permission,
            ACCESS_FINE_LOCATION
                | SEND_SMS
                | WRITE_SMS
                | READ_SMS
                | READ_CONTACTS
                | READ_PHONE_STATE
                | CAMERA
                | RECORD_AUDIO
                | WRITE_EXTERNAL_STORAGE
                | READ_EXTERNAL_STORAGE
                | READ_CALENDAR
                | READ_CALL_LOG
                | READ_HISTORY_BOOKMARKS
                | GET_ACCOUNTS
                | CALL_PHONE
        )
    }
}

/// Well-known intent actions.
pub mod action {
    /// Main entry action.
    pub const MAIN: &str = "android.intent.action.MAIN";
    /// View data.
    pub const VIEW: &str = "android.intent.action.VIEW";
    /// Send data.
    pub const SEND: &str = "android.intent.action.SEND";
    /// Boot completed broadcast.
    pub const BOOT_COMPLETED: &str = "android.intent.action.BOOT_COMPLETED";
    /// SMS received broadcast.
    pub const SMS_RECEIVED: &str = "android.provider.Telephony.SMS_RECEIVED";
}

/// Returns `true` for broadcast actions only the system may legitimately
/// send; an app-sourced intent carrying one of these is a spoof.
pub fn is_protected_broadcast(action_name: &str) -> bool {
    matches!(
        action_name,
        action::BOOT_COMPLETED
            | action::SMS_RECEIVED
            | "android.intent.action.BATTERY_LOW"
            | "android.intent.action.PACKAGE_ADDED"
            | "android.net.conn.CONNECTIVITY_CHANGE"
    )
}

/// Well-known intent categories.
pub mod category {
    /// Default category, implicitly required for activity resolution.
    pub const DEFAULT: &str = "android.intent.category.DEFAULT";
    /// Launcher entry.
    pub const LAUNCHER: &str = "android.intent.category.LAUNCHER";
    /// Browsable link.
    pub const BROWSABLE: &str = "android.intent.category.BROWSABLE";
}

/// Permission-required resources, after Holavanalli et al.'s flow
/// permissions (the paper's source/destination domains), augmented with
/// `Icc` for inter-component flows.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Resource {
    // --- the thirteen source resources ---
    /// GPS / network location.
    Location,
    /// Device identifiers (IMEI).
    DeviceId,
    /// Contact list.
    Contacts,
    /// Calendar entries.
    Calendar,
    /// SMS inbox contents.
    SmsInbox,
    /// External storage reads.
    SdcardRead,
    /// Network reads.
    NetworkRead,
    /// Camera frames.
    Camera,
    /// Microphone audio.
    Microphone,
    /// Account registry.
    Accounts,
    /// Call log.
    CallLog,
    /// Browser history.
    BrowserHistory,
    /// Telephony state (numbers, cell info).
    PhoneState,
    // --- the five destination resources ---
    /// Network writes.
    NetworkWrite,
    /// Outbound SMS.
    Sms,
    /// External storage writes.
    SdcardWrite,
    /// The shared system log.
    Log,
    /// Outbound phone calls.
    PhoneCall,
    // --- the augmentation ---
    /// An inter-component communication endpoint: both a source (data
    /// arriving in an Intent) and a destination (data leaving in one).
    Icc,
}

impl Resource {
    /// All resources, in a stable order.
    pub const ALL: [Resource; 19] = [
        Resource::Location,
        Resource::DeviceId,
        Resource::Contacts,
        Resource::Calendar,
        Resource::SmsInbox,
        Resource::SdcardRead,
        Resource::NetworkRead,
        Resource::Camera,
        Resource::Microphone,
        Resource::Accounts,
        Resource::CallLog,
        Resource::BrowserHistory,
        Resource::PhoneState,
        Resource::NetworkWrite,
        Resource::Sms,
        Resource::SdcardWrite,
        Resource::Log,
        Resource::PhoneCall,
        Resource::Icc,
    ];

    /// Returns `true` if the resource can originate sensitive data.
    pub fn is_source(self) -> bool {
        !matches!(
            self,
            Resource::NetworkWrite
                | Resource::Sms
                | Resource::SdcardWrite
                | Resource::Log
                | Resource::PhoneCall
        )
    }

    /// Returns `true` if the resource can exfiltrate data.
    pub fn is_sink(self) -> bool {
        matches!(
            self,
            Resource::NetworkWrite
                | Resource::Sms
                | Resource::SdcardWrite
                | Resource::Log
                | Resource::PhoneCall
                | Resource::Icc
        )
    }

    /// The install-time permission guarding the resource, if any.
    ///
    /// `Icc` and `Log` are unguarded, which is exactly what makes
    /// ICC-mediated flows attractive to attackers.
    pub fn permission(self) -> Option<&'static str> {
        match self {
            Resource::Location => Some(perm::ACCESS_FINE_LOCATION),
            Resource::DeviceId | Resource::PhoneState => Some(perm::READ_PHONE_STATE),
            Resource::Contacts => Some(perm::READ_CONTACTS),
            Resource::Calendar => Some(perm::READ_CALENDAR),
            Resource::SmsInbox => Some(perm::READ_SMS),
            Resource::SdcardRead => Some(perm::READ_EXTERNAL_STORAGE),
            Resource::NetworkRead | Resource::NetworkWrite => Some(perm::INTERNET),
            Resource::Camera => Some(perm::CAMERA),
            Resource::Microphone => Some(perm::RECORD_AUDIO),
            Resource::Accounts => Some(perm::GET_ACCOUNTS),
            Resource::CallLog => Some(perm::READ_CALL_LOG),
            Resource::BrowserHistory => Some(perm::READ_HISTORY_BOOKMARKS),
            Resource::Sms => Some(perm::SEND_SMS),
            Resource::SdcardWrite => Some(perm::WRITE_EXTERNAL_STORAGE),
            Resource::PhoneCall => Some(perm::CALL_PHONE),
            Resource::Log | Resource::Icc => None,
        }
    }

    /// Stable name used in atoms, policies and reports.
    pub fn name(self) -> &'static str {
        match self {
            Resource::Location => "LOCATION",
            Resource::DeviceId => "IMEI",
            Resource::Contacts => "CONTACTS",
            Resource::Calendar => "CALENDAR",
            Resource::SmsInbox => "SMS_INBOX",
            Resource::SdcardRead => "SDCARD_READ",
            Resource::NetworkRead => "NETWORK_READ",
            Resource::Camera => "CAMERA",
            Resource::Microphone => "MICROPHONE",
            Resource::Accounts => "ACCOUNTS",
            Resource::CallLog => "CALL_LOG",
            Resource::BrowserHistory => "BROWSER_HISTORY",
            Resource::PhoneState => "PHONE_STATE",
            Resource::NetworkWrite => "NETWORK",
            Resource::Sms => "SMS",
            Resource::SdcardWrite => "SDCARD",
            Resource::Log => "LOG",
            Resource::PhoneCall => "PHONE_CALL",
            Resource::Icc => "ICC",
        }
    }

    /// Inverse of [`Resource::name`].
    pub fn from_name(name: &str) -> Option<Resource> {
        Resource::ALL.into_iter().find(|r| r.name() == name)
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A sensitive data-flow path within a component, from a source resource to
/// a sink resource (the paper's `Path` signature).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowPath {
    /// Where the data originates.
    pub source: Resource,
    /// Where the data ends up.
    pub sink: Resource,
}

impl FlowPath {
    /// Creates a path.
    pub fn new(source: Resource, sink: Resource) -> FlowPath {
        FlowPath { source, sink }
    }
}

impl fmt::Display for FlowPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.source, self.sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_sink_partition() {
        let sources = Resource::ALL.iter().filter(|r| r.is_source()).count();
        let sinks = Resource::ALL.iter().filter(|r| r.is_sink()).count();
        // Thirteen sources + ICC.
        assert_eq!(sources, 14);
        // Five destinations + ICC.
        assert_eq!(sinks, 6);
        assert!(Resource::Icc.is_source() && Resource::Icc.is_sink());
    }

    #[test]
    fn names_round_trip() {
        for r in Resource::ALL {
            assert_eq!(Resource::from_name(r.name()), Some(r));
        }
        assert_eq!(Resource::from_name("NOPE"), None);
    }

    #[test]
    fn icc_and_log_are_unguarded() {
        assert_eq!(Resource::Icc.permission(), None);
        assert_eq!(Resource::Log.permission(), None);
        assert_eq!(
            Resource::Location.permission(),
            Some(perm::ACCESS_FINE_LOCATION)
        );
    }

    #[test]
    fn dangerous_permission_classification() {
        assert!(perm::is_dangerous(perm::SEND_SMS));
        assert!(perm::is_dangerous(perm::ACCESS_FINE_LOCATION));
        assert!(perm::is_dangerous(perm::CALL_PHONE));
        // INTERNET is a normal-level permission: not escalatable.
        assert!(!perm::is_dangerous(perm::INTERNET));
        assert!(!perm::is_dangerous("com.custom.PERMISSION"));
    }

    #[test]
    fn protected_broadcast_classification() {
        assert!(is_protected_broadcast(action::BOOT_COMPLETED));
        assert!(is_protected_broadcast(action::SMS_RECEIVED));
        assert!(!is_protected_broadcast(action::VIEW));
        assert!(!is_protected_broadcast("com.app.CUSTOM_EVENT"));
    }

    #[test]
    fn flow_path_display() {
        let p = FlowPath::new(Resource::Location, Resource::Icc);
        assert_eq!(p.to_string(), "LOCATION -> ICC");
    }
}
