//! The modelled Android API surface.
//!
//! A PScout-style permission map plus SuSi-style source/sink tables, keyed
//! by `(class descriptor, method name)`. Both the static analyzer (AME) and
//! the enforcement runtime (APE) consult these tables, so the two ends of
//! the system agree on what every API means.

use std::collections::HashMap;
use std::sync::OnceLock;

use crate::types::{perm, Resource};

/// Classification of an API method.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ApiKind {
    /// Produces sensitive data of the given resource kind.
    Source(Resource),
    /// Consumes (exfiltrates) data into the given resource kind.
    Sink(Resource),
    /// An inter-component communication operation.
    Icc(IccMethod),
    /// Reads data out of a received Intent (an ICC source).
    IntentRead,
    /// Configures an Intent object (action, extras, target...).
    IntentConfig(IntentConfigKind),
    /// A dynamic permission check (`checkCallingPermission`).
    PermissionCheck,
    /// Registers a broadcast receiver at runtime.
    DynamicRegister,
    /// Anything else.
    Neutral,
}

/// The ICC entry points the paper's analysis tracks.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum IccMethod {
    /// `Context.startActivity(Intent)`.
    StartActivity,
    /// `Activity.startActivityForResult(Intent, int)` — two-way ICC.
    StartActivityForResult,
    /// `Activity.setResult(int, Intent)` — the passive reply Intent.
    SetResult,
    /// `Context.startService(Intent)`.
    StartService,
    /// `Context.bindService(Intent, conn, flags)` — two-way ICC.
    BindService,
    /// `Context.sendBroadcast(Intent)`.
    SendBroadcast,
    /// `ContentResolver.query(uri, ...)`.
    ProviderQuery,
    /// `ContentResolver.insert(uri, ...)`.
    ProviderInsert,
    /// `ContentResolver.update(uri, ...)`.
    ProviderUpdate,
    /// `ContentResolver.delete(uri, ...)`.
    ProviderDelete,
}

impl IccMethod {
    /// All ICC methods, in declaration order (stable across releases, so
    /// bitmask and serialized encodings can rely on it).
    pub const ALL: [IccMethod; 10] = [
        IccMethod::StartActivity,
        IccMethod::StartActivityForResult,
        IccMethod::SetResult,
        IccMethod::StartService,
        IccMethod::BindService,
        IccMethod::SendBroadcast,
        IccMethod::ProviderQuery,
        IccMethod::ProviderInsert,
        IccMethod::ProviderUpdate,
        IccMethod::ProviderDelete,
    ];

    /// Returns `true` for the two-way ICC methods that produce passive
    /// reply Intents (paper Algorithm 1).
    pub fn requests_result(self) -> bool {
        matches!(
            self,
            IccMethod::StartActivityForResult | IccMethod::BindService
        )
    }

    /// The API method name.
    pub fn method_name(self) -> &'static str {
        match self {
            IccMethod::StartActivity => "startActivity",
            IccMethod::StartActivityForResult => "startActivityForResult",
            IccMethod::SetResult => "setResult",
            IccMethod::StartService => "startService",
            IccMethod::BindService => "bindService",
            IccMethod::SendBroadcast => "sendBroadcast",
            IccMethod::ProviderQuery => "query",
            IccMethod::ProviderInsert => "insert",
            IccMethod::ProviderUpdate => "update",
            IccMethod::ProviderDelete => "delete",
        }
    }
}

/// How an `IntentConfig` call shapes the intent.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum IntentConfigKind {
    /// `new Intent()` constructor.
    Init,
    /// `setAction(String)`.
    SetAction,
    /// `addCategory(String)`.
    AddCategory,
    /// `setType(String)` (MIME data type).
    SetType,
    /// `setData(Uri)` / scheme-bearing data.
    SetData,
    /// `putExtra(String, value)`.
    PutExtra,
    /// `setClassName` / `setComponent` / `setClass` — explicit target.
    SetTarget,
}

/// Framework class descriptors.
pub mod class {
    /// `android.content.Intent`.
    pub const INTENT: &str = "Landroid/content/Intent;";
    /// `android.content.Context`.
    pub const CONTEXT: &str = "Landroid/content/Context;";
    /// `android.app.Activity`.
    pub const ACTIVITY: &str = "Landroid/app/Activity;";
    /// `android.app.Service`.
    pub const SERVICE: &str = "Landroid/app/Service;";
    /// `android.content.BroadcastReceiver`.
    pub const RECEIVER: &str = "Landroid/content/BroadcastReceiver;";
    /// `android.content.ContentProvider`.
    pub const PROVIDER: &str = "Landroid/content/ContentProvider;";
    /// `android.content.ContentResolver`.
    pub const RESOLVER: &str = "Landroid/content/ContentResolver;";
    /// `android.location.LocationManager`.
    pub const LOCATION_MANAGER: &str = "Landroid/location/LocationManager;";
    /// `android.telephony.SmsManager`.
    pub const SMS_MANAGER: &str = "Landroid/telephony/SmsManager;";
    /// `android.telephony.TelephonyManager`.
    pub const TELEPHONY_MANAGER: &str = "Landroid/telephony/TelephonyManager;";
    /// `android.util.Log`.
    pub const LOG: &str = "Landroid/util/Log;";
    /// `java.net.HttpURLConnection`.
    pub const HTTP: &str = "Ljava/net/HttpURLConnection;";
    /// `java.io.FileOutputStream` (external storage stand-in).
    pub const FILE_OUT: &str = "Ljava/io/FileOutputStream;";
    /// `java.io.FileInputStream`.
    pub const FILE_IN: &str = "Ljava/io/FileInputStream;";
    /// `android.hardware.Camera`.
    pub const CAMERA: &str = "Landroid/hardware/Camera;";
    /// `android.media.AudioRecord`.
    pub const AUDIO: &str = "Landroid/media/AudioRecord;";
    /// `android.accounts.AccountManager`.
    pub const ACCOUNTS: &str = "Landroid/accounts/AccountManager;";
}

type ApiTable = HashMap<(&'static str, &'static str), (ApiKind, Option<&'static str>)>;

/// The full API table: `(class, method) -> (kind, required permission)`.
fn table() -> &'static ApiTable {
    static TABLE: OnceLock<ApiTable> = OnceLock::new();
    TABLE.get_or_init(|| {
        use ApiKind as K;
        use IntentConfigKind as C;
        let mut t: ApiTable = HashMap::new();
        let mut put = |class: &'static str,
                       method: &'static str,
                       kind: ApiKind,
                       perm: Option<&'static str>| {
            t.insert((class, method), (kind, perm));
        };

        // --- Intent configuration ---
        put(class::INTENT, "<init>", K::IntentConfig(C::Init), None);
        put(
            class::INTENT,
            "setAction",
            K::IntentConfig(C::SetAction),
            None,
        );
        put(
            class::INTENT,
            "addCategory",
            K::IntentConfig(C::AddCategory),
            None,
        );
        put(class::INTENT, "setType", K::IntentConfig(C::SetType), None);
        put(class::INTENT, "setData", K::IntentConfig(C::SetData), None);
        put(
            class::INTENT,
            "setDataAndType",
            K::IntentConfig(C::SetData),
            None,
        );
        put(
            class::INTENT,
            "putExtra",
            K::IntentConfig(C::PutExtra),
            None,
        );
        put(
            class::INTENT,
            "setClassName",
            K::IntentConfig(C::SetTarget),
            None,
        );
        put(
            class::INTENT,
            "setComponent",
            K::IntentConfig(C::SetTarget),
            None,
        );
        put(
            class::INTENT,
            "setClass",
            K::IntentConfig(C::SetTarget),
            None,
        );

        // --- Intent reads (ICC sources) ---
        for m in [
            "getStringExtra",
            "getIntExtra",
            "getExtras",
            "getAction",
            "getData",
        ] {
            put(class::INTENT, m, K::IntentRead, None);
        }
        put(class::ACTIVITY, "getIntent", K::IntentRead, None);

        // --- ICC calls ---
        for (ctx, m, icc) in [
            (class::CONTEXT, "startActivity", IccMethod::StartActivity),
            (class::ACTIVITY, "startActivity", IccMethod::StartActivity),
            (
                class::ACTIVITY,
                "startActivityForResult",
                IccMethod::StartActivityForResult,
            ),
            (class::ACTIVITY, "setResult", IccMethod::SetResult),
            (class::CONTEXT, "startService", IccMethod::StartService),
            (class::SERVICE, "startService", IccMethod::StartService),
            (class::CONTEXT, "bindService", IccMethod::BindService),
            (class::CONTEXT, "sendBroadcast", IccMethod::SendBroadcast),
            (class::RESOLVER, "query", IccMethod::ProviderQuery),
            (class::RESOLVER, "insert", IccMethod::ProviderInsert),
            (class::RESOLVER, "update", IccMethod::ProviderUpdate),
            (class::RESOLVER, "delete", IccMethod::ProviderDelete),
        ] {
            put(ctx, m, K::Icc(icc), None);
        }
        put(class::CONTEXT, "registerReceiver", K::DynamicRegister, None);

        // --- permission check ---
        put(
            class::CONTEXT,
            "checkCallingPermission",
            K::PermissionCheck,
            None,
        );
        put(
            class::ACTIVITY,
            "checkCallingPermission",
            K::PermissionCheck,
            None,
        );
        put(
            class::SERVICE,
            "checkCallingPermission",
            K::PermissionCheck,
            None,
        );

        // --- sources ---
        put(
            class::LOCATION_MANAGER,
            "getLastKnownLocation",
            K::Source(Resource::Location),
            Some(perm::ACCESS_FINE_LOCATION),
        );
        put(
            class::LOCATION_MANAGER,
            "requestLocationUpdates",
            K::Source(Resource::Location),
            Some(perm::ACCESS_FINE_LOCATION),
        );
        put(
            class::TELEPHONY_MANAGER,
            "getDeviceId",
            K::Source(Resource::DeviceId),
            Some(perm::READ_PHONE_STATE),
        );
        put(
            class::TELEPHONY_MANAGER,
            "getLine1Number",
            K::Source(Resource::PhoneState),
            Some(perm::READ_PHONE_STATE),
        );
        put(
            class::RESOLVER,
            "queryContacts",
            K::Source(Resource::Contacts),
            Some(perm::READ_CONTACTS),
        );
        put(
            class::RESOLVER,
            "queryCalendar",
            K::Source(Resource::Calendar),
            Some(perm::READ_CALENDAR),
        );
        put(
            class::RESOLVER,
            "querySmsInbox",
            K::Source(Resource::SmsInbox),
            Some(perm::READ_SMS),
        );
        put(
            class::RESOLVER,
            "queryCallLog",
            K::Source(Resource::CallLog),
            Some(perm::READ_CALL_LOG),
        );
        put(
            class::RESOLVER,
            "queryBrowserHistory",
            K::Source(Resource::BrowserHistory),
            Some(perm::READ_HISTORY_BOOKMARKS),
        );
        put(
            class::FILE_IN,
            "read",
            K::Source(Resource::SdcardRead),
            Some(perm::READ_EXTERNAL_STORAGE),
        );
        put(
            class::HTTP,
            "getInputStream",
            K::Source(Resource::NetworkRead),
            Some(perm::INTERNET),
        );
        put(
            class::CAMERA,
            "takePicture",
            K::Source(Resource::Camera),
            Some(perm::CAMERA),
        );
        put(
            class::AUDIO,
            "read",
            K::Source(Resource::Microphone),
            Some(perm::RECORD_AUDIO),
        );
        put(
            class::ACCOUNTS,
            "getAccounts",
            K::Source(Resource::Accounts),
            Some(perm::GET_ACCOUNTS),
        );

        // --- sinks ---
        put(
            class::SMS_MANAGER,
            "sendTextMessage",
            K::Sink(Resource::Sms),
            Some(perm::SEND_SMS),
        );
        put(
            class::HTTP,
            "getOutputStream",
            K::Sink(Resource::NetworkWrite),
            Some(perm::INTERNET),
        );
        put(
            class::FILE_OUT,
            "write",
            K::Sink(Resource::SdcardWrite),
            Some(perm::WRITE_EXTERNAL_STORAGE),
        );
        for m in ["d", "e", "i", "w", "v"] {
            put(class::LOG, m, K::Sink(Resource::Log), None);
        }
        put(
            class::CONTEXT,
            "placeCall",
            K::Sink(Resource::PhoneCall),
            Some(perm::CALL_PHONE),
        );

        t
    })
}

/// Classifies an API call. Unknown methods are [`ApiKind::Neutral`].
pub fn classify(class: &str, method: &str) -> ApiKind {
    table()
        .get(&(class, method))
        .map_or(ApiKind::Neutral, |&(kind, _)| kind)
}

/// The permission required to invoke an API, per the PScout-style map.
pub fn permission_for(class: &str, method: &str) -> Option<&'static str> {
    table().get(&(class, method)).and_then(|&(_, p)| p)
}

/// Returns every `(class, method)` pair classified as a source.
pub fn all_sources() -> Vec<(&'static str, &'static str, Resource)> {
    table()
        .iter()
        .filter_map(|(&(c, m), &(k, _))| match k {
            ApiKind::Source(r) => Some((c, m, r)),
            _ => None,
        })
        .collect()
}

/// Returns every `(class, method)` pair classified as a sink.
pub fn all_sinks() -> Vec<(&'static str, &'static str, Resource)> {
    table()
        .iter()
        .filter_map(|(&(c, m), &(k, _))| match k {
            ApiKind::Sink(r) => Some((c, m, r)),
            _ => None,
        })
        .collect()
}

/// The superclass descriptor a component of the given kind extends.
pub fn component_super(kind: separ_dex::ComponentKind) -> &'static str {
    match kind {
        separ_dex::ComponentKind::Activity => class::ACTIVITY,
        separ_dex::ComponentKind::Service => class::SERVICE,
        separ_dex::ComponentKind::Receiver => class::RECEIVER,
        separ_dex::ComponentKind::Provider => class::PROVIDER,
    }
}

/// The lifecycle entry-point method names of each component kind.
pub fn entry_points(kind: separ_dex::ComponentKind) -> &'static [&'static str] {
    match kind {
        separ_dex::ComponentKind::Activity => {
            &["onCreate", "onStart", "onResume", "onActivityResult"]
        }
        separ_dex::ComponentKind::Service => &["onStartCommand", "onBind", "onCreate"],
        separ_dex::ComponentKind::Receiver => &["onReceive"],
        separ_dex::ComponentKind::Provider => &["query", "insert", "update", "delete", "onCreate"],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_motivating_example() {
        assert_eq!(
            classify(class::LOCATION_MANAGER, "getLastKnownLocation"),
            ApiKind::Source(Resource::Location)
        );
        assert_eq!(
            classify(class::SMS_MANAGER, "sendTextMessage"),
            ApiKind::Sink(Resource::Sms)
        );
        assert_eq!(
            classify(class::CONTEXT, "startService"),
            ApiKind::Icc(IccMethod::StartService)
        );
        assert_eq!(
            classify(class::INTENT, "getStringExtra"),
            ApiKind::IntentRead
        );
        assert_eq!(
            classify(class::CONTEXT, "checkCallingPermission"),
            ApiKind::PermissionCheck
        );
        assert_eq!(classify("LUnknown;", "whatever"), ApiKind::Neutral);
    }

    #[test]
    fn permission_map_matches_pscout_style_entries() {
        assert_eq!(
            permission_for(class::SMS_MANAGER, "sendTextMessage"),
            Some(perm::SEND_SMS)
        );
        assert_eq!(
            permission_for(class::LOCATION_MANAGER, "getLastKnownLocation"),
            Some(perm::ACCESS_FINE_LOCATION)
        );
        assert_eq!(permission_for(class::LOG, "d"), None);
        assert_eq!(permission_for(class::INTENT, "setAction"), None);
    }

    #[test]
    fn two_way_icc_methods_request_results() {
        assert!(IccMethod::StartActivityForResult.requests_result());
        assert!(IccMethod::BindService.requests_result());
        assert!(!IccMethod::StartService.requests_result());
        assert!(!IccMethod::SendBroadcast.requests_result());
    }

    #[test]
    fn source_sink_tables_are_populated() {
        let sources = all_sources();
        let sinks = all_sinks();
        assert!(sources.len() >= 13, "thirteen+ source APIs");
        assert!(sinks.len() >= 5, "five+ sink APIs");
        assert!(sources.iter().any(|&(_, _, r)| r == Resource::Location));
        assert!(sinks.iter().any(|&(_, _, r)| r == Resource::Sms));
    }

    #[test]
    fn entry_points_per_kind() {
        use separ_dex::ComponentKind;
        assert!(entry_points(ComponentKind::Service).contains(&"onStartCommand"));
        assert!(entry_points(ComponentKind::Receiver).contains(&"onReceive"));
        assert_eq!(component_super(ComponentKind::Activity), class::ACTIVITY);
    }
}
