//! Intent resolution: the action, category and data tests.
//!
//! A faithful (slightly simplified, see below) transcription of Android's
//! implicit-intent resolution, shared between the formal meta-model, the
//! static analyzer, and the runtime router, so all three agree on who
//! receives an intent.
//!
//! Simplification: Android's data test distinguishes scheme/authority/path
//! hierarchies; sdex intents carry at most one data type and one scheme,
//! so the test reduces to symmetric membership (an intent with data only
//! matches filters declaring that data, and a filter declaring data only
//! matches intents carrying it).

use std::collections::{BTreeMap, BTreeSet};

use separ_dex::manifest::IntentFilterDecl;

/// A concrete intent, as carried across the ICC bus or abstracted by AME.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct IntentData {
    /// The action, if any.
    pub action: Option<String>,
    /// Categories.
    pub categories: BTreeSet<String>,
    /// MIME data type.
    pub data_type: Option<String>,
    /// Data scheme.
    pub data_scheme: Option<String>,
    /// Explicit target component (class descriptor), if any.
    pub explicit_target: Option<String>,
    /// Extras: key to a string payload (the runtime marshals all extra
    /// values to strings when crossing the bus).
    pub extras: BTreeMap<String, String>,
}

impl IntentData {
    /// Creates an empty (implicit, untargeted) intent.
    pub fn new() -> IntentData {
        IntentData::default()
    }

    /// Creates an implicit intent for an action.
    pub fn for_action(action: impl Into<String>) -> IntentData {
        IntentData {
            action: Some(action.into()),
            ..IntentData::default()
        }
    }

    /// Creates an explicit intent for a component class.
    pub fn explicit(target: impl Into<String>) -> IntentData {
        IntentData {
            explicit_target: Some(target.into()),
            ..IntentData::default()
        }
    }

    /// Returns `true` if this intent names its receiver explicitly.
    pub fn is_explicit(&self) -> bool {
        self.explicit_target.is_some()
    }

    /// Adds an extra, builder style.
    pub fn with_extra(mut self, key: impl Into<String>, value: impl Into<String>) -> IntentData {
        self.extras.insert(key.into(), value.into());
        self
    }

    /// Adds a category, builder style.
    pub fn with_category(mut self, category: impl Into<String>) -> IntentData {
        self.categories.insert(category.into());
        self
    }
}

/// The action test: the filter must declare at least one action, and the
/// intent's action (if present) must be among them.
pub fn action_test(intent: &IntentData, filter: &IntentFilterDecl) -> bool {
    if filter.actions.is_empty() {
        return false;
    }
    match &intent.action {
        None => true,
        Some(a) => filter.actions.iter().any(|fa| fa == a),
    }
}

/// The category test: every category in the intent must appear in the
/// filter.
pub fn category_test(intent: &IntentData, filter: &IntentFilterDecl) -> bool {
    intent
        .categories
        .iter()
        .all(|c| filter.categories.iter().any(|fc| fc == c))
}

/// The data test (see module docs for the simplification).
pub fn data_test(intent: &IntentData, filter: &IntentFilterDecl) -> bool {
    let type_ok = match &intent.data_type {
        None => filter.data_types.is_empty(),
        Some(t) => filter.data_types.iter().any(|ft| ft == t),
    };
    let scheme_ok = match &intent.data_scheme {
        None => filter.data_schemes.is_empty(),
        Some(s) => filter.data_schemes.iter().any(|fs| fs == s),
    };
    type_ok && scheme_ok
}

/// Full filter match: all three tests pass.
pub fn filter_matches(intent: &IntentData, filter: &IntentFilterDecl) -> bool {
    action_test(intent, filter) && category_test(intent, filter) && data_test(intent, filter)
}

/// Returns `true` if any of the filters matches.
pub fn any_filter_matches(intent: &IntentData, filters: &[IntentFilterDecl]) -> bool {
    filters.iter().any(|f| filter_matches(intent, f))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filter(actions: &[&str]) -> IntentFilterDecl {
        IntentFilterDecl::for_actions(actions.iter().copied())
    }

    #[test]
    fn action_test_requires_declared_actions() {
        let empty = IntentFilterDecl::default();
        let i = IntentData::for_action("showLoc");
        assert!(!action_test(&i, &empty), "empty filter matches nothing");
        assert!(action_test(&i, &filter(&["showLoc"])));
        assert!(!action_test(&i, &filter(&["other"])));
        // Actionless intent passes any filter with actions.
        let actionless = IntentData::new();
        assert!(action_test(&actionless, &filter(&["x"])));
    }

    #[test]
    fn category_test_is_subset() {
        let mut f = filter(&["a"]);
        f.categories = vec!["android.intent.category.DEFAULT".into()];
        let plain = IntentData::for_action("a");
        assert!(category_test(&plain, &f), "no categories always passes");
        let with_cat = IntentData::for_action("a").with_category("android.intent.category.DEFAULT");
        assert!(category_test(&with_cat, &f));
        let extra_cat = IntentData::for_action("a").with_category("other");
        assert!(!category_test(&extra_cat, &f));
    }

    #[test]
    fn data_test_is_symmetric_membership() {
        let mut f = filter(&["a"]);
        let plain = IntentData::for_action("a");
        assert!(data_test(&plain, &f));
        f.data_types = vec!["text/plain".into()];
        assert!(
            !data_test(&plain, &f),
            "filter demands data, intent has none"
        );
        let mut typed = IntentData::for_action("a");
        typed.data_type = Some("text/plain".into());
        assert!(data_test(&typed, &f));
        typed.data_type = Some("image/png".into());
        assert!(!data_test(&typed, &f));
        // Scheme dimension.
        let mut schemed = IntentData::for_action("a");
        schemed.data_scheme = Some("https".into());
        let mut f2 = filter(&["a"]);
        assert!(
            !data_test(&schemed, &f2),
            "intent has scheme, filter doesn't"
        );
        f2.data_schemes = vec!["https".into()];
        assert!(data_test(&schemed, &f2));
    }

    #[test]
    fn full_match_composes_all_tests() {
        let mut f = filter(&["com.app.GO"]);
        f.categories = vec!["android.intent.category.DEFAULT".into()];
        let good =
            IntentData::for_action("com.app.GO").with_category("android.intent.category.DEFAULT");
        assert!(filter_matches(&good, &f));
        let bad_action = IntentData::for_action("com.app.STOP");
        assert!(!filter_matches(&bad_action, &f));
        assert!(any_filter_matches(&good, &[filter(&["x"]), f.clone()]));
        assert!(!any_filter_matches(&bad_action, &[f]));
    }

    #[test]
    fn builders_compose() {
        let i = IntentData::explicit("Lcom/x/Svc;").with_extra("k", "v");
        assert!(i.is_explicit());
        assert_eq!(i.extras.get("k").map(String::as_str), Some("v"));
    }
}
