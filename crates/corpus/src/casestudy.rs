//! The four RQ2 case-study apps (Section VII-B), modelled after the
//! paper's descriptions of real market apps.

use separ_android::api::class;
use separ_android::types::perm;
use separ_dex::build::ApkBuilder;
use separ_dex::manifest::{ComponentDecl, ComponentKind, IntentFilterDecl};
use separ_dex::program::Apk;

/// **Barcoder** (Activity/Service launch): `InquiryActivity` pays bills
/// over SMS and exposes an unprotected intent filter, so a forged intent
/// triggers an unauthorized payment.
pub fn barcoder() -> Apk {
    let mut apk = ApkBuilder::new("ir.barcoder");
    apk.uses_permission(perm::SEND_SMS);
    apk.uses_permission(perm::CAMERA);
    let mut decl = ComponentDecl::new("Lir/barcoder/InquiryActivity;", ComponentKind::Activity);
    decl.intent_filters
        .push(IntentFilterDecl::for_actions(["ir.barcoder.PAY_BILL"]));
    apk.add_component(decl);
    let mut cb = apk.class_extends("Lir/barcoder/InquiryActivity;", class::ACTIVITY);
    let mut m = cb.method("onCreate", 1, false, false);
    let i = m.reg();
    let bill = m.reg();
    let k = m.reg();
    let mgr = m.reg();
    let bank = m.reg();
    m.invoke_virtual(class::ACTIVITY, "getIntent", &[m.this()], true);
    m.move_result(i);
    m.const_string(k, "BILL_ID");
    m.invoke_virtual(class::INTENT, "getStringExtra", &[i, k], true);
    m.move_result(bill);
    // Pays through the banking short-code, no caller check at all.
    m.invoke_static(class::SMS_MANAGER, "getDefault", &[], true);
    m.move_result(mgr);
    m.const_string(bank, "+9850001");
    m.invoke_virtual(
        class::SMS_MANAGER,
        "sendTextMessage",
        &[mgr, bank, bill],
        false,
    );
    m.ret_void();
    m.finish();
    cb.finish();
    apk.finish()
}

/// **Hesabdar** (Intent hijack): an accounting app that ships account
/// records between its components via an implicit intent.
pub fn hesabdar() -> Apk {
    let mut apk = ApkBuilder::new("ir.hesabdar");
    apk.uses_permission(perm::GET_ACCOUNTS);
    apk.add_component(ComponentDecl::new(
        "Lir/hesabdar/TransactionManager;",
        ComponentKind::Service,
    ));
    let mut report = ComponentDecl::new("Lir/hesabdar/ReportViewer;", ComponentKind::Activity);
    report
        .intent_filters
        .push(IntentFilterDecl::for_actions(["ir.hesabdar.SHOW_REPORT"]));
    apk.add_component(report);
    {
        let mut cb = apk.class_extends("Lir/hesabdar/TransactionManager;", class::SERVICE);
        let mut m = cb.method("onStartCommand", 3, false, false);
        let acct = m.reg();
        let i = m.reg();
        let s = m.reg();
        m.invoke_virtual(class::ACCOUNTS, "getAccounts", &[acct], true);
        m.move_result(acct);
        m.new_instance(i, class::INTENT);
        m.const_string(s, "ir.hesabdar.SHOW_REPORT");
        m.invoke_virtual(class::INTENT, "setAction", &[i, s], false);
        m.const_string(s, "accountInfo");
        m.invoke_virtual(class::INTENT, "putExtra", &[i, s, acct], false);
        m.invoke_virtual(class::CONTEXT, "startActivity", &[m.this(), i], false);
        m.ret_void();
        m.finish();
        cb.finish();
    }
    {
        let mut cb = apk.class_extends("Lir/hesabdar/ReportViewer;", class::ACTIVITY);
        let mut m = cb.method("onCreate", 1, false, false);
        m.ret_void();
        m.finish();
        cb.finish();
    }
    apk.finish()
}

/// **OwnCloud** (information leakage): account credentials travel through
/// a chain of intents and end up logged to unprotected external storage.
pub fn owncloud() -> Apk {
    let mut apk = ApkBuilder::new("com.owncloud.android");
    apk.uses_permission(perm::GET_ACCOUNTS);
    apk.uses_permission(perm::WRITE_EXTERNAL_STORAGE);
    apk.add_component(ComponentDecl::new(
        "Lcom/owncloud/AuthenticatorActivity;",
        ComponentKind::Activity,
    ));
    let mut sync = ComponentDecl::new("Lcom/owncloud/FileSyncService;", ComponentKind::Service);
    sync.intent_filters
        .push(IntentFilterDecl::for_actions(["com.owncloud.SYNC"]));
    apk.add_component(sync);
    {
        let mut cb = apk.class_extends("Lcom/owncloud/AuthenticatorActivity;", class::ACTIVITY);
        let mut m = cb.method("onCreate", 1, false, false);
        let acct = m.reg();
        let i = m.reg();
        let s = m.reg();
        m.invoke_virtual(class::ACCOUNTS, "getAccounts", &[acct], true);
        m.move_result(acct);
        m.new_instance(i, class::INTENT);
        m.const_string(s, "com.owncloud.SYNC");
        m.invoke_virtual(class::INTENT, "setAction", &[i, s], false);
        m.const_string(s, "credentials");
        m.invoke_virtual(class::INTENT, "putExtra", &[i, s, acct], false);
        m.invoke_virtual(class::CONTEXT, "startService", &[m.this(), i], false);
        m.ret_void();
        m.finish();
        cb.finish();
    }
    {
        let mut cb = apk.class_extends("Lcom/owncloud/FileSyncService;", class::SERVICE);
        let mut m = cb.method("onStartCommand", 3, false, false);
        let v = m.reg();
        let k = m.reg();
        m.const_string(k, "credentials");
        m.invoke_virtual(class::INTENT, "getStringExtra", &[m.param(1), k], true);
        m.move_result(v);
        // Logs the credentials to the unprotected memory card.
        m.invoke_virtual(class::FILE_OUT, "write", &[v], false);
        m.ret_void();
        m.finish();
        cb.finish();
    }
    apk.finish()
}

/// **Ermete SMS** (privilege escalation): `ComposeActivity` texts the
/// payload of any incoming intent without checking the sender's
/// permission, re-delegating `SEND_SMS` to every app on the device.
pub fn ermete_sms() -> Apk {
    let mut apk = ApkBuilder::new("org.ermete.sms");
    apk.uses_permission(perm::SEND_SMS);
    apk.uses_permission(perm::WRITE_SMS);
    let mut decl = ComponentDecl::new("Lorg/ermete/ComposeActivity;", ComponentKind::Activity);
    decl.exported = Some(true);
    apk.add_component(decl);
    let mut cb = apk.class_extends("Lorg/ermete/ComposeActivity;", class::ACTIVITY);
    let mut m = cb.method("onCreate", 1, false, false);
    let i = m.reg();
    let num = m.reg();
    let body = m.reg();
    let k = m.reg();
    let mgr = m.reg();
    m.invoke_virtual(class::ACTIVITY, "getIntent", &[m.this()], true);
    m.move_result(i);
    m.const_string(k, "address");
    m.invoke_virtual(class::INTENT, "getStringExtra", &[i, k], true);
    m.move_result(num);
    m.const_string(k, "sms_body");
    m.invoke_virtual(class::INTENT, "getStringExtra", &[i, k], true);
    m.move_result(body);
    m.invoke_static(class::SMS_MANAGER, "getDefault", &[], true);
    m.move_result(mgr);
    m.invoke_virtual(
        class::SMS_MANAGER,
        "sendTextMessage",
        &[mgr, num, body],
        false,
    );
    m.ret_void();
    m.finish();
    cb.finish();
    apk.finish()
}

/// All four case-study apps.
pub fn all() -> Vec<Apk> {
    vec![barcoder(), hesabdar(), owncloud(), ermete_sms()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use separ_core::{Separ, VulnKind};

    #[test]
    fn separ_reproduces_all_four_findings() {
        let report = Separ::new()
            .analyze_apks(&all())
            .expect("analysis succeeds");
        // Barcoder: Activity launch with an unprotected filter.
        assert!(
            report
                .vulnerable_apps(VulnKind::ComponentLaunch)
                .contains("ir.barcoder"),
            "launch: {:?}",
            report.vulnerable_apps(VulnKind::ComponentLaunch)
        );
        // Hesabdar: implicit intent carrying account data can be hijacked.
        assert!(report
            .vulnerable_apps(VulnKind::IntentHijack)
            .contains("ir.hesabdar"));
        // OwnCloud: credentials leak to the memory card.
        assert!(report
            .vulnerable_apps(VulnKind::InformationLeakage)
            .contains("com.owncloud.android"));
        // Ermete SMS: SEND_SMS re-delegation.
        assert!(report
            .exploits_of(VulnKind::PrivilegeEscalation)
            .any(|e| matches!(
                e,
                separ_core::Exploit::PrivilegeEscalation { target_app, permission, .. }
                    if target_app == "org.ermete.sms" && permission == perm::SEND_SMS
            )));
        // And policies were generated for each of them.
        assert!(report.policies.len() >= 4);
    }
}
