//! Seeded generation of synthetic app markets (the RQ2/RQ3 corpus).
//!
//! The paper evaluates 4,000 real apps drawn from four repositories; the
//! substitute is a deterministic generator with per-repository profiles:
//! app-size distributions (log-normal, like real markets), component-count
//! distributions, and vulnerability-injection rates tuned so the RQ2
//! census lands in the paper's band. Malgenome-profile apps additionally
//! carry malware-style *capabilities* (greedy filters on common actions
//! feeding exfiltration paths), which makes cross-app leaks emerge at the
//! bundle level rather than being scripted.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use separ_android::api::class;
use separ_android::types::perm;
use separ_dex::build::{ApkBuilder, MethodBuilder};
use separ_dex::manifest::{ComponentDecl, ComponentKind, IntentFilterDecl};
use separ_dex::program::Apk;

/// The four app repositories of Section VII-B.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Repository {
    /// Google Play: 600 random + 1,000 popular apps in the paper.
    GooglePlay,
    /// F-Droid: 1,100 open-source apps.
    FDroid,
    /// Malgenome: ~1,200 malware samples.
    Malgenome,
    /// Bazaar: 100 third-party-market apps.
    Bazaar,
}

impl Repository {
    /// All repositories.
    pub const ALL: [Repository; 4] = [
        Repository::GooglePlay,
        Repository::FDroid,
        Repository::Malgenome,
        Repository::Bazaar,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Repository::GooglePlay => "GooglePlay",
            Repository::FDroid => "F-Droid",
            Repository::Malgenome => "Malgenome",
            Repository::Bazaar => "Bazaar",
        }
    }

    /// Log-normal size parameters `(mu, sigma)` for the filler-code size.
    fn size_params(self) -> (f64, f64) {
        match self {
            Repository::GooglePlay => (6.0, 0.8),
            Repository::FDroid => (5.4, 0.7),
            Repository::Malgenome => (4.6, 0.6),
            Repository::Bazaar => (5.7, 0.9),
        }
    }

    /// Per-app probability of each injected weakness:
    /// `(hijack, launch, leak, escalation)`.
    fn vuln_rates(self) -> (f64, f64, f64, f64) {
        match self {
            Repository::GooglePlay => (0.020, 0.022, 0.024, 0.008),
            Repository::FDroid => (0.018, 0.018, 0.022, 0.008),
            Repository::Malgenome => (0.028, 0.028, 0.030, 0.012),
            Repository::Bazaar => (0.028, 0.030, 0.030, 0.010),
        }
    }

    /// Probability that a Malgenome-profile app carries a greedy
    /// hijacker capability.
    fn capability_rate(self) -> f64 {
        match self {
            Repository::Malgenome => 0.15,
            _ => 0.01,
        }
    }
}

/// How many apps to generate per repository.
#[derive(Copy, Clone, Debug)]
pub struct MarketSpec {
    /// Google Play count (paper: 1,600).
    pub google_play: usize,
    /// F-Droid count (paper: 1,100).
    pub fdroid: usize,
    /// Malgenome count (paper: ~1,200).
    pub malgenome: usize,
    /// Bazaar count (paper: 100).
    pub bazaar: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MarketSpec {
    fn default() -> MarketSpec {
        MarketSpec {
            google_play: 1600,
            fdroid: 1100,
            malgenome: 1200,
            bazaar: 100,
            seed: 0x5E9A12,
        }
    }
}

impl MarketSpec {
    /// A proportionally scaled-down market of exactly `total` apps (for
    /// quick runs and tests).
    pub fn scaled(total: usize, seed: u64) -> MarketSpec {
        let f = total as f64 / 4000.0;
        let fdroid = (1100.0 * f).round() as usize;
        let malgenome = (1200.0 * f).round() as usize;
        let bazaar = ((100.0 * f).round() as usize).max(1);
        let google_play = total.saturating_sub(fdroid + malgenome + bazaar);
        MarketSpec {
            google_play,
            fdroid,
            malgenome,
            bazaar,
            seed,
        }
    }

    /// Total apps the spec generates.
    pub fn total(&self) -> usize {
        self.google_play + self.fdroid + self.malgenome + self.bazaar
    }
}

/// One generated market app.
#[derive(Debug)]
pub struct MarketApp {
    /// Which repository profile produced it.
    pub repository: Repository,
    /// The package.
    pub apk: Apk,
}

/// The shared pool of implicit actions market apps communicate over.
fn action_pool(i: usize) -> String {
    format!("market.action.EVENT_{}", i % 24)
}

/// Standard normal via Box–Muller (no external stats crates).
fn standard_normal(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Generates the full market.
pub fn generate(spec: &MarketSpec) -> Vec<MarketApp> {
    let mut out = Vec::with_capacity(spec.total());
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    for (repo, count) in [
        (Repository::GooglePlay, spec.google_play),
        (Repository::FDroid, spec.fdroid),
        (Repository::Malgenome, spec.malgenome),
        (Repository::Bazaar, spec.bazaar),
    ] {
        for i in 0..count {
            let app_seed = rng.gen::<u64>();
            out.push(MarketApp {
                repository: repo,
                apk: generate_app(repo, i, app_seed),
            });
        }
    }
    out
}

/// Generates one app under a repository profile.
pub fn generate_app(repo: Repository, index: usize, seed: u64) -> Apk {
    let mut rng = SmallRng::seed_from_u64(seed);
    let package = format!(
        "{}.app{index:04}.v{}",
        repo.name().to_lowercase().replace('-', ""),
        rng.gen_range(1..9)
    );
    let mut apk = ApkBuilder::new(&package);
    let (mu, sigma) = repo.size_params();
    let target_size = (mu + sigma * standard_normal(&mut rng)).exp().max(30.0) as usize;
    let n_components = rng.gen_range(3..=9);
    let tag = format!(
        "L{}/C{index:04}",
        repo.name().to_lowercase().replace('-', "")
    );

    // Helper utility class exercised by filler code (real call depth).
    let util_class = format!("{tag}Util;");
    {
        let mut cb = apk.class(&util_class);
        let mut m = cb.method("mix", 2, true, true);
        let r = m.reg();
        m.binop(separ_dex::instr::BinOp::Add, r, m.param(0), m.param(1));
        m.ret(r);
        m.finish();
        let mut m = cb.method("fold", 1, true, true);
        let r = m.reg();
        let two = m.reg();
        m.const_int(two, 2);
        m.binop(separ_dex::instr::BinOp::Mul, r, m.param(0), two);
        m.ret(r);
        m.finish();
        cb.finish();
    }

    // Benign components with filler code sized to the target.
    let per_component = (target_size / n_components).max(10);
    for c in 0..n_components {
        let kind = match rng.gen_range(0..10) {
            0..=4 => ComponentKind::Activity,
            5..=7 => ComponentKind::Service,
            8 => ComponentKind::Receiver,
            _ => ComponentKind::Provider,
        };
        let class_name = format!("{tag}Comp{c};");
        let mut decl = ComponentDecl::new(&class_name, kind);
        if kind != ComponentKind::Provider && rng.gen_bool(0.4) {
            decl.intent_filters
                .push(IntentFilterDecl::for_actions([action_pool(
                    rng.gen_range(0..1000),
                )]));
        }
        apk.add_component(decl);
        let superclass = separ_android::api::component_super(kind);
        let mut cb = apk.class_extends(&class_name, superclass);
        let entry = separ_android::api::entry_points(kind)[0];
        let params = if kind == ComponentKind::Activity {
            1
        } else {
            2
        };
        let mut m = cb.method(entry, params, false, false);
        emit_filler(&mut m, &util_class, per_component, &mut rng);
        // Benign ICC chatter: most real components talk to other
        // components; payloads are non-sensitive constants.
        if kind != ComponentKind::Provider && rng.gen_bool(0.6) {
            emit_benign_send(&mut m, &mut rng);
        }
        m.ret_void();
        m.finish();
        cb.finish();
    }

    // Weakness injection: at most one per app.
    let (h, l, k, e) = repo.vuln_rates();
    let roll: f64 = rng.gen();
    if roll < h {
        inject_hijack_victim(&mut apk, &tag, &mut rng);
    } else if roll < h + l {
        inject_launch_victim(&mut apk, &tag);
    } else if roll < h + l + k {
        inject_leak_pair(&mut apk, &tag, index);
    } else if roll < h + l + k + e {
        inject_escalation_victim(&mut apk, &tag);
    }
    if rng.gen_bool(repo.capability_rate()) {
        inject_greedy_capability(&mut apk, &tag, &mut rng);
    }
    apk.finish()
}

fn emit_filler(m: &mut MethodBuilder<'_, '_>, util_class: &str, budget: usize, rng: &mut SmallRng) {
    let a = m.reg();
    let b = m.reg();
    let s = m.reg();
    m.const_int(a, rng.gen_range(0..100));
    m.const_int(b, rng.gen_range(0..100));
    let mut emitted = 3;
    while emitted < budget {
        match rng.gen_range(0..5) {
            0 => {
                m.binop(separ_dex::instr::BinOp::Add, a, a, b);
            }
            1 => {
                m.const_string(s, "cfg");
            }
            2 => {
                m.invoke_static(util_class, "mix", &[a, b], true);
                m.move_result(a);
            }
            3 => {
                m.invoke_static(util_class, "fold", &[b], true);
                m.move_result(b);
            }
            _ => {
                m.mov(s, a);
            }
        }
        emitted += 1;
    }
}

/// Emits a benign implicit send (constant payload, pool action).
fn emit_benign_send(m: &mut MethodBuilder<'_, '_>, rng: &mut SmallRng) {
    let i = m.reg();
    let s = m.reg();
    let v = m.reg();
    m.new_instance(i, class::INTENT);
    m.const_string(s, &action_pool(rng.gen_range(0..1000)));
    m.invoke_virtual(class::INTENT, "setAction", &[i, s], false);
    m.const_string(s, "note");
    m.const_string(v, "status-update");
    m.invoke_virtual(class::INTENT, "putExtra", &[i, s, v], false);
    let api = match rng.gen_range(0..3) {
        0 => "startService",
        1 => "sendBroadcast",
        _ => "startActivity",
    };
    m.invoke_virtual(class::CONTEXT, api, &[m.this(), i], false);
}

/// A component broadcasting sensitive data over a pool action (hijackable).
fn inject_hijack_victim(apk: &mut ApkBuilder, tag: &str, rng: &mut SmallRng) {
    let class_name = format!("{tag}Beacon;");
    apk.add_component(ComponentDecl::new(&class_name, ComponentKind::Service));
    apk.uses_permission(perm::ACCESS_FINE_LOCATION);
    let mut cb = apk.class_extends(&class_name, class::SERVICE);
    let mut m = cb.method("onStartCommand", 2, false, false);
    let loc = m.reg();
    let i = m.reg();
    let s = m.reg();
    m.invoke_virtual(
        class::LOCATION_MANAGER,
        "getLastKnownLocation",
        &[loc],
        true,
    );
    m.move_result(loc);
    m.new_instance(i, class::INTENT);
    m.const_string(s, &action_pool(rng.gen_range(0..1000)));
    m.invoke_virtual(class::INTENT, "setAction", &[i, s], false);
    m.const_string(s, "position");
    m.invoke_virtual(class::INTENT, "putExtra", &[i, s, loc], false);
    m.invoke_virtual(class::CONTEXT, "sendBroadcast", &[m.this(), i], false);
    m.ret_void();
    m.finish();
    cb.finish();
}

/// An exported service whose exported surface flows into a capability.
fn inject_launch_victim(apk: &mut ApkBuilder, tag: &str) {
    let class_name = format!("{tag}Door;");
    let mut decl = ComponentDecl::new(&class_name, ComponentKind::Service);
    decl.exported = Some(true);
    apk.add_component(decl);
    let mut cb = apk.class_extends(&class_name, class::SERVICE);
    let mut m = cb.method("onStartCommand", 2, false, false);
    let v = m.reg();
    let k = m.reg();
    m.const_string(k, "command");
    m.invoke_virtual(class::INTENT, "getStringExtra", &[m.param(1), k], true);
    m.move_result(v);
    m.invoke_virtual(class::LOG, "d", &[v], false);
    m.ret_void();
    m.finish();
    cb.finish();
}

/// An intra-app explicit leak pair (source -> intent -> sink).
fn inject_leak_pair(apk: &mut ApkBuilder, tag: &str, index: usize) {
    let sender = format!("{tag}Collector;");
    let receiver = format!("{tag}Uploader;");
    let _ = index;
    apk.uses_permission(perm::READ_PHONE_STATE);
    apk.uses_permission(perm::INTERNET);
    apk.add_component(ComponentDecl::new(&sender, ComponentKind::Activity));
    apk.add_component(ComponentDecl::new(&receiver, ComponentKind::Service));
    {
        let mut cb = apk.class_extends(&sender, class::ACTIVITY);
        let mut m = cb.method("onCreate", 1, false, false);
        let v = m.reg();
        let i = m.reg();
        let s = m.reg();
        m.invoke_virtual(class::TELEPHONY_MANAGER, "getDeviceId", &[v], true);
        m.move_result(v);
        m.new_instance(i, class::INTENT);
        m.const_string(s, &receiver);
        m.invoke_virtual(class::INTENT, "setClassName", &[i, s], false);
        m.const_string(s, "device");
        m.invoke_virtual(class::INTENT, "putExtra", &[i, s, v], false);
        m.invoke_virtual(class::CONTEXT, "startService", &[m.this(), i], false);
        m.ret_void();
        m.finish();
        cb.finish();
    }
    {
        let mut cb = apk.class_extends(&receiver, class::SERVICE);
        let mut m = cb.method("onStartCommand", 2, false, false);
        let v = m.reg();
        let k = m.reg();
        m.const_string(k, "device");
        m.invoke_virtual(class::INTENT, "getStringExtra", &[m.param(1), k], true);
        m.move_result(v);
        m.invoke_virtual(class::HTTP, "getOutputStream", &[v], true);
        let r = m.reg();
        m.move_result(r);
        m.ret_void();
        m.finish();
        cb.finish();
    }
}

/// An exported SMS proxy that never checks its caller.
fn inject_escalation_victim(apk: &mut ApkBuilder, tag: &str) {
    let class_name = format!("{tag}SmsProxy;");
    let mut decl = ComponentDecl::new(&class_name, ComponentKind::Service);
    decl.exported = Some(true);
    apk.add_component(decl);
    apk.uses_permission(perm::SEND_SMS);
    let mut cb = apk.class_extends(&class_name, class::SERVICE);
    let mut m = cb.method("onStartCommand", 2, false, false);
    let num = m.reg();
    let body = m.reg();
    let k = m.reg();
    let mgr = m.reg();
    m.const_string(k, "to");
    m.invoke_virtual(class::INTENT, "getStringExtra", &[m.param(1), k], true);
    m.move_result(num);
    m.const_string(k, "body");
    m.invoke_virtual(class::INTENT, "getStringExtra", &[m.param(1), k], true);
    m.move_result(body);
    m.invoke_static(class::SMS_MANAGER, "getDefault", &[], true);
    m.move_result(mgr);
    m.invoke_virtual(
        class::SMS_MANAGER,
        "sendTextMessage",
        &[mgr, num, body],
        false,
    );
    m.ret_void();
    m.finish();
    cb.finish();
}

/// A malware-style greedy receiver: listens on pool actions and
/// exfiltrates whatever payload arrives.
fn inject_greedy_capability(apk: &mut ApkBuilder, tag: &str, rng: &mut SmallRng) {
    let class_name = format!("{tag}Listener;");
    let mut decl = ComponentDecl::new(&class_name, ComponentKind::Receiver);
    let mut filter = IntentFilterDecl::default();
    for _ in 0..rng.gen_range(2..6) {
        filter.actions.push(action_pool(rng.gen_range(0..1000)));
    }
    decl.intent_filters.push(filter);
    apk.add_component(decl);
    apk.uses_permission(perm::INTERNET);
    let mut cb = apk.class_extends(&class_name, class::RECEIVER);
    let mut m = cb.method("onReceive", 2, false, false);
    let v = m.reg();
    let k = m.reg();
    m.const_string(k, "position");
    m.invoke_virtual(class::INTENT, "getStringExtra", &[m.param(1), k], true);
    m.move_result(v);
    m.invoke_virtual(class::HTTP, "getOutputStream", &[v], true);
    let r = m.reg();
    m.move_result(r);
    m.ret_void();
    m.finish();
    cb.finish();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = MarketSpec::scaled(40, 7);
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.apk, y.apk);
        }
    }

    #[test]
    fn scaled_spec_partitions_proportionally() {
        let spec = MarketSpec::scaled(400, 1);
        assert_eq!(spec.total(), 400);
        assert_eq!(spec.google_play, 160);
        assert_eq!(spec.fdroid, 110);
        assert_eq!(spec.malgenome, 120);
        assert_eq!(spec.bazaar, 10);
    }

    #[test]
    fn profiles_shape_app_sizes() {
        let spec = MarketSpec::scaled(200, 3);
        let market = generate(&spec);
        let avg = |repo: Repository| {
            let sizes: Vec<usize> = market
                .iter()
                .filter(|a| a.repository == repo)
                .map(|a| a.apk.size_metric())
                .collect();
            sizes.iter().sum::<usize>() as f64 / sizes.len().max(1) as f64
        };
        assert!(
            avg(Repository::GooglePlay) > avg(Repository::Malgenome),
            "Play apps are larger than malware samples on average"
        );
    }

    #[test]
    fn generated_apps_survive_codec_and_extraction() {
        let spec = MarketSpec::scaled(20, 11);
        for app in generate(&spec) {
            let bytes = separ_dex::codec::encode(&app.apk);
            let decoded = separ_dex::codec::decode(&bytes).expect("decodes");
            let model = separ_analysis::extractor::extract_apk(&decoded);
            assert!(!model.components.is_empty());
        }
    }

    #[test]
    fn scaled_spec_matches_paper_scale() {
        // The paper's market experiment analyzes ~4,000 apps drawn from
        // four repositories; scaling preserves the 1600/1100/1200/100
        // split exactly at that size and proportionally beyond it.
        let spec = MarketSpec::scaled(4000, 1);
        assert_eq!(spec.total(), 4000);
        assert_eq!(spec.google_play, 1600);
        assert_eq!(spec.fdroid, 1100);
        assert_eq!(spec.malgenome, 1200);
        assert_eq!(spec.bazaar, 100);

        let big = MarketSpec::scaled(10_000, 1);
        assert_eq!(big.total(), 10_000);
        assert_eq!(big.google_play, 4000);
        assert_eq!(big.fdroid, 2750);
        assert_eq!(big.malgenome, 3000);
        assert_eq!(big.bazaar, 250);
    }

    #[test]
    fn market_scale_generation_is_seed_deterministic() {
        // Full-Apk equality at 4,000 apps is slow; per-app digests of the
        // wire encoding give the same guarantee.
        let digest = |market: &[MarketApp]| -> Vec<[u8; 32]> {
            market
                .iter()
                .map(|a| separ_analysis::cache::sha256(&separ_dex::codec::encode(&a.apk)))
                .collect()
        };
        let spec = MarketSpec::scaled(4000, 17);
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.len(), 4000);
        assert_eq!(digest(&a), digest(&b));
        let other = generate(&MarketSpec::scaled(4000, 18));
        assert_ne!(
            digest(&a),
            digest(&other),
            "different seeds must produce different markets"
        );
    }

    #[test]
    fn market_scale_injects_every_signature_family() {
        let market = generate(&MarketSpec::scaled(4000, 5));
        let with_marker = |marker: &str| {
            market
                .iter()
                .filter(|a| {
                    a.apk
                        .manifest
                        .components
                        .iter()
                        .any(|c| c.class.contains(marker))
                })
                .count()
        };
        for marker in [
            "Beacon",
            "Door",
            "Collector",
            "Uploader",
            "SmsProxy",
            "Listener",
        ] {
            assert!(
                with_marker(marker) >= 1,
                "no {marker} apps in a 4,000-app market"
            );
        }
        let vulnerable = market
            .iter()
            .filter(|a| {
                a.apk.manifest.components.iter().any(|c| {
                    ["Beacon", "Door", "Collector", "SmsProxy"]
                        .iter()
                        .any(|m| c.class.contains(m))
                })
            })
            .count();
        assert!(
            (200..=700).contains(&vulnerable),
            "injection rate drifted out of the expected band: {vulnerable}/4000"
        );
    }

    #[test]
    fn market_scale_bundle_finds_every_signature_family_end_to_end() {
        use separ_core::{Separ, VulnKind};
        let market = generate(&MarketSpec::scaled(300, 2));
        let apks: Vec<Apk> = market.into_iter().map(|a| a.apk).collect();
        let report = Separ::new()
            .analyze_apks(&apks)
            .expect("market bundle analyzes");
        // Generation and synthesis are both deterministic, so the exploit
        // census is pinned exactly; drift here means extraction or
        // synthesis semantics changed.
        assert_eq!(report.exploits_of(VulnKind::IntentHijack).count(), 5);
        assert_eq!(report.exploits_of(VulnKind::ComponentLaunch).count(), 15);
        assert_eq!(report.exploits_of(VulnKind::InformationLeakage).count(), 22);
        assert_eq!(report.exploits_of(VulnKind::PrivilegeEscalation).count(), 4);
        assert_eq!(report.exploits.len(), 46);
        assert_eq!(report.policies.len(), 46);
    }

    #[test]
    fn injection_rates_produce_vulnerable_apps_at_scale() {
        // At a few hundred apps the expected counts are comfortably > 0.
        let spec = MarketSpec::scaled(400, 5);
        let market = generate(&spec);
        let mut any_vulnerable = 0;
        for app in &market {
            let names: Vec<&str> = app
                .apk
                .manifest
                .components
                .iter()
                .map(|c| c.class.as_str())
                .collect();
            if names.iter().any(|n| {
                n.contains("Beacon")
                    || n.contains("Door")
                    || n.contains("Collector")
                    || n.contains("SmsProxy")
            }) {
                any_vulnerable += 1;
            }
        }
        assert!(
            any_vulnerable >= 10,
            "expected ~8-12% of 400 apps, got {any_vulnerable}"
        );
    }
}
