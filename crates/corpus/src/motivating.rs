//! The paper's motivating example (Section II) as runnable apps.
//!
//! `navigator_app` is Listing 1 (LocationFinder sends GPS data to
//! RouteFinder via an implicit intent), `messenger_app` is Listing 2
//! (MessageSender texts whatever an intent tells it to, with the
//! permission check present but never called), and `malicious_app` is the
//! Figure 1 adversary whose signature SEPAR synthesizes: it hijacks the
//! location intent and forges a payment-style intent to the messenger.

use separ_android::api::class;
use separ_android::types::perm;
use separ_dex::build::ApkBuilder;
use separ_dex::manifest::{ComponentDecl, ComponentKind, IntentFilterDecl};
use separ_dex::program::Apk;

/// The action LocationFinder uses (Listing 1, line 7).
pub const SHOW_LOC: &str = "showLoc";
/// The extra key carrying the location (Listing 1, line 8).
pub const LOCATION_EXTRA: &str = "locationInfo";
/// The messenger's phone-number extra (Listing 2, line 3).
pub const PHONE_EXTRA: &str = "PHONE_NUM";
/// The messenger's message extra (Listing 2, line 4).
pub const TEXT_EXTRA: &str = "TEXT_MSG";
/// The messenger component class.
pub const MESSAGE_SENDER: &str = "Lcom/messenger/MessageSender;";
/// The location-reading component class.
pub const LOCATION_FINDER: &str = "Lcom/navigator/LocationFinder;";
/// The intended in-app receiver of the location intent.
pub const ROUTE_FINDER: &str = "Lcom/navigator/RouteFinder;";

/// Listing 1: the navigation app.
pub fn navigator_app() -> Apk {
    let mut apk = ApkBuilder::new("com.navigator");
    apk.uses_permission(perm::ACCESS_FINE_LOCATION);
    apk.add_component(ComponentDecl::new(LOCATION_FINDER, ComponentKind::Service));
    let mut route = ComponentDecl::new(ROUTE_FINDER, ComponentKind::Service);
    route
        .intent_filters
        .push(IntentFilterDecl::for_actions([SHOW_LOC]));
    // The filter makes RouteFinder implicitly exported: the anti-pattern.
    apk.add_component(route);
    {
        let mut cb = apk.class_extends(LOCATION_FINDER, class::SERVICE);
        let mut m = cb.method("onStartCommand", 3, false, false);
        let loc = m.reg();
        let intent = m.reg();
        let s = m.reg();
        m.invoke_virtual(
            class::LOCATION_MANAGER,
            "getLastKnownLocation",
            &[loc],
            true,
        );
        m.move_result(loc);
        m.new_instance(intent, class::INTENT);
        m.const_string(s, SHOW_LOC);
        m.invoke_virtual(class::INTENT, "setAction", &[intent, s], false);
        m.const_string(s, LOCATION_EXTRA);
        m.invoke_virtual(class::INTENT, "putExtra", &[intent, s, loc], false);
        m.invoke_virtual(class::CONTEXT, "startService", &[m.this(), intent], false);
        m.ret_void();
        m.finish();
        cb.finish();
    }
    {
        let mut cb = apk.class_extends(ROUTE_FINDER, class::SERVICE);
        let mut m = cb.method("onStartCommand", 3, false, false);
        // Displays the route; reads the extra benignly.
        let v = m.reg();
        let k = m.reg();
        m.const_string(k, LOCATION_EXTRA);
        m.invoke_virtual(class::INTENT, "getStringExtra", &[m.param(1), k], true);
        m.move_result(v);
        m.ret_void();
        m.finish();
        cb.finish();
    }
    apk.finish()
}

/// Listing 2: the messenger app. `with_check` controls whether line 6's
/// `hasPermission()` guard is actually called (the paper comments it out).
pub fn messenger_app(with_check: bool) -> Apk {
    let mut apk = ApkBuilder::new("com.messenger");
    apk.uses_permission(perm::SEND_SMS);
    let mut decl = ComponentDecl::new(MESSAGE_SENDER, ComponentKind::Service);
    decl.exported = Some(true);
    apk.add_component(decl);
    let mut cb = apk.class_extends(MESSAGE_SENDER, class::SERVICE);
    {
        let mut m = cb.method("onStartCommand", 3, false, false);
        let num = m.reg();
        let msg = m.reg();
        let k = m.reg();
        let intent = m.param(1);
        m.const_string(k, PHONE_EXTRA);
        m.invoke_virtual(class::INTENT, "getStringExtra", &[intent, k], true);
        m.move_result(num);
        m.const_string(k, TEXT_EXTRA);
        m.invoke_virtual(class::INTENT, "getStringExtra", &[intent, k], true);
        m.move_result(msg);
        if with_check {
            let ok = m.reg();
            let skip = m.new_label();
            m.invoke_virtual(MESSAGE_SENDER, "hasPermission", &[m.this()], true);
            m.move_result(ok);
            m.if_eqz(ok, skip);
            m.invoke_virtual(MESSAGE_SENDER, "sendText", &[m.this(), num, msg], false);
            m.bind(skip);
        } else {
            // if (hasPermission())  <- commented out, as in the paper
            m.invoke_virtual(MESSAGE_SENDER, "sendText", &[m.this(), num, msg], false);
        }
        m.ret_void();
        m.finish();
    }
    {
        let mut m = cb.method("sendText", 3, false, false);
        let mgr = m.reg();
        m.invoke_static(class::SMS_MANAGER, "getDefault", &[], true);
        m.move_result(mgr);
        m.invoke_virtual(
            class::SMS_MANAGER,
            "sendTextMessage",
            &[mgr, m.param(1), m.param(2)],
            false,
        );
        m.ret_void();
        m.finish();
    }
    {
        let mut m = cb.method("hasPermission", 1, false, true);
        let p = m.reg();
        let r = m.reg();
        m.const_string(p, perm::SEND_SMS);
        m.invoke_virtual(
            class::CONTEXT,
            "checkCallingPermission",
            &[m.this(), p],
            true,
        );
        m.move_result(r);
        m.ret(r);
        m.finish();
    }
    cb.finish();
    apk.finish()
}

/// Figure 1's malicious app: hijacks the implicit location intent and
/// relays the payload to the messenger with the adversary's phone number.
/// It requests **no permissions** — exactly why it is hard to spot.
pub fn malicious_app(adversary_number: &str) -> Apk {
    let mut apk = ApkBuilder::new("com.innocent.wallpaper");
    let mut decl = ComponentDecl::new("Lcom/innocent/Thief;", ComponentKind::Service);
    decl.intent_filters
        .push(IntentFilterDecl::for_actions([SHOW_LOC]));
    apk.add_component(decl);
    let mut cb = apk.class_extends("Lcom/innocent/Thief;", class::SERVICE);
    let mut m = cb.method("onStartCommand", 3, false, false);
    let stolen = m.reg();
    let i = m.reg();
    let k = m.reg();
    let v = m.reg();
    // Hijack: read the location payload from the stolen intent.
    m.const_string(k, LOCATION_EXTRA);
    m.invoke_virtual(class::INTENT, "getStringExtra", &[m.param(1), k], true);
    m.move_result(stolen);
    // Forge: explicit intent to the vulnerable messenger.
    m.new_instance(i, class::INTENT);
    m.const_string(v, MESSAGE_SENDER);
    m.invoke_virtual(class::INTENT, "setClassName", &[i, v], false);
    m.const_string(k, PHONE_EXTRA);
    m.const_string(v, adversary_number);
    m.invoke_virtual(class::INTENT, "putExtra", &[i, k, v], false);
    m.const_string(k, TEXT_EXTRA);
    m.invoke_virtual(class::INTENT, "putExtra", &[i, k, stolen], false);
    m.invoke_virtual(class::CONTEXT, "startService", &[m.this(), i], false);
    m.ret_void();
    m.finish();
    cb.finish();
    apk.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use separ_analysis::extractor::extract_apk;
    use separ_android::types::{FlowPath, Resource};

    #[test]
    fn navigator_model_matches_listing_4a() {
        let model = extract_apk(&navigator_app());
        let lf = model.component(LOCATION_FINDER).expect("LocationFinder");
        assert!(lf
            .paths
            .contains(&FlowPath::new(Resource::Location, Resource::Icc)));
        let intent = &lf.sent_intents[0];
        assert_eq!(intent.action.as_deref(), Some(SHOW_LOC));
        assert!(intent.extra_taints.contains(&Resource::Location));
        assert!(intent.is_implicit());
    }

    #[test]
    fn messenger_model_matches_listing_4b() {
        let model = extract_apk(&messenger_app(false));
        let ms = model.component(MESSAGE_SENDER).expect("MessageSender");
        assert!(ms.exported);
        assert!(ms
            .paths
            .contains(&FlowPath::new(Resource::Icc, Resource::Sms)));
        // The check exists in code but is unreachable: not recorded.
        assert!(ms.dynamic_checks.is_empty());
        assert!(ms.used_permissions.contains(perm::SEND_SMS));
    }

    #[test]
    fn patched_messenger_records_the_check() {
        let model = extract_apk(&messenger_app(true));
        let ms = model.component(MESSAGE_SENDER).expect("MessageSender");
        assert!(ms.dynamic_checks.contains(perm::SEND_SMS));
    }

    #[test]
    fn malicious_app_requests_no_permissions() {
        let apk = malicious_app("+15550999");
        assert!(apk.manifest.uses_permissions.is_empty());
        let model = extract_apk(&apk);
        let thief = model.component("Lcom/innocent/Thief;").expect("thief");
        // From the outside it only moves ICC data around.
        assert!(thief
            .paths
            .iter()
            .all(|p| p.source == Resource::Icc && p.sink == Resource::Icc));
    }
}
