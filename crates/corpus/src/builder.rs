//! Reusable builders for leak-benchmark apps.
//!
//! Every DroidBench/ICC-Bench-style case is assembled from a *sender*
//! (reads a sensitive source, configures an Intent, performs an ICC call)
//! and a *receiver* (reads the Intent payload, hits a sink), with knobs
//! that vary the mechanics the real suites vary: explicit vs implicit
//! delivery, category/data matching, helper-method and field indirection,
//! unreachable-code decoys, result channels and dynamic registration.

use separ_android::api::{class, IccMethod};
use separ_android::types::Resource;
use separ_dex::build::{ApkBuilder, MethodBuilder};
use separ_dex::manifest::{ComponentDecl, ComponentKind, IntentFilterDecl};
use separ_dex::program::Apk;

/// How the sender addresses the receiver.
#[derive(Clone, Debug)]
pub enum Addressing {
    /// Explicit `setClassName` to the receiver class.
    Explicit,
    /// Implicit, with the given action (plus optional category/data).
    Implicit {
        /// The intent action.
        action: String,
        /// Categories to add.
        categories: Vec<String>,
        /// MIME type to set.
        data_type: Option<String>,
        /// Data scheme to set.
        data_scheme: Option<String>,
    },
}

impl Addressing {
    /// Implicit addressing with an action only.
    pub fn action(a: impl Into<String>) -> Addressing {
        Addressing::Implicit {
            action: a.into(),
            categories: vec![],
            data_type: None,
            data_scheme: None,
        }
    }
}

/// Indirection the tainted value passes through before `putExtra`.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Indirection {
    /// Straight line.
    None,
    /// Through a helper method (`launder(x) { return x }`).
    Helper,
    /// Through an instance field (store then load).
    Field,
}

/// Specification of the sending side of a case.
#[derive(Clone, Debug)]
pub struct SenderSpec {
    /// Component class descriptor.
    pub class: String,
    /// Component kind (its entry point is used to trigger the leak).
    pub kind: ComponentKind,
    /// The source API's resource.
    pub source: Resource,
    /// The ICC method used to send.
    pub via: IccMethod,
    /// Addressing mode.
    pub addressing: Addressing,
    /// Extra key carrying the payload.
    pub extra_key: String,
    /// Taint indirection.
    pub indirection: Indirection,
    /// Wrap the whole leak in a branch that provably never executes.
    pub dead_guard: bool,
}

impl SenderSpec {
    /// A conventional sender.
    pub fn new(class: impl Into<String>, via: IccMethod, addressing: Addressing) -> SenderSpec {
        SenderSpec {
            class: class.into(),
            kind: ComponentKind::Activity,
            source: Resource::Location,
            via,
            addressing,
            extra_key: "secret".into(),
            indirection: Indirection::None,
            dead_guard: false,
        }
    }
}

/// Specification of the receiving side.
#[derive(Clone, Debug)]
pub struct ReceiverSpec {
    /// Component class descriptor.
    pub class: String,
    /// Component kind (must suit the sender's ICC method).
    pub kind: ComponentKind,
    /// Static intent filter, if any.
    pub filter: Option<IntentFilterDecl>,
    /// Explicit `exported` flag.
    pub exported: Option<bool>,
    /// The extra key it reads.
    pub extra_key: String,
    /// The sink it feeds.
    pub sink: Resource,
}

impl ReceiverSpec {
    /// A conventional receiver.
    pub fn new(class: impl Into<String>, kind: ComponentKind) -> ReceiverSpec {
        ReceiverSpec {
            class: class.into(),
            kind,
            filter: None,
            exported: Some(true),
            extra_key: "secret".into(),
            sink: Resource::Log,
        }
    }

    /// Adds a filter accepting the given action.
    pub fn with_action_filter(mut self, action: &str) -> ReceiverSpec {
        self.filter = Some(IntentFilterDecl::for_actions([action]));
        self
    }
}

/// The receiver kind an ICC method requires.
pub fn kind_for(via: IccMethod) -> ComponentKind {
    match via {
        IccMethod::StartActivity | IccMethod::StartActivityForResult => ComponentKind::Activity,
        IccMethod::StartService | IccMethod::BindService => ComponentKind::Service,
        IccMethod::SendBroadcast => ComponentKind::Receiver,
        IccMethod::SetResult => ComponentKind::Activity,
        _ => ComponentKind::Provider,
    }
}

/// The lifecycle entry-point method a component kind is driven through.
fn entry_method(kind: ComponentKind, via: IccMethod) -> (&'static str, u8) {
    match kind {
        ComponentKind::Activity => ("onCreate", 1),
        ComponentKind::Service => {
            if via == IccMethod::BindService {
                ("onBind", 2)
            } else {
                ("onStartCommand", 2)
            }
        }
        ComponentKind::Receiver => ("onReceive", 2),
        ComponentKind::Provider => match via {
            IccMethod::ProviderInsert => ("insert", 2),
            IccMethod::ProviderUpdate => ("update", 2),
            IccMethod::ProviderDelete => ("delete", 2),
            _ => ("query", 2),
        },
    }
}

/// The source-API `(class, method)` pair for a resource.
fn source_api(resource: Resource) -> (&'static str, &'static str) {
    match resource {
        Resource::Location => (class::LOCATION_MANAGER, "getLastKnownLocation"),
        Resource::DeviceId => (class::TELEPHONY_MANAGER, "getDeviceId"),
        Resource::PhoneState => (class::TELEPHONY_MANAGER, "getLine1Number"),
        Resource::Contacts => (class::RESOLVER, "queryContacts"),
        Resource::SmsInbox => (class::RESOLVER, "querySmsInbox"),
        Resource::Accounts => (class::ACCOUNTS, "getAccounts"),
        _ => (class::TELEPHONY_MANAGER, "getDeviceId"),
    }
}

/// The ICC API `(class, method)` for a method.
fn icc_api(via: IccMethod) -> (&'static str, &'static str) {
    match via {
        IccMethod::StartActivity => (class::CONTEXT, "startActivity"),
        IccMethod::StartActivityForResult => (class::ACTIVITY, "startActivityForResult"),
        IccMethod::SetResult => (class::ACTIVITY, "setResult"),
        IccMethod::StartService => (class::CONTEXT, "startService"),
        IccMethod::BindService => (class::CONTEXT, "bindService"),
        IccMethod::SendBroadcast => (class::CONTEXT, "sendBroadcast"),
        IccMethod::ProviderQuery => (class::RESOLVER, "query"),
        IccMethod::ProviderInsert => (class::RESOLVER, "insert"),
        IccMethod::ProviderUpdate => (class::RESOLVER, "update"),
        IccMethod::ProviderDelete => (class::RESOLVER, "delete"),
    }
}

/// Emits the sender body into `m` (the component entry method).
fn emit_sender_body(m: &mut MethodBuilder<'_, '_>, spec: &SenderSpec) {
    let data = m.reg();
    let intent = m.reg();
    let s = m.reg();
    let end = m.new_label();
    if spec.dead_guard {
        // const 0; if-eqz -> end  (leak below is unreachable)
        let guard = m.reg();
        m.const_int(guard, 0);
        m.if_eqz(guard, end);
    }
    let (sc, sm) = source_api(spec.source);
    m.invoke_virtual(sc, sm, &[data], true);
    m.move_result(data);
    match spec.indirection {
        Indirection::None => {}
        Indirection::Helper => {
            m.invoke_virtual(&spec.class.clone(), "launder", &[m.this(), data], true);
            m.move_result(data);
        }
        Indirection::Field => {
            m.iput(data, m.this(), &spec.class.clone(), "stash");
            m.iget(data, m.this(), &spec.class.clone(), "stash");
        }
    }
    m.new_instance(intent, class::INTENT);
    match &spec.addressing {
        Addressing::Explicit => {
            // Explicit target: the receiver class is derived from the
            // sender class by convention (set by the case builder).
        }
        Addressing::Implicit {
            action,
            categories,
            data_type,
            data_scheme,
        } => {
            m.const_string(s, action);
            m.invoke_virtual(class::INTENT, "setAction", &[intent, s], false);
            for c in categories {
                m.const_string(s, c);
                m.invoke_virtual(class::INTENT, "addCategory", &[intent, s], false);
            }
            if let Some(t) = data_type {
                m.const_string(s, t);
                m.invoke_virtual(class::INTENT, "setType", &[intent, s], false);
            }
            if let Some(sc) = data_scheme {
                m.const_string(s, &format!("{sc}://payload"));
                m.invoke_virtual(class::INTENT, "setData", &[intent, s], false);
            }
        }
    }
    if let Addressing::Explicit = spec.addressing {
        m.const_string(s, &spec.extra_target_class());
        m.invoke_virtual(class::INTENT, "setClassName", &[intent, s], false);
    }
    m.const_string(s, &spec.extra_key);
    m.invoke_virtual(class::INTENT, "putExtra", &[intent, s, data], false);
    let (ic, im) = icc_api(spec.via);
    m.invoke_virtual(ic, im, &[m.this(), intent], false);
    m.bind(end);
    m.ret_void();
}

impl SenderSpec {
    /// For explicit addressing: the target class (stored out of band by
    /// the case builder via a naming convention).
    fn extra_target_class(&self) -> String {
        // Receiver class = sender class with `Sender` replaced by `Recv`,
        // or `<class>Recv;` appended.
        if self.class.contains("Sender") {
            self.class.replace("Sender", "Recv")
        } else {
            format!("{}Recv;", self.class.trim_end_matches(';'))
        }
    }

    /// The receiver class this spec's explicit addressing targets.
    pub fn explicit_target(&self) -> String {
        self.extra_target_class()
    }
}

/// Emits the receiver body: read extra, optional permission check, sink.
fn emit_receiver_body(m: &mut MethodBuilder<'_, '_>, spec: &ReceiverSpec, via: IccMethod) {
    let v = m.reg();
    let k = m.reg();
    // Activities obtain the intent via getIntent(); others receive it as a
    // parameter.
    let intent = if spec.kind == ComponentKind::Activity && via != IccMethod::SetResult {
        m.invoke_virtual(class::ACTIVITY, "getIntent", &[m.this()], true);
        m.move_result(v);
        v
    } else {
        m.param(1)
    };
    m.const_string(k, &spec.extra_key);
    m.invoke_virtual(class::INTENT, "getStringExtra", &[intent, k], true);
    let payload = m.reg();
    m.move_result(payload);
    match spec.sink {
        Resource::Sms => {
            let mgr = m.reg();
            let num = m.reg();
            m.invoke_static(class::SMS_MANAGER, "getDefault", &[], true);
            m.move_result(mgr);
            m.const_string(num, "+15550001");
            m.invoke_virtual(
                class::SMS_MANAGER,
                "sendTextMessage",
                &[mgr, num, payload],
                false,
            );
        }
        Resource::NetworkWrite => {
            m.invoke_virtual(class::HTTP, "getOutputStream", &[payload], true);
            let r = m.reg();
            m.move_result(r);
        }
        Resource::SdcardWrite => {
            m.invoke_virtual(class::FILE_OUT, "write", &[payload], false);
        }
        _ => {
            m.invoke_virtual(class::LOG, "d", &[payload], false);
        }
    }
    m.ret_void();
}

/// Adds a sender component (manifest + code) to an app.
pub fn add_sender(apk: &mut ApkBuilder, spec: &SenderSpec) {
    apk.add_component(ComponentDecl::new(spec.class.clone(), spec.kind));
    if let Some(p) = spec.source.permission() {
        apk.uses_permission(p);
    }
    let superclass = separ_android::api::component_super(spec.kind);
    let mut cb = apk.class_extends(&spec.class.clone(), superclass);
    if spec.indirection == Indirection::Field {
        cb.field("stash", false);
    }
    let (entry, params) = entry_method(spec.kind, IccMethod::StartActivity);
    let mut m = cb.method(entry, params, false, false);
    emit_sender_body(&mut m, spec);
    m.finish();
    if spec.indirection == Indirection::Helper {
        let mut m = cb.method("launder", 2, false, true);
        let r = m.reg();
        m.mov(r, m.param(1));
        m.ret(r);
        m.finish();
    }
    cb.finish();
}

/// Adds a receiver component (manifest + code) to an app.
pub fn add_receiver(apk: &mut ApkBuilder, spec: &ReceiverSpec, via: IccMethod) {
    let mut decl = ComponentDecl::new(spec.class.clone(), spec.kind);
    decl.exported = spec.exported;
    if let Some(f) = &spec.filter {
        decl.intent_filters.push(f.clone());
    }
    apk.add_component(decl);
    if let Some(p) = spec.sink.permission() {
        apk.uses_permission(p);
    }
    let superclass = separ_android::api::component_super(spec.kind);
    let mut cb = apk.class_extends(&spec.class.clone(), superclass);
    let (entry, params) = entry_method(spec.kind, via);
    let mut m = cb.method(entry, params, false, false);
    emit_receiver_body(&mut m, spec, via);
    m.finish();
    cb.finish();
}

/// Builds a single-app case (sender + receiver in one package).
pub fn single_app_case(package: &str, sender: &SenderSpec, receiver: &ReceiverSpec) -> Apk {
    let mut apk = ApkBuilder::new(package);
    add_sender(&mut apk, sender);
    add_receiver(&mut apk, receiver, sender.via);
    apk.finish()
}

/// Builds a two-app (inter-app) case.
pub fn two_app_case(
    sender_pkg: &str,
    receiver_pkg: &str,
    sender: &SenderSpec,
    receiver: &ReceiverSpec,
) -> Vec<Apk> {
    let mut a = ApkBuilder::new(sender_pkg);
    add_sender(&mut a, sender);
    let mut b = ApkBuilder::new(receiver_pkg);
    add_receiver(&mut b, receiver, sender.via);
    vec![a.finish(), b.finish()]
}

/// Builds a result-channel case: `requester` start-for-results (or binds)
/// `responder`; the responder reads a source and replies via `setResult`
/// with a tainted extra; the requester's `onActivityResult` sinks it.
///
/// The true leak is `(responder, requester)`.
pub fn result_channel_case(
    package: &str,
    requester_class: &str,
    responder_class: &str,
    via: IccMethod,
    source: Resource,
    sink: Resource,
    extra_key: &str,
) -> Apk {
    assert!(via.requests_result(), "result channel needs a two-way ICC");
    let mut apk = ApkBuilder::new(package);
    // Requester: an Activity.
    apk.add_component(ComponentDecl::new(requester_class, ComponentKind::Activity));
    if let Some(p) = sink.permission() {
        apk.uses_permission(p);
    }
    {
        let mut cb = apk.class_extends(requester_class, class::ACTIVITY);
        {
            let mut m = cb.method("onCreate", 1, false, false);
            let i = m.reg();
            let s = m.reg();
            m.new_instance(i, class::INTENT);
            m.const_string(s, responder_class);
            m.invoke_virtual(class::INTENT, "setClassName", &[i, s], false);
            let (ic, im) = icc_api(via);
            m.invoke_virtual(ic, im, &[m.this(), i], false);
            m.ret_void();
            m.finish();
        }
        {
            let mut m = cb.method("onActivityResult", 2, false, false);
            let v = m.reg();
            let k = m.reg();
            m.const_string(k, extra_key);
            m.invoke_virtual(class::INTENT, "getStringExtra", &[m.param(1), k], true);
            m.move_result(v);
            match sink {
                Resource::Sms => {
                    let mgr = m.reg();
                    let num = m.reg();
                    m.invoke_static(class::SMS_MANAGER, "getDefault", &[], true);
                    m.move_result(mgr);
                    m.const_string(num, "+15550002");
                    m.invoke_virtual(class::SMS_MANAGER, "sendTextMessage", &[mgr, num, v], false);
                }
                _ => {
                    m.invoke_virtual(class::LOG, "d", &[v], false);
                }
            }
            m.ret_void();
            m.finish();
        }
        cb.finish();
    }
    // Responder: kind depends on the ICC method.
    let responder_kind = kind_for(via);
    let mut decl = ComponentDecl::new(responder_class, responder_kind);
    decl.exported = Some(true);
    apk.add_component(decl);
    if let Some(p) = source.permission() {
        apk.uses_permission(p);
    }
    {
        let superclass = separ_android::api::component_super(responder_kind);
        let mut cb = apk.class_extends(responder_class, superclass);
        let (entry, params) = entry_method(responder_kind, via);
        let mut m = cb.method(entry, params, false, false);
        let data = m.reg();
        let i = m.reg();
        let k = m.reg();
        let (sc, sm) = source_api(source);
        m.invoke_virtual(sc, sm, &[data], true);
        m.move_result(data);
        m.new_instance(i, class::INTENT);
        m.const_string(k, extra_key);
        m.invoke_virtual(class::INTENT, "putExtra", &[i, k, data], false);
        m.invoke_virtual(class::ACTIVITY, "setResult", &[m.this(), i], false);
        m.ret_void();
        m.finish();
        cb.finish();
    }
    apk.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use separ_analysis::extractor::extract_apk;
    use separ_android::types::FlowPath;

    #[test]
    fn single_app_case_extracts_sender_and_receiver_paths() {
        let sender = SenderSpec::new(
            "LSender;",
            IccMethod::StartService,
            Addressing::action("com.case.GO"),
        );
        let mut receiver = ReceiverSpec::new("LRecv;", ComponentKind::Service);
        receiver = receiver.with_action_filter("com.case.GO");
        let apk = single_app_case("com.case", &sender, &receiver);
        let model = extract_apk(&apk);
        let s = model.component("LSender;").expect("sender");
        assert!(s
            .paths
            .contains(&FlowPath::new(Resource::Location, Resource::Icc)));
        assert_eq!(s.sent_intents.len(), 1);
        let r = model.component("LRecv;").expect("receiver");
        assert!(r
            .paths
            .contains(&FlowPath::new(Resource::Icc, Resource::Log)));
    }

    #[test]
    fn dead_guard_suppresses_the_flow() {
        let mut sender = SenderSpec::new(
            "LSender;",
            IccMethod::StartService,
            Addressing::action("com.case.GO"),
        );
        sender.dead_guard = true;
        let receiver =
            ReceiverSpec::new("LRecv;", ComponentKind::Service).with_action_filter("com.case.GO");
        let apk = single_app_case("com.case", &sender, &receiver);
        let model = extract_apk(&apk);
        let s = model.component("LSender;").expect("sender");
        assert!(s.paths.is_empty(), "{:?}", s.paths);
        assert!(s.sent_intents.is_empty());
    }

    #[test]
    fn explicit_addressing_targets_by_convention() {
        let sender = SenderSpec::new(
            "LCaseSender;",
            IccMethod::StartService,
            Addressing::Explicit,
        );
        assert_eq!(sender.explicit_target(), "LCaseRecv;");
        let receiver = ReceiverSpec::new("LCaseRecv;", ComponentKind::Service);
        let apk = single_app_case("com.case", &sender, &receiver);
        let model = extract_apk(&apk);
        let s = model.component("LCaseSender;").expect("sender");
        assert_eq!(
            s.sent_intents[0].explicit_target.as_deref(),
            Some("LCaseRecv;")
        );
    }

    #[test]
    fn result_channel_resolves_passively() {
        let apk = result_channel_case(
            "com.rc",
            "LReq;",
            "LResp;",
            IccMethod::StartActivityForResult,
            Resource::DeviceId,
            Resource::Log,
            "imei",
        );
        let model = extract_apk(&apk);
        let resp = model.component("LResp;").expect("responder");
        let passive = resp
            .sent_intents
            .iter()
            .find(|i| i.is_passive)
            .expect("passive intent");
        assert!(passive.resolved_targets.contains("LReq;"));
        assert!(passive.extra_taints.contains(&Resource::DeviceId));
        let req = model.component("LReq;").expect("requester");
        assert!(req
            .paths
            .contains(&FlowPath::new(Resource::Icc, Resource::Log)));
    }
}
