//! The DroidBench 2.0 ICC/IAC cases of Table I, rebuilt as sdex apps.
//!
//! Twenty-three true leaks across the case families the paper evaluates,
//! plus the two unreachable-code decoys (`startActivity{4,5}`) that tools
//! without reachability pruning report as false positives. Each case
//! varies real mechanics — delivery mode, indirection, matching dimension,
//! result channels, provider operations — rather than being a copy of its
//! neighbours.

use separ_android::api::IccMethod;
use separ_android::types::Resource;
use separ_dex::build::ApkBuilder;
use separ_dex::manifest::{ComponentKind, IntentFilterDecl};

use crate::builder::{
    add_receiver, add_sender, result_channel_case, single_app_case, two_app_case, Addressing,
    Indirection, ReceiverSpec, SenderSpec,
};
use crate::suite::{Case, SuiteKind};

fn db(
    name: &'static str,
    apks: Vec<separ_dex::program::Apk>,
    truth: impl IntoIterator<Item = (&'static str, &'static str)>,
) -> Case {
    Case::new(SuiteKind::DroidBench, name, apks, truth)
}

/// `bindService{1..3}`: bound-service result channels with varying
/// source/sink pairs.
fn bind_service(n: usize) -> Case {
    let (source, sink, key) = match n {
        1 => (Resource::Location, Resource::Log, "loc"),
        2 => (Resource::DeviceId, Resource::Sms, "imei"),
        _ => (Resource::Contacts, Resource::Log, "contacts"),
    };
    let apk = result_channel_case(
        &format!("de.ecspride.bind{n}"),
        "LBindMain;",
        "LBoundSvc;",
        IccMethod::BindService,
        source,
        sink,
        key,
    );
    match n {
        1 => db(
            "ICC_bindService1",
            vec![apk],
            [("LBoundSvc;", "LBindMain;")],
        ),
        2 => db(
            "ICC_bindService2",
            vec![apk],
            [("LBoundSvc;", "LBindMain;")],
        ),
        _ => db(
            "ICC_bindService3",
            vec![apk],
            [("LBoundSvc;", "LBindMain;")],
        ),
    }
}

/// `bindService4`: two independent bound-service leaks in one bundle.
fn bind_service4() -> Case {
    let a = result_channel_case(
        "de.ecspride.bind4a",
        "LBindMainA;",
        "LBoundSvcA;",
        IccMethod::BindService,
        Resource::Location,
        Resource::Log,
        "gps",
    );
    let b = result_channel_case(
        "de.ecspride.bind4b",
        "LBindMainB;",
        "LBoundSvcB;",
        IccMethod::BindService,
        Resource::SmsInbox,
        Resource::NetworkWrite,
        "inbox",
    );
    db(
        "ICC_bindService4",
        vec![a, b],
        [
            ("LBoundSvcA;", "LBindMainA;"),
            ("LBoundSvcB;", "LBindMainB;"),
        ],
    )
}

fn send_broadcast1() -> Case {
    let sender = SenderSpec {
        source: Resource::Location,
        ..SenderSpec::new(
            "LBcastSender;",
            IccMethod::SendBroadcast,
            Addressing::action("de.ecspride.BCAST"),
        )
    };
    let receiver = ReceiverSpec {
        sink: Resource::Sms,
        ..ReceiverSpec::new("LBcastRecv;", ComponentKind::Receiver)
            .with_action_filter("de.ecspride.BCAST")
    };
    db(
        "ICC_sendBroadcast1",
        vec![single_app_case("de.ecspride.bcast1", &sender, &receiver)],
        [("LBcastSender;", "LBcastRecv;")],
    )
}

/// `startActivity1`: plain implicit activity launch.
fn start_activity1() -> Case {
    let sender = SenderSpec::new(
        "LSaSender1;",
        IccMethod::StartActivity,
        Addressing::action("de.ecspride.SHOW"),
    );
    let receiver = ReceiverSpec::new("LSaRecv1;", ComponentKind::Activity)
        .with_action_filter("de.ecspride.SHOW");
    db(
        "ICC_startActivity1",
        vec![single_app_case("de.ecspride.sa1", &sender, &receiver)],
        [("LSaSender1;", "LSaRecv1;")],
    )
}

/// `startActivity2`: explicit launch (implicit-only tools miss it).
fn start_activity2() -> Case {
    let sender = SenderSpec {
        kind: ComponentKind::Activity,
        source: Resource::DeviceId,
        indirection: Indirection::Field,
        ..SenderSpec::new(
            "LSa2Sender;",
            IccMethod::StartActivity,
            Addressing::Explicit,
        )
    };
    let receiver = ReceiverSpec::new("LSa2Recv;", ComponentKind::Activity);
    db(
        "ICC_startActivity2",
        vec![single_app_case("de.ecspride.sa2", &sender, &receiver)],
        [("LSa2Sender;", "LSa2Recv;")],
    )
}

/// `startActivity3`: implicit with a data scheme, plus a decoy receiver
/// whose filter differs *only* in the scheme — tools that skip the scheme
/// test (Epicc/DidFail lineage) report a false positive here.
fn start_activity3() -> Case {
    let sender = SenderSpec {
        source: Resource::Contacts,
        ..SenderSpec::new(
            "LSaSender3;",
            IccMethod::StartActivity,
            Addressing::Implicit {
                action: "de.ecspride.VIEW3".into(),
                categories: vec![],
                data_type: None,
                data_scheme: Some("content".into()),
            },
        )
    };
    let mut apk = ApkBuilder::new("de.ecspride.sa3");
    add_sender(&mut apk, &sender);
    let mut real = IntentFilterDecl::for_actions(["de.ecspride.VIEW3"]);
    real.data_schemes = vec!["content".into()];
    add_receiver(
        &mut apk,
        &ReceiverSpec {
            filter: Some(real),
            ..ReceiverSpec::new("LSaRecv3;", ComponentKind::Activity)
        },
        sender.via,
    );
    let mut decoy = IntentFilterDecl::for_actions(["de.ecspride.VIEW3"]);
    decoy.data_schemes = vec!["ftp".into()];
    add_receiver(
        &mut apk,
        &ReceiverSpec {
            filter: Some(decoy),
            sink: Resource::NetworkWrite,
            ..ReceiverSpec::new("LSaDecoy3;", ComponentKind::Activity)
        },
        sender.via,
    );
    db(
        "ICC_startActivity3",
        vec![apk.finish()],
        [("LSaSender3;", "LSaRecv3;")],
    )
}

/// `startActivity{4,5}`: unreachable-leak decoys (ground truth: no leak).
fn start_activity_decoy(n: usize) -> Case {
    let sender = SenderSpec {
        dead_guard: true,
        indirection: if n == 5 {
            Indirection::Field
        } else {
            Indirection::None
        },
        ..SenderSpec::new(
            if n == 4 { "LSaSender4;" } else { "LSaSender5;" },
            IccMethod::StartActivity,
            Addressing::action("de.ecspride.DEAD"),
        )
    };
    let receiver = ReceiverSpec::new(
        if n == 4 { "LSaRecv4;" } else { "LSaRecv5;" },
        ComponentKind::Activity,
    )
    .with_action_filter("de.ecspride.DEAD");
    let pkg = if n == 4 {
        "de.ecspride.sa4"
    } else {
        "de.ecspride.sa5"
    };
    let name: &'static str = if n == 4 {
        "ICC_startActivity4"
    } else {
        "ICC_startActivity5"
    };
    db(name, vec![single_app_case(pkg, &sender, &receiver)], [])
}

/// `startActivityForResult{1..3}`: result-channel leaks.
fn safr(n: usize) -> Case {
    let (source, sink, key) = match n {
        1 => (Resource::Location, Resource::Log, "pos"),
        2 => (Resource::DeviceId, Resource::Sms, "id"),
        _ => (Resource::Accounts, Resource::Log, "acct"),
    };
    let apk = result_channel_case(
        &format!("de.ecspride.safr{n}"),
        "LSafrMain;",
        "LSafrTarget;",
        IccMethod::StartActivityForResult,
        source,
        sink,
        key,
    );
    let name: &'static str = match n {
        1 => "ICC_startActivityForResult1",
        2 => "ICC_startActivityForResult2",
        _ => "ICC_startActivityForResult3",
    };
    db(name, vec![apk], [("LSafrTarget;", "LSafrMain;")])
}

/// `startActivityForResult4`: two result-channel leaks.
fn safr4() -> Case {
    let a = result_channel_case(
        "de.ecspride.safr4a",
        "LSafrMainA;",
        "LSafrTargetA;",
        IccMethod::StartActivityForResult,
        Resource::Location,
        Resource::Log,
        "p1",
    );
    let b = result_channel_case(
        "de.ecspride.safr4b",
        "LSafrMainB;",
        "LSafrTargetB;",
        IccMethod::StartActivityForResult,
        Resource::PhoneState,
        Resource::Sms,
        "p2",
    );
    db(
        "ICC_startActivityForResult4",
        vec![a, b],
        [
            ("LSafrTargetA;", "LSafrMainA;"),
            ("LSafrTargetB;", "LSafrMainB;"),
        ],
    )
}

fn start_service(n: usize) -> Case {
    if n == 1 {
        let sender = SenderSpec::new(
            "LSsSender1;",
            IccMethod::StartService,
            Addressing::action("de.ecspride.WORK"),
        );
        let receiver = ReceiverSpec::new("LSsRecv1;", ComponentKind::Service)
            .with_action_filter("de.ecspride.WORK");
        db(
            "ICC_startService1",
            vec![single_app_case("de.ecspride.ss1", &sender, &receiver)],
            [("LSsSender1;", "LSsRecv1;")],
        )
    } else {
        let sender = SenderSpec {
            source: Resource::SmsInbox,
            indirection: Indirection::Helper,
            ..SenderSpec::new("LSs2Sender;", IccMethod::StartService, Addressing::Explicit)
        };
        let receiver = ReceiverSpec {
            sink: Resource::NetworkWrite,
            ..ReceiverSpec::new("LSs2Recv;", ComponentKind::Service)
        };
        db(
            "ICC_startService2",
            vec![single_app_case("de.ecspride.ss2", &sender, &receiver)],
            [("LSs2Sender;", "LSs2Recv;")],
        )
    }
}

/// Content-provider ICC cases (`delete1`, `insert1`, `query1`, `update1`):
/// resolver operations carrying tainted payloads into a provider.
fn provider(op: IccMethod, name: &'static str, pkg: &'static str) -> Case {
    let sender = SenderSpec {
        kind: ComponentKind::Activity,
        source: Resource::Location,
        ..SenderSpec::new("LProvSender;", op, Addressing::Explicit)
    };
    // Explicit target by convention: LProvSenderRecv; — rename receiver.
    let receiver = ReceiverSpec {
        extra_key: "secret".into(),
        ..ReceiverSpec::new("LProvRecv;", ComponentKind::Provider)
    };
    let mut apk = ApkBuilder::new(pkg);
    let mut s = sender.clone();
    s.class = "LProvSender;".into();
    add_sender(&mut apk, &s);
    add_receiver(&mut apk, &receiver, op);
    db(name, vec![apk.finish()], [("LProvSender;", "LProvRecv;")])
}

/// IAC (inter-app) cases: sender and receiver in different packages.
fn iac(name: &'static str, via: IccMethod, action: &str, pkgs: (&str, &str)) -> Case {
    let sender = SenderSpec {
        source: Resource::Location,
        ..SenderSpec::new("LIacSender;", via, Addressing::action(action))
    };
    let receiver = ReceiverSpec {
        sink: Resource::Sms,
        ..ReceiverSpec::new("LIacRecv;", crate::builder::kind_for(via)).with_action_filter(action)
    };
    db(
        name,
        two_app_case(pkgs.0, pkgs.1, &sender, &receiver),
        [("LIacSender;", "LIacRecv;")],
    )
}

/// All 25 DroidBench cases (23 true leaks + 2 decoys).
pub fn cases() -> Vec<Case> {
    vec![
        bind_service(1),
        bind_service(2),
        bind_service(3),
        bind_service4(),
        send_broadcast1(),
        start_activity1(),
        start_activity2(),
        start_activity3(),
        start_activity_decoy(4),
        start_activity_decoy(5),
        safr(1),
        safr(2),
        safr(3),
        safr4(),
        start_service(1),
        start_service(2),
        provider(IccMethod::ProviderDelete, "ICC_delete1", "de.ecspride.del1"),
        provider(IccMethod::ProviderInsert, "ICC_insert1", "de.ecspride.ins1"),
        provider(IccMethod::ProviderQuery, "ICC_query1", "de.ecspride.qry1"),
        provider(IccMethod::ProviderUpdate, "ICC_update1", "de.ecspride.upd1"),
        iac(
            "IAC_startActivity1",
            IccMethod::StartActivity,
            "de.iac.SHOW",
            ("de.iac.sa.sender", "de.iac.sa.recv"),
        ),
        iac(
            "IAC_startService1",
            IccMethod::StartService,
            "de.iac.WORK",
            ("de.iac.ss.sender", "de.iac.ss.recv"),
        ),
        iac(
            "IAC_sendBroadcast1",
            IccMethod::SendBroadcast,
            "de.iac.PING",
            ("de.iac.sb.sender", "de.iac.sb.recv"),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_23_cases_and_23_truths() {
        let cases = cases();
        assert_eq!(cases.len(), 23);
        let truths: usize = cases.iter().map(|c| c.truth.len()).sum();
        assert_eq!(truths, 23, "Table I's DroidBench ground truth");
    }

    #[test]
    fn decoys_have_empty_truth() {
        for c in cases() {
            if c.name.ends_with("startActivity4") || c.name.ends_with("startActivity5") {
                assert!(c.truth.is_empty());
            }
        }
    }

    #[test]
    fn names_are_unique() {
        let cases = cases();
        let names: std::collections::BTreeSet<_> = cases.iter().map(|c| c.name).collect();
        assert_eq!(names.len(), cases.len());
    }

    #[test]
    fn all_apps_encode_and_decode() {
        for case in cases() {
            for apk in &case.apks {
                let bytes = separ_dex::codec::encode(apk);
                let back = separ_dex::codec::decode(&bytes).expect("round-trips");
                assert_eq!(&back, apk, "case {}", case.name);
            }
        }
    }
}
