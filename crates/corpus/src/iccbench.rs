//! The ICC-Bench cases of Table I, rebuilt as sdex apps.
//!
//! Seven statically visible leaks exercising each matching dimension of
//! intent resolution, plus the two dynamically-registered-receiver cases
//! that SEPAR's static extractor misses (its two false negatives in the
//! paper).

use separ_android::api::{class, IccMethod};
use separ_android::types::Resource;
use separ_dex::build::ApkBuilder;
use separ_dex::manifest::{ComponentDecl, ComponentKind, IntentFilterDecl};

use crate::builder::{add_receiver, add_sender, Addressing, ReceiverSpec, SenderSpec};
use crate::suite::{Case, SuiteKind};

fn ib(
    name: &'static str,
    apks: Vec<separ_dex::program::Apk>,
    truth: impl IntoIterator<Item = (&'static str, &'static str)>,
) -> Case {
    Case::new(SuiteKind::IccBench, name, apks, truth)
}

/// `Explicit_Src_Sink`: explicit service launch.
fn explicit_src_sink() -> Case {
    let sender = SenderSpec {
        kind: ComponentKind::Activity,
        source: Resource::DeviceId,
        ..SenderSpec::new("LExpSender;", IccMethod::StartService, Addressing::Explicit)
    };
    let receiver = ReceiverSpec {
        sink: Resource::Log,
        ..ReceiverSpec::new("LExpRecv;", ComponentKind::Service)
    };
    ib(
        "Explicit_Src_Sink",
        vec![crate::builder::single_app_case(
            "org.icc.explicit",
            &sender,
            &receiver,
        )],
        [("LExpSender;", "LExpRecv;")],
    )
}

/// Implicit cases with one matching dimension each.
fn implicit(
    name: &'static str,
    pkg: &'static str,
    categories: Vec<String>,
    data_type: Option<String>,
    data_scheme: Option<String>,
    with_scheme_decoy: bool,
) -> Case {
    let action = format!("org.icc.{name}");
    let sender = SenderSpec {
        source: Resource::Location,
        ..SenderSpec::new(
            "LImpSender;",
            IccMethod::StartService,
            Addressing::Implicit {
                action: action.clone(),
                categories: categories.clone(),
                data_type: data_type.clone(),
                data_scheme: data_scheme.clone(),
            },
        )
    };
    let mut filter = IntentFilterDecl::for_actions([action.clone()]);
    filter.categories = categories;
    filter.data_types = data_type.into_iter().collect();
    filter.data_schemes = data_scheme.clone().into_iter().collect();
    let mut apk = ApkBuilder::new(pkg);
    add_sender(&mut apk, &sender);
    add_receiver(
        &mut apk,
        &ReceiverSpec {
            filter: Some(filter.clone()),
            ..ReceiverSpec::new("LImpRecv;", ComponentKind::Service)
        },
        sender.via,
    );
    if with_scheme_decoy {
        // Same filter except the scheme: scheme-blind matchers report it.
        let mut decoy = filter;
        decoy.data_schemes = vec!["decoy".into()];
        add_receiver(
            &mut apk,
            &ReceiverSpec {
                filter: Some(decoy),
                sink: Resource::NetworkWrite,
                ..ReceiverSpec::new("LImpDecoy;", ComponentKind::Service)
            },
            sender.via,
        );
    }
    ib(name, vec![apk.finish()], [("LImpSender;", "LImpRecv;")])
}

/// Dynamically registered receiver cases. The receiver has *no* static
/// filter; `onCreate` registers it at runtime and then broadcasts the
/// tainted payload. In `DynRegisteredReceiver2` the action string is not
/// a static constant (it is derived from an API value), so even tools
/// that model dynamic registration miss it.
fn dyn_registered(n: usize) -> Case {
    let pkg: &'static str = if n == 1 {
        "org.icc.dynreg1"
    } else {
        "org.icc.dynreg2"
    };
    let name: &'static str = if n == 1 {
        "DynRegisteredReceiver1"
    } else {
        "DynRegisteredReceiver2"
    };
    let mut apk = ApkBuilder::new(pkg);
    apk.uses_permission(separ_android::types::perm::ACCESS_FINE_LOCATION);
    apk.add_component(ComponentDecl::new("LDynMain;", ComponentKind::Activity));
    apk.add_component(ComponentDecl::new("LDynRecv;", ComponentKind::Receiver));
    {
        let mut cb = apk.class_extends("LDynMain;", class::ACTIVITY);
        let mut m = cb.method("onCreate", 1, false, false);
        let recv = m.reg();
        let action = m.reg();
        let data = m.reg();
        let i = m.reg();
        let k = m.reg();
        m.const_string(recv, "LDynRecv;");
        if n == 1 {
            m.const_string(action, "org.icc.DYN_EVENT");
        } else {
            // Action derived from a runtime value: statically opaque, but
            // deterministic at runtime so the broadcast still matches.
            m.invoke_virtual(class::TELEPHONY_MANAGER, "getDeviceId", &[action], true);
            m.move_result(action);
        }
        m.invoke_virtual(
            class::CONTEXT,
            "registerReceiver",
            &[m.this(), recv, action],
            true,
        );
        m.invoke_virtual(
            class::LOCATION_MANAGER,
            "getLastKnownLocation",
            &[data],
            true,
        );
        m.move_result(data);
        m.new_instance(i, class::INTENT);
        m.invoke_virtual(class::INTENT, "setAction", &[i, action], false);
        m.const_string(k, "payload");
        m.invoke_virtual(class::INTENT, "putExtra", &[i, k, data], false);
        m.invoke_virtual(class::CONTEXT, "sendBroadcast", &[m.this(), i], false);
        m.ret_void();
        m.finish();
        cb.finish();
    }
    {
        let mut cb = apk.class_extends("LDynRecv;", class::RECEIVER);
        let mut m = cb.method("onReceive", 2, false, false);
        let v = m.reg();
        let k = m.reg();
        m.const_string(k, "payload");
        m.invoke_virtual(class::INTENT, "getStringExtra", &[m.param(1), k], true);
        m.move_result(v);
        m.invoke_virtual(class::LOG, "d", &[v], false);
        m.ret_void();
        m.finish();
        cb.finish();
    }
    ib(name, vec![apk.finish()], [("LDynMain;", "LDynRecv;")])
}

/// All 9 ICC-Bench cases.
pub fn cases() -> Vec<Case> {
    vec![
        explicit_src_sink(),
        implicit(
            "Implicit_Action",
            "org.icc.action",
            vec![],
            None,
            None,
            false,
        ),
        implicit(
            "Implicit_Category",
            "org.icc.category",
            vec!["android.intent.category.DEFAULT".into()],
            None,
            None,
            false,
        ),
        implicit(
            "Implicit_Data1",
            "org.icc.data1",
            vec![],
            Some("text/plain".into()),
            None,
            false,
        ),
        implicit(
            "Implicit_Data2",
            "org.icc.data2",
            vec![],
            None,
            Some("content".into()),
            true,
        ),
        implicit(
            "Implicit_Mix1",
            "org.icc.mix1",
            vec!["android.intent.category.DEFAULT".into()],
            Some("text/plain".into()),
            None,
            false,
        ),
        implicit(
            "Implicit_Mix2",
            "org.icc.mix2",
            vec!["android.intent.category.DEFAULT".into()],
            None,
            Some("https".into()),
            true,
        ),
        dyn_registered(1),
        dyn_registered(2),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_9_cases_and_9_truths() {
        let cases = cases();
        assert_eq!(cases.len(), 9);
        let truths: usize = cases.iter().map(|c| c.truth.len()).sum();
        assert_eq!(truths, 9);
    }

    #[test]
    fn dynreg_receivers_have_no_static_filters() {
        for case in cases() {
            if case.name.starts_with("DynRegisteredReceiver") {
                let apk = &case.apks[0];
                let recv = apk.manifest.component("LDynRecv;").expect("receiver");
                assert!(recv.intent_filters.is_empty());
                assert!(!recv.is_effectively_exported());
            }
        }
    }

    #[test]
    fn all_apps_encode_and_decode() {
        for case in cases() {
            for apk in &case.apks {
                let bytes = separ_dex::codec::encode(apk);
                assert!(
                    separ_dex::codec::decode(&bytes).is_ok(),
                    "case {}",
                    case.name
                );
            }
        }
    }
}
