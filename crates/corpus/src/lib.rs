//! **separ-corpus** — workloads for the SEPAR reproduction.
//!
//! The paper evaluates on DroidBench 2.0, ICC-Bench and 4,000 market apps;
//! none are usable here (they are real APKs), so this crate rebuilds them
//! as sdex programs with known ground truth:
//!
//! * [`droidbench`] — the 23-leak DroidBench ICC/IAC subset of Table I,
//!   including the two unreachable-code decoys;
//! * [`iccbench`] — the 9 ICC-Bench cases, including the two
//!   dynamically-registered-receiver cases SEPAR's static extractor misses;
//! * [`suite`] — case plumbing and precision/recall/F-measure scoring;
//! * [`market`] — seeded, profile-driven generation of whole app markets
//!   (Google Play / F-Droid / Malgenome / Bazaar);
//! * [`motivating`] — the paper's Section II example (Listings 1–2 and the
//!   Figure 1 malicious app), runnable end to end;
//! * [`casestudy`] — the four RQ2 market findings (Barcoder, Hesabdar,
//!   OwnCloud, Ermete SMS analogs);
//! * [`builder`] — the reusable case-construction toolkit.
#![warn(missing_docs)]

pub mod builder;
pub mod casestudy;
pub mod droidbench;
pub mod iccbench;
pub mod market;
pub mod motivating;
pub mod suite;

pub use suite::{Case, LeakPair, Score, SuiteKind};

/// All Table I cases (DroidBench followed by ICC-Bench).
pub fn table1_cases() -> Vec<Case> {
    let mut v = droidbench::cases();
    v.extend(iccbench::cases());
    v
}
