//! Benchmark cases and accuracy scoring (the Table I apparatus).

use std::collections::BTreeSet;

use separ_dex::program::Apk;

/// Which benchmark suite a case belongs to.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SuiteKind {
    /// DroidBench 2.0 (ICC + IAC subsets).
    DroidBench,
    /// ICC-Bench.
    IccBench,
}

impl std::fmt::Display for SuiteKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SuiteKind::DroidBench => f.write_str("DroidBench2"),
            SuiteKind::IccBench => f.write_str("ICC-Bench"),
        }
    }
}

/// A leak finding: `(source component class, sink component class)`.
pub type LeakPair = (String, String);

/// One benchmark case with its ground truth.
#[derive(Debug)]
pub struct Case {
    /// The suite it belongs to.
    pub suite: SuiteKind,
    /// Case name as it appears in Table I.
    pub name: &'static str,
    /// The apps making up the case (one for ICC, two for IAC).
    pub apks: Vec<Apk>,
    /// The true leaks.
    pub truth: BTreeSet<LeakPair>,
}

impl Case {
    /// Builds a case.
    pub fn new(
        suite: SuiteKind,
        name: &'static str,
        apks: Vec<Apk>,
        truth: impl IntoIterator<Item = (&'static str, &'static str)>,
    ) -> Case {
        Case {
            suite,
            name,
            apks,
            truth: truth
                .into_iter()
                .map(|(a, b)| (a.to_string(), b.to_string()))
                .collect(),
        }
    }
}

/// Confusion counts for one tool over one or more cases.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct Score {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Score {
    /// Scores one case: findings vs ground truth.
    pub fn of(truth: &BTreeSet<LeakPair>, found: &BTreeSet<LeakPair>) -> Score {
        let tp = found.intersection(truth).count();
        Score {
            tp,
            fp: found.len() - tp,
            fn_: truth.len() - tp,
        }
    }

    /// Accumulates another score.
    pub fn add(&mut self, other: Score) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
    }

    /// Precision (1 when nothing was reported).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall (1 when there was nothing to find).
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f_measure(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(v: &[(&str, &str)]) -> BTreeSet<LeakPair> {
        v.iter().map(|&(a, b)| (a.into(), b.into())).collect()
    }

    #[test]
    fn scoring_confusion_counts() {
        let truth = pairs(&[("a", "b"), ("c", "d")]);
        let found = pairs(&[("a", "b"), ("x", "y")]);
        let s = Score::of(&truth, &found);
        assert_eq!(
            s,
            Score {
                tp: 1,
                fp: 1,
                fn_: 1
            }
        );
        assert!((s.precision() - 0.5).abs() < 1e-9);
        assert!((s.recall() - 0.5).abs() < 1e-9);
        assert!((s.f_measure() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_report_on_empty_truth_is_perfect() {
        let s = Score::of(&BTreeSet::new(), &BTreeSet::new());
        assert_eq!(s.precision(), 1.0);
        assert_eq!(s.recall(), 1.0);
        assert_eq!(s.f_measure(), 1.0);
    }

    #[test]
    fn accumulation_sums() {
        let mut total = Score::default();
        total.add(Score {
            tp: 2,
            fp: 1,
            fn_: 0,
        });
        total.add(Score {
            tp: 1,
            fp: 0,
            fn_: 2,
        });
        assert_eq!(
            total,
            Score {
                tp: 3,
                fp: 1,
                fn_: 2
            }
        );
    }
}
