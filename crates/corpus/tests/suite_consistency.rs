//! Consistency of the rebuilt benchmark suites: ground truth must refer
//! to components that exist, packages must be unique, and the headline
//! counts must match the paper's (23 DroidBench + 9 ICC-Bench truths,
//! 2 decoys, 2 dynamic-receiver cases).

use std::collections::BTreeSet;

use separ_corpus::suite::SuiteKind;
use separ_corpus::{droidbench, iccbench, table1_cases};

#[test]
fn headline_counts_match_the_paper() {
    let db: usize = droidbench::cases().iter().map(|c| c.truth.len()).sum();
    let ib: usize = iccbench::cases().iter().map(|c| c.truth.len()).sum();
    assert_eq!(db, 23, "DroidBench ground-truth leaks");
    assert_eq!(ib, 9, "ICC-Bench ground-truth leaks");
    let decoys = droidbench::cases()
        .iter()
        .filter(|c| c.truth.is_empty())
        .count();
    assert_eq!(decoys, 2, "unreachable-code decoys");
    let dynreg = iccbench::cases()
        .iter()
        .filter(|c| c.name.starts_with("DynRegisteredReceiver"))
        .count();
    assert_eq!(dynreg, 2, "dynamic-receiver cases");
}

#[test]
fn every_truth_component_exists_in_the_case_apps() {
    for case in table1_cases() {
        let declared: BTreeSet<&str> = case
            .apks
            .iter()
            .flat_map(|a| a.manifest.components.iter())
            .map(|c| c.class.as_str())
            .collect();
        for (src, sink) in &case.truth {
            assert!(
                declared.contains(src.as_str()),
                "{}: source component {src} not declared",
                case.name
            );
            assert!(
                declared.contains(sink.as_str()),
                "{}: sink component {sink} not declared",
                case.name
            );
        }
    }
}

#[test]
fn packages_are_unique_within_and_across_cases() {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for case in table1_cases() {
        for apk in &case.apks {
            assert!(
                seen.insert(apk.package().to_string()),
                "duplicate package {} (case {})",
                apk.package(),
                case.name
            );
        }
    }
}

#[test]
fn suites_are_labelled_correctly() {
    for c in droidbench::cases() {
        assert_eq!(c.suite, SuiteKind::DroidBench);
    }
    for c in iccbench::cases() {
        assert_eq!(c.suite, SuiteKind::IccBench);
    }
}

#[test]
fn every_case_component_has_code_or_is_intentionally_declarative() {
    // Each declared component must have an implementing class: the suites
    // contain no manifest-only ghosts.
    for case in table1_cases() {
        for apk in &case.apks {
            for decl in &apk.manifest.components {
                assert!(
                    apk.dex.class_by_name(&decl.class).is_some(),
                    "{}: component {} has no class",
                    case.name,
                    decl.class
                );
            }
        }
    }
}
