//! **separ-baselines** — comparator ICC-leak analyzers for Table I.
//!
//! The paper compares SEPAR against DidFail and AmanDroid. Rather than
//! hardcoding the published table, this crate implements each tool's
//! *documented* capabilities and blind spots as genuine analyzer
//! restrictions over the same extracted models, so the accuracy
//! comparison is regenerated from first principles:
//!
//! * [`DidFailAnalyzer`] — Epicc-lineage matching: implicit intents only,
//!   no data-scheme test, no reachability pruning (reports dead-code
//!   decoys), no provider/bound-service/result-channel flows;
//! * [`AmandroidAnalyzer`] — per-app analysis with full resolution and
//!   dynamic-receiver modelling, but no ContentProviders, no
//!   `bindService`/`startActivityForResult` channels, and no inter-app
//!   composition;
//! * [`SeparAnalyzer`] — the full pipeline from `separ-core`, adapted to
//!   the common [`IccAnalyzer`] interface.
#![warn(missing_docs)]

use std::collections::BTreeSet;

use separ_analysis::absint::AnalysisOptions;
use separ_analysis::extractor::extract_apk_with;
use separ_analysis::model::{update_passive_intent_targets, AppModel};
use separ_android::api::IccMethod;
use separ_android::resolution::{self, IntentData};
use separ_android::types::Resource;
use separ_core::{Exploit, Separ, VulnKind};
use separ_dex::manifest::{ComponentKind, IntentFilterDecl};
use separ_dex::program::Apk;

/// A leak finding: `(source component class, sink component class)`.
pub type LeakPair = (String, String);

/// The common interface of all compared tools.
pub trait IccAnalyzer {
    /// Tool name as it appears in the table.
    fn name(&self) -> &'static str;

    /// Analyzes a bundle and reports leak pairs.
    fn find_leaks(&self, apks: &[Apk]) -> BTreeSet<LeakPair>;
}

/// Returns `true` if the component has a path from its ICC surface to a
/// real (non-ICC) sink.
fn completes_leak(c: &separ_analysis::model::ComponentModel) -> bool {
    c.paths
        .iter()
        .any(|p| p.source == Resource::Icc && p.sink != Resource::Icc)
}

/// Returns `true` if the intent carries sensitive (source) payload.
fn carries_sensitive(i: &separ_analysis::model::SentIntentModel) -> bool {
    i.extra_taints
        .iter()
        .any(|r| r.is_source() && *r != Resource::Icc)
}

fn receiving_kind(via: IccMethod) -> Option<ComponentKind> {
    match via {
        IccMethod::StartActivity | IccMethod::StartActivityForResult => {
            Some(ComponentKind::Activity)
        }
        IccMethod::StartService | IccMethod::BindService => Some(ComponentKind::Service),
        IccMethod::SendBroadcast => Some(ComponentKind::Receiver),
        IccMethod::ProviderQuery
        | IccMethod::ProviderInsert
        | IccMethod::ProviderUpdate
        | IccMethod::ProviderDelete => Some(ComponentKind::Provider),
        IccMethod::SetResult => None,
    }
}

// ---------------------------------------------------------------------
// DidFail-like
// ---------------------------------------------------------------------

/// A DidFail-style analyzer (see crate docs for the modelled limitations).
#[derive(Debug, Default, Clone, Copy)]
pub struct DidFailAnalyzer;

impl DidFailAnalyzer {
    /// Epicc carries no data *scheme*: match with schemes erased.
    fn scheme_blind_match(intent: &IntentData, filters: &[IntentFilterDecl]) -> bool {
        let mut i = intent.clone();
        i.data_scheme = None;
        filters.iter().any(|f| {
            let mut f = f.clone();
            f.data_schemes.clear();
            resolution::filter_matches(&i, &f)
        })
    }
}

impl IccAnalyzer for DidFailAnalyzer {
    fn name(&self) -> &'static str {
        "DidFail"
    }

    fn find_leaks(&self, apks: &[Apk]) -> BTreeSet<LeakPair> {
        // No reachability pruning: dead-code flows are extracted too.
        let options = AnalysisOptions {
            prune_dead_branches: false,
            model_dynamic_receivers: false,
            ..AnalysisOptions::default()
        };
        let apps: Vec<AppModel> = apks.iter().map(|a| extract_apk_with(a, options)).collect();
        let mut out = BTreeSet::new();
        for (ai, app) in apps.iter().enumerate() {
            for sender in &app.components {
                for intent in &sender.sent_intents {
                    // Implicit intents only; no provider, bound-service or
                    // result-channel flows.
                    if !intent.is_implicit()
                        || intent.is_passive
                        || matches!(
                            intent.via,
                            IccMethod::BindService
                                | IccMethod::ProviderQuery
                                | IccMethod::ProviderInsert
                                | IccMethod::ProviderUpdate
                                | IccMethod::ProviderDelete
                        )
                    {
                        continue;
                    }
                    if !carries_sensitive(intent) {
                        continue;
                    }
                    let Some(kind) = receiving_kind(intent.via) else {
                        continue;
                    };
                    let data = intent.as_intent_data();
                    for (bi, other) in apps.iter().enumerate() {
                        for recv in &other.components {
                            if recv.kind != kind {
                                continue;
                            }
                            if bi != ai && !recv.exported {
                                continue;
                            }
                            if !Self::scheme_blind_match(&data, &recv.filters) {
                                continue;
                            }
                            if completes_leak(recv) {
                                out.insert((sender.class.clone(), recv.class.clone()));
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// AmanDroid-like
// ---------------------------------------------------------------------

/// An AmanDroid-style analyzer (see crate docs for the modelled
/// limitations).
#[derive(Debug, Default, Clone, Copy)]
pub struct AmandroidAnalyzer;

impl IccAnalyzer for AmandroidAnalyzer {
    fn name(&self) -> &'static str {
        "AmanDroid"
    }

    fn find_leaks(&self, apks: &[Apk]) -> BTreeSet<LeakPair> {
        let options = AnalysisOptions {
            prune_dead_branches: true,
            model_dynamic_receivers: true,
            ..AnalysisOptions::default()
        };
        let apps: Vec<AppModel> = apks.iter().map(|a| extract_apk_with(a, options)).collect();
        let mut out = BTreeSet::new();
        // Per-app analysis: no inter-app composition.
        for app in &apps {
            for sender in &app.components {
                for intent in &sender.sent_intents {
                    // No ContentProviders, no complicated ICC methods
                    // (bindService, startActivityForResult) — per the
                    // paper's related-work discussion.
                    if intent.is_passive
                        || matches!(
                            intent.via,
                            IccMethod::BindService
                                | IccMethod::StartActivityForResult
                                | IccMethod::ProviderQuery
                                | IccMethod::ProviderInsert
                                | IccMethod::ProviderUpdate
                                | IccMethod::ProviderDelete
                        )
                    {
                        continue;
                    }
                    if !carries_sensitive(intent) {
                        continue;
                    }
                    let Some(kind) = receiving_kind(intent.via) else {
                        continue;
                    };
                    for recv in &app.components {
                        if recv.kind != kind || !completes_leak(recv) {
                            continue;
                        }
                        let delivered = match &intent.explicit_target {
                            Some(t) => *t == recv.class,
                            None => resolution::any_filter_matches(
                                &intent.as_intent_data(),
                                &recv.filters,
                            ),
                        };
                        if delivered {
                            out.insert((sender.class.clone(), recv.class.clone()));
                        }
                    }
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// SEPAR adapter
// ---------------------------------------------------------------------

/// The full SEPAR pipeline behind the common interface.
#[derive(Debug, Default)]
pub struct SeparAnalyzer;

impl IccAnalyzer for SeparAnalyzer {
    fn name(&self) -> &'static str {
        "SEPAR"
    }

    fn find_leaks(&self, apks: &[Apk]) -> BTreeSet<LeakPair> {
        let mut apps: Vec<AppModel> = apks
            .iter()
            .map(separ_analysis::extractor::extract_apk)
            .collect();
        update_passive_intent_targets(&mut apps);
        let report = Separ::new()
            .analyze_models(apps)
            .expect("signatures are well-typed");
        report
            .exploits_of(VulnKind::InformationLeakage)
            .filter_map(|e| match e {
                Exploit::InformationLeakage {
                    source_component,
                    sink_component,
                    ..
                } => Some((source_component.clone(), sink_component.clone())),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use separ_android::api::class;
    use separ_dex::build::ApkBuilder;
    use separ_dex::manifest::ComponentDecl;

    /// Builds a one-app leak; `explicit` picks addressing, `dead` guards
    /// the leak with unreachable code.
    fn leak_app(explicit: bool, dead: bool) -> Apk {
        let mut apk = ApkBuilder::new("com.case");
        apk.add_component(ComponentDecl::new("LS;", ComponentKind::Activity));
        let mut decl = ComponentDecl::new("LR;", ComponentKind::Service);
        if explicit {
            decl.exported = Some(true);
        } else {
            decl.intent_filters
                .push(IntentFilterDecl::for_actions(["com.case.GO"]));
        }
        apk.add_component(decl);
        {
            let mut cb = apk.class_extends("LS;", class::ACTIVITY);
            let mut m = cb.method("onCreate", 1, false, false);
            let v = m.reg();
            let i = m.reg();
            let s = m.reg();
            let end = m.new_label();
            if dead {
                let flag = m.reg();
                m.const_int(flag, 0);
                m.if_eqz(flag, end); // always jumps: leak below is dead
            }
            m.invoke_virtual(class::TELEPHONY_MANAGER, "getDeviceId", &[v], true);
            m.move_result(v);
            m.new_instance(i, class::INTENT);
            if explicit {
                m.const_string(s, "LR;");
                m.invoke_virtual(class::INTENT, "setClassName", &[i, s], false);
            } else {
                m.const_string(s, "com.case.GO");
                m.invoke_virtual(class::INTENT, "setAction", &[i, s], false);
            }
            m.const_string(s, "x");
            m.invoke_virtual(class::INTENT, "putExtra", &[i, s, v], false);
            m.invoke_virtual(class::CONTEXT, "startService", &[m.this(), i], false);
            m.bind(end);
            m.ret_void();
            m.finish();
            cb.finish();
        }
        {
            let mut cb = apk.class_extends("LR;", class::SERVICE);
            let mut m = cb.method("onStartCommand", 2, false, false);
            let v = m.reg();
            let k = m.reg();
            m.const_string(k, "x");
            m.invoke_virtual(class::INTENT, "getStringExtra", &[m.param(1), k], true);
            m.move_result(v);
            m.invoke_virtual(class::LOG, "d", &[v], false);
            m.ret_void();
            m.finish();
            cb.finish();
        }
        apk.finish()
    }

    #[test]
    fn all_tools_find_the_easy_implicit_leak() {
        let apks = vec![leak_app(false, false)];
        let expected: LeakPair = ("LS;".into(), "LR;".into());
        for tool in [
            &DidFailAnalyzer as &dyn IccAnalyzer,
            &AmandroidAnalyzer,
            &SeparAnalyzer,
        ] {
            let found = tool.find_leaks(&apks);
            assert!(found.contains(&expected), "{} missed it", tool.name());
        }
    }

    #[test]
    fn didfail_misses_explicit_intents() {
        let apks = vec![leak_app(true, false)];
        assert!(DidFailAnalyzer.find_leaks(&apks).is_empty());
        assert!(!AmandroidAnalyzer.find_leaks(&apks).is_empty());
        assert!(!SeparAnalyzer.find_leaks(&apks).is_empty());
    }

    #[test]
    fn didfail_reports_dead_code_but_others_prune() {
        let apks = vec![leak_app(false, true)];
        assert!(
            !DidFailAnalyzer.find_leaks(&apks).is_empty(),
            "no reachability pruning: the decoy is reported"
        );
        assert!(AmandroidAnalyzer.find_leaks(&apks).is_empty());
        assert!(SeparAnalyzer.find_leaks(&apks).is_empty());
    }

    #[test]
    fn amandroid_is_single_app_only() {
        // Split the implicit leak across two packages.
        let mut a = ApkBuilder::new("com.a");
        a.add_component(ComponentDecl::new("LS;", ComponentKind::Activity));
        {
            let mut cb = a.class_extends("LS;", class::ACTIVITY);
            let mut m = cb.method("onCreate", 1, false, false);
            let v = m.reg();
            let i = m.reg();
            let s = m.reg();
            m.invoke_virtual(class::TELEPHONY_MANAGER, "getDeviceId", &[v], true);
            m.move_result(v);
            m.new_instance(i, class::INTENT);
            m.const_string(s, "com.iac.GO");
            m.invoke_virtual(class::INTENT, "setAction", &[i, s], false);
            m.const_string(s, "x");
            m.invoke_virtual(class::INTENT, "putExtra", &[i, s, v], false);
            m.invoke_virtual(class::CONTEXT, "startService", &[m.this(), i], false);
            m.ret_void();
            m.finish();
            cb.finish();
        }
        let mut b = ApkBuilder::new("com.b");
        let mut decl = ComponentDecl::new("LR;", ComponentKind::Service);
        decl.intent_filters
            .push(IntentFilterDecl::for_actions(["com.iac.GO"]));
        b.add_component(decl);
        {
            let mut cb = b.class_extends("LR;", class::SERVICE);
            let mut m = cb.method("onStartCommand", 2, false, false);
            let v = m.reg();
            let k = m.reg();
            m.const_string(k, "x");
            m.invoke_virtual(class::INTENT, "getStringExtra", &[m.param(1), k], true);
            m.move_result(v);
            m.invoke_virtual(class::LOG, "d", &[v], false);
            m.ret_void();
            m.finish();
            cb.finish();
        }
        let apks = vec![a.finish(), b.finish()];
        assert!(AmandroidAnalyzer.find_leaks(&apks).is_empty(), "no IAC");
        assert!(!SeparAnalyzer.find_leaks(&apks).is_empty());
        assert!(!DidFailAnalyzer.find_leaks(&apks).is_empty());
    }
}
