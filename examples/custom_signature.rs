//! Authoring a vulnerability signature in SEPAR's textual specification
//! language and running it through the full pipeline — the paper's
//! "plugin-based architecture supports extensions that can be provided by
//! users at any time", made concrete.
//!
//! ```sh
//! cargo run --example custom_signature
//! ```

use separ::core::{Separ, SignatureRegistry, TextualSignature, VulnKind};
use separ::corpus::motivating;

/// The paper's Listing 5, verbatim in spirit: a forged intent launches an
/// exported Activity/Service whose entry surface feeds a capability.
const SERVICE_LAUNCH: &str = r"
    vuln GeneratedServiceLaunch {
        launched: one Component
    } {
        launched in exported
        launched in Activity + Service
        launched in MalIntent.canReceive
        some launched.pathSource & IccRes
        some MalIntent.extras
    }
";

/// A signature of our own invention: a *double agent* — a component that
/// both receives sensitive data over ICC and holds an exfiltration path.
const DOUBLE_AGENT: &str = r"
    vuln DoubleAgent {
        agent: one Component
    } {
        agent in exported
        some agent.pathSource & IccRes
        some agent.pathSink & SinkRes
        agent in MalIntent.canReceive
    }
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut registry = SignatureRegistry::standard();
    for (title, src) in [("Listing 5", SERVICE_LAUNCH), ("DoubleAgent", DOUBLE_AGENT)] {
        let sig = TextualSignature::parse(src)?;
        println!(
            "registered textual signature '{}' ({title})",
            sig.spec_name()
        );
        registry.register(Box::new(sig));
    }
    let report = Separ::with_registry(registry).analyze_apks(&[
        motivating::navigator_app(),
        motivating::messenger_app(false),
    ])?;

    println!("\ncustom findings:");
    for e in report.exploits_of(VulnKind::Custom) {
        println!("  - {e}");
    }
    println!("\nall derived policies:");
    for p in &report.policies {
        println!("  #{} [{}] -> {:?}", p.id, p.vulnerability, p.action);
    }
    Ok(())
}
