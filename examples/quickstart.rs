//! Quickstart: analyze a bundle of apps and print what SEPAR finds.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use separ::core::Separ;
use separ::corpus::motivating;

fn main() -> Result<(), separ::logic::LogicError> {
    // A bundle, as it would sit on an end-user device: the navigation app
    // of the paper's Listing 1 and the messenger of Listing 2.
    let bundle = vec![
        motivating::navigator_app(),
        motivating::messenger_app(false),
    ];

    // One call runs the whole pipeline: static model extraction (AME),
    // relational-logic encoding, SAT-backed exploit synthesis, and ECA
    // policy derivation (ASE).
    let report = Separ::new().analyze_apks(&bundle)?;

    println!("=== extracted app models ===");
    for app in &report.apps {
        println!(
            "{}: {} components, {} intents, {} filters",
            app.package,
            app.components.len(),
            app.num_intents(),
            app.num_filters()
        );
    }

    println!("\n=== synthesized exploit scenarios ===");
    for exploit in &report.exploits {
        println!("- {exploit}");
    }

    println!("\n=== derived security policies ===");
    for policy in &report.policies {
        println!(
            "policy #{} [{}] on {:?}: {:?} -> {:?}",
            policy.id, policy.vulnerability, policy.event, policy.conditions, policy.action
        );
    }

    println!(
        "\nsolver: {} primary vars, construction {:?}, SAT {:?}",
        report.stats.primary_vars, report.stats.construction, report.stats.solving
    );
    Ok(())
}
