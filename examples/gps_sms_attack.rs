//! The paper's Figure 1, end to end: synthesize the exploit, run the
//! actual attack on the simulated device, then install the synthesized
//! policies and watch the same attack get stopped.
//!
//! ```sh
//! cargo run --example gps_sms_attack
//! ```

use separ::android::types::Resource;
use separ::core::Separ;
use separ::corpus::motivating;
use separ::enforce::{Device, PromptHandler};

fn main() -> Result<(), separ::logic::LogicError> {
    let navigator = motivating::navigator_app();
    let messenger = motivating::messenger_app(false);
    let malicious = motivating::malicious_app("+15558666");

    // ---- Phase 1: SEPAR analyzes the *benign* bundle ahead of time. ----
    let report = Separ::new().analyze_apks(&[navigator.clone(), messenger.clone()])?;
    println!(
        "SEPAR synthesized {} exploit scenario(s):",
        report.exploits.len()
    );
    for e in &report.exploits {
        println!("  - {e}");
    }
    println!("and derived {} polic(ies).\n", report.policies.len());

    // ---- Phase 2: the unprotected device. ----
    println!("--- attack on an UNPROTECTED device ---");
    let mut device = Device::new(vec![
        navigator.clone(),
        messenger.clone(),
        malicious.clone(),
    ]);
    device.launch("com.navigator", motivating::LOCATION_FINDER);
    device.run_until_idle();
    if device.audit.leaked(Resource::Location, Resource::Sms) {
        println!("LEAK: the device location was texted to the adversary:");
        for e in device.audit.sinks_fired(Resource::Sms) {
            println!("  {e:?}");
        }
    } else {
        println!("unexpected: attack failed without enforcement");
    }

    // ---- Phase 3: the protected device. ----
    println!("\n--- same attack with SEPAR's policies enforced ---");
    let mut device = Device::new(vec![navigator, messenger, malicious]);
    device.install_policies(
        report.policies.clone(),
        report.apps.iter().map(|a| a.package.clone()).collect(),
        PromptHandler::AlwaysDeny, // the user declines every prompt
    );
    device.launch("com.navigator", motivating::LOCATION_FINDER);
    device.run_until_idle();
    if device.audit.leaked(Resource::Location, Resource::Sms) {
        println!("unexpected: the leak was not blocked!");
    } else {
        println!(
            "BLOCKED: {} ICC event(s) stopped by policy, {} prompt(s) shown, 0 SMS sent.",
            device.audit.blocked_count(),
            device.pdp().prompts()
        );
    }
    Ok(())
}
