//! Audit a synthetic app market the way RQ2 audits 4,000 real apps:
//! generate a market, bundle it, run SEPAR per bundle, and report the
//! vulnerability census together with the four case-study findings.
//!
//! ```sh
//! cargo run --release --example market_audit [apps_total]
//! ```

use separ::core::{Separ, VulnKind};
use separ::corpus::casestudy;
use separ::corpus::market::{generate, MarketSpec};

fn main() -> Result<(), separ::logic::LogicError> {
    let total: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200);
    let bundle_size = 50;
    let market = generate(&MarketSpec::scaled(total, 0x5E9A12));
    println!("generated {} market apps", market.len());

    let separ = Separ::new();
    let mut census: Vec<(VulnKind, String)> = Vec::new();
    for bundle in market.chunks(bundle_size) {
        let apks: Vec<_> = bundle.iter().map(|m| m.apk.clone()).collect();
        let report = separ.analyze_apks(&apks)?;
        for kind in VulnKind::ALL {
            for app in report.vulnerable_apps(kind) {
                census.push((kind, app.to_string()));
            }
        }
    }
    println!("\n=== market census ===");
    for kind in VulnKind::ALL {
        let count = census.iter().filter(|(k, _)| *k == kind).count();
        println!("{kind}: {count} vulnerable app(s)");
    }

    println!("\n=== case studies (paper Section VII-B) ===");
    let report = separ.analyze_apks(&casestudy::all())?;
    for e in &report.exploits {
        println!("- {e}");
    }
    Ok(())
}
