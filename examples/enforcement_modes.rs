//! Tour of the enforcement runtime: prompts, denials, consents, degraded
//! mode, and the audit trail — the APE component in isolation.
//!
//! ```sh
//! cargo run --example enforcement_modes
//! ```

use separ::android::types::Resource;
use separ::core::policy::{Condition, Policy, PolicyAction, PolicyEvent};
use separ::corpus::motivating;
use separ::enforce::{AuditEvent, Device, PromptHandler};

fn sms_guard(action: PolicyAction) -> Policy {
    Policy {
        id: 0,
        vulnerability: "information-leakage".into(),
        event: PolicyEvent::IccReceive,
        conditions: vec![
            Condition::ReceiverIs(motivating::MESSAGE_SENDER.into()),
            Condition::ExtraTagged("LOCATION".into()),
        ],
        action,
        rationale: "location data must not reach the SMS proxy".into(),
    }
}

fn run_attack(device: &mut Device) {
    device.launch("com.navigator", motivating::LOCATION_FINDER);
    device.run_until_idle();
}

fn apps() -> Vec<separ::dex::Apk> {
    vec![
        motivating::navigator_app(),
        motivating::messenger_app(false),
        motivating::malicious_app("+15550187"),
    ]
}

fn main() {
    // 1. Prompt + user declines (the paper's default posture).
    let mut device = Device::new(apps());
    device.install_policies(
        vec![sms_guard(PolicyAction::Prompt)],
        vec![],
        PromptHandler::AlwaysDeny,
    );
    run_attack(&mut device);
    println!(
        "prompt/deny : leaked={} blocked={} prompts={}",
        device.audit.leaked(Resource::Location, Resource::Sms),
        device.audit.blocked_count(),
        device.pdp().prompts()
    );

    // 2. Prompt + user consents: the user's call, SEPAR steps aside.
    let mut device = Device::new(apps());
    device.install_policies(
        vec![sms_guard(PolicyAction::Prompt)],
        vec![],
        PromptHandler::AlwaysAllow,
    );
    run_attack(&mut device);
    println!(
        "prompt/allow: leaked={} blocked={}",
        device.audit.leaked(Resource::Location, Resource::Sms),
        device.audit.blocked_count(),
    );

    // 3. Hard deny: no prompt at all.
    let mut device = Device::new(apps());
    device.install_policies(
        vec![sms_guard(PolicyAction::Deny)],
        vec![],
        PromptHandler::AlwaysAllow,
    );
    run_attack(&mut device);
    println!(
        "deny        : leaked={} blocked={} prompts={}",
        device.audit.leaked(Resource::Location, Resource::Sms),
        device.audit.blocked_count(),
        device.pdp().prompts()
    );

    // 4. Degraded mode: the malicious app's ICC was skipped, nothing
    //    crashed — walk the audit trail to see the story.
    println!("\naudit trail of the denied run:");
    for event in device.audit.events() {
        match event {
            AuditEvent::IccSent {
                from_component,
                intent,
                ..
            } => {
                println!("  sent      {} action={:?}", from_component, intent.action)
            }
            AuditEvent::IccDelivered { to_component, .. } => {
                println!("  delivered -> {to_component}")
            }
            AuditEvent::IccBlocked {
                vulnerability,
                to_component,
                ..
            } => {
                println!("  BLOCKED   -> {to_component:?} [{vulnerability}]")
            }
            AuditEvent::SinkFired { sink, detail, .. } => {
                println!("  sink      {sink}: {detail}")
            }
            _ => {}
        }
    }
}
