//! The paper's concluding scenario: Android Marshmallow's Permission
//! Manager lets the user revoke permissions after install, so policies
//! must track a continuously evolving configuration. An incremental
//! session re-synthesizes only the affected signatures and pushes policy
//! deltas to the running enforcer.
//!
//! ```sh
//! cargo run --example permission_manager
//! ```

use separ::analysis::extractor::extract_apk;
use separ::android::types::perm;
use separ::core::{IncrementalSession, SeparConfig, SignatureRegistry, VulnKind};
use separ::corpus::motivating;
use separ::enforce::{Device, PromptHandler};

fn main() -> Result<(), separ::logic::LogicError> {
    let apks = vec![
        motivating::navigator_app(),
        motivating::messenger_app(false),
    ];
    let models = apks.iter().map(extract_apk).collect();

    // Boot the device and the analysis session together.
    let mut session = IncrementalSession::new(
        SignatureRegistry::standard(),
        SeparConfig::default(),
        models,
    )?;
    let mut device = Device::new(apks);
    device.install_policies(
        session.policies().to_vec(),
        vec!["com.navigator".into(), "com.messenger".into()],
        PromptHandler::AlwaysDeny,
    );
    println!(
        "initial analysis: {} policies ({} syntheses)",
        session.policies().len(),
        session.total_syntheses()
    );
    let escalation_live = |s: &IncrementalSession| {
        s.exploits()
            .any(|e| e.kind() == VulnKind::PrivilegeEscalation)
    };
    println!(
        "privilege-escalation exploit live: {}",
        escalation_live(&session)
    );

    // The user opens the Permission Manager and revokes SEND_SMS from the
    // messenger.
    println!("\n>> user revokes SEND_SMS from com.messenger");
    let delta = session.set_permission("com.messenger", perm::SEND_SMS, false)?;
    println!(
        "incremental re-analysis: {} signature(s) re-run (full would be 4), \
         {} policy(ies) retired, {} added",
        delta.signatures_rerun,
        delta.removed.len(),
        delta.added.len()
    );
    device.apply_policy_delta(delta.added.clone(), &delta.removed);
    println!(
        "privilege-escalation exploit live: {}",
        escalation_live(&session)
    );

    // Later, the user grants it back.
    println!("\n>> user grants SEND_SMS back");
    let delta = session.set_permission("com.messenger", perm::SEND_SMS, true)?;
    println!(
        "incremental re-analysis: {} signature(s) re-run, {} policy(ies) restored",
        delta.signatures_rerun,
        delta.added.len()
    );
    device.apply_policy_delta(delta.added.clone(), &delta.removed);
    println!(
        "privilege-escalation exploit live: {}",
        escalation_live(&session)
    );

    println!(
        "\ntotal signature syntheses across the session: {} (vs {} for three full runs)",
        session.total_syntheses(),
        3 * 4
    );
    Ok(())
}
